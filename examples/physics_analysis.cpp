// Physics analysis workflow — the paper's motivating scenario.
//
// A site serves CMS-style detector event files under a virtual root.
// Read access is restricted to the "cms.analysis" VO group. A physicist
//  1. discovers which runs exist (file.ls / file.find),
//  2. checks integrity of a dataset (file.md5),
//  3. fetches an event range for local analysis (file.read with offset),
//  4. streams a whole file over HTTP GET (the sendfile fast path),
// while an outsider's access is refused by the file ACL.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "client/client.hpp"
#include "rpc/fault.hpp"
#include "core/server.hpp"
#include "crypto/md5.hpp"
#include "pki/authority.hpp"

using namespace clarens;

int main() {
  // --- site setup -------------------------------------------------------
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=cmsgrid.org/CN=CMS CA"));
  pki::Credential physicist = ca.issue_user(pki::DistinguishedName::parse(
      "/O=cmsgrid.org/OU=People/CN=Pat Physicist"));
  pki::Credential outsider = ca.issue_user(pki::DistinguishedName::parse(
      "/O=othervo.net/OU=People/CN=Oscar Outsider"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  // Synthetic event data: two runs of fixed-width "events".
  std::string site_dir = "/tmp/clarens_example_physics";
  std::filesystem::create_directories(site_dir + "/run2005A");
  std::filesystem::create_directories(site_dir + "/run2005B");
  auto write_events = [&](const std::string& rel, int count) {
    std::ofstream out(site_dir + "/" + rel, std::ios::binary);
    for (int i = 0; i < count; ++i) {
      char event[48];  // worst-case formatted width, not the record width
      std::snprintf(event, sizeof(event), "EVT%08d:px=%+05d;py=%+05d\n", i,
                    (i * 37) % 1000 - 500, (i * 91) % 1000 - 500);
      out << event;
    }
  };
  write_events("run2005A/muons.evt", 5000);
  write_events("run2005A/electrons.evt", 3000);
  write_events("run2005B/muons.evt", 7000);

  core::ClarensConfig config;
  config.trust = trust;
  config.admins = {"/O=cmsgrid.org/OU=People/CN=Site Admin"};
  config.file_roots = {{"/store", site_dir}};
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"file", anyone}};
  // File ACL: only the cms.analysis group (seeded below) may read.
  core::AclSpec cms_only;
  cms_only.allow_groups = {"cms.analysis"};
  core::FileAcl store_acl;
  store_acl.read = cms_only;
  store_acl.write = cms_only;
  config.initial_file_acls = {{"/store", store_acl}};
  core::ClarensServer server(std::move(config));

  // VO: every /O=cmsgrid.org person is in cms.analysis via a DN prefix.
  auto admin = pki::DistinguishedName::parse(
      "/O=cmsgrid.org/OU=People/CN=Site Admin");
  server.vo().create_group("cms", admin);
  server.vo().create_group("cms.analysis", admin);
  server.vo().add_member("cms.analysis", "/O=cmsgrid.org/OU=People", admin);

  server.start();
  std::printf("site serving /store at %s\n", server.url().c_str());

  // --- the physicist's session ------------------------------------------
  client::ClientOptions options;
  options.port = server.port();
  options.credential = physicist;
  options.trust = &trust;
  client::ClarensClient analysis(options);
  analysis.connect();
  analysis.authenticate();

  std::printf("\n[1] discover runs:\n");
  for (const auto& name : analysis.file_ls_names("/store")) {
    std::printf("    /store/%s\n", name.c_str());
  }
  rpc::Value muon_files =
      analysis.call("file.find", {rpc::Value("/store"), rpc::Value("muons")});
  std::printf("    %zu muon datasets found\n", muon_files.as_array().size());

  std::printf("\n[2] integrity check:\n");
  std::string server_md5 = analysis.file_md5("/store/run2005A/muons.evt");
  std::printf("    server md5: %s\n", server_md5.c_str());

  std::printf("\n[3] fetch events 100-104 (offset reads):\n");
  auto range = analysis.file_read("/store/run2005A/muons.evt", 100 * 28, 5 * 28);
  std::printf("%s", std::string(range.begin(), range.end()).c_str());

  std::printf("\n[4] bulk download over HTTP GET (sendfile path):\n");
  http::Response download = analysis.get("/store/run2005A/muons.evt");
  std::string local_md5 = crypto::Md5::hex(download.body);
  std::printf("    %zu bytes, local md5 %s -> %s\n", download.body.size(),
              local_md5.c_str(),
              local_md5 == server_md5 ? "verified" : "MISMATCH");

  // --- the outsider is stopped by the ACL ------------------------------
  client::ClientOptions outsider_options = options;
  outsider_options.credential = outsider;
  client::ClarensClient blocked(outsider_options);
  blocked.connect();
  blocked.authenticate();
  std::printf("\n[5] outsider (%s):\n",
              outsider.certificate.subject().get("CN").c_str());
  try {
    blocked.file_read("/store/run2005A/muons.evt", 0, 28);
    std::printf("    unexpectedly allowed!\n");
  } catch (const rpc::Fault& fault) {
    std::printf("    denied as expected: %s\n", fault.what());
  }

  server.stop();
  std::filesystem::remove_all(site_dir);
  return 0;
}
