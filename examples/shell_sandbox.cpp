// Shell service walkthrough (§2.5): DN -> system-user mapping via the
// .clarens_user_map format, sandboxed execution, and the interplay with
// the file service — upload inputs with file.write, process them with
// shell commands, fetch results with file.read.
#include <cstdio>
#include <filesystem>

#include "client/client.hpp"
#include "rpc/fault.hpp"
#include "util/strings.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"

using namespace clarens;

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential joe = ca.issue_user(pki::DistinguishedName::parse(
      "/DC=org/DC=doegrids/OU=People/CN=Joe User"));
  pki::Credential eve = ca.issue_user(
      pki::DistinguishedName::parse("/O=elsewhere/CN=Eve"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  std::string sandbox_base = "/tmp/clarens_example_sandboxes";
  std::filesystem::remove_all(sandbox_base);

  core::ClarensConfig config;
  config.trust = trust;
  config.sandbox_base = sandbox_base;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"shell", anyone},
                                {"file", anyone}};
  core::FileAcl sandbox_acl;
  sandbox_acl.read = anyone;
  sandbox_acl.write = anyone;
  config.initial_file_acls = {{"/sandbox", sandbox_acl}};
  // The paper's .clarens_user_map: tuples of system user, DN list,
  // group list, reserved.
  config.user_map = core::parse_user_map(
      "joe ; /DC=org/DC=doegrids/OU=People/CN=Joe User ; ;\n");
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = joe;
  options.trust = &trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  std::printf("[1] shell.cmd_info: who am I on this machine?\n");
  rpc::Value info = client.call("shell.cmd_info");
  std::string sandbox = info.at("sandbox").as_string();
  std::printf("    mapped user: %s, sandbox: %s (visible to file.*)\n",
              info.at("user").as_string().c_str(), sandbox.c_str());

  std::printf("\n[2] upload an input file through the file service:\n");
  client.call("file.write", {rpc::Value(sandbox + "/jobs.txt"),
                             rpc::Value("reco-run2005A\nskim-muons\n"
                                        "merge-ntuples\nreco-run2005B\n")});
  std::printf("    wrote %s/jobs.txt\n", sandbox.c_str());

  std::printf("\n[3] work in the sandbox with shell commands:\n");
  auto run = [&](const std::string& command) {
    rpc::Value result = client.call("shell.cmd", {rpc::Value(command)});
    std::printf("    $ %s\n", command.c_str());
    for (const auto& line :
         util::split(result.at("stdout").as_string(), '\n')) {
      if (!line.empty()) std::printf("      %s\n", line.c_str());
    }
    if (result.at("exit_code").as_int() != 0) {
      std::printf("      (exit %lld: %s)\n",
                  static_cast<long long>(result.at("exit_code").as_int()),
                  util::trim(result.at("stderr").as_string()).data());
    }
    return result;
  };
  run("ls");
  run("wc jobs.txt");
  run("grep reco jobs.txt");
  run("mkdir output");
  run("cp jobs.txt output/completed.txt");
  run("find .");

  std::printf("\n[4] fetch results back through the file service:\n");
  auto result = client.file_read(sandbox + "/output/completed.txt", 0, 1 << 16);
  std::printf("    output/completed.txt (%zu bytes) retrieved\n", result.size());

  std::printf("\n[5] sandbox confinement:\n");
  rpc::Value escape = client.call("shell.cmd",
                                  {rpc::Value("cat ../../../etc/passwd")});
  std::printf("    escape attempt exit=%lld (%s)\n",
              static_cast<long long>(escape.at("exit_code").as_int()),
              util::trim(escape.at("stderr").as_string()).data());

  std::printf("\n[6] unmapped DN is refused outright:\n");
  client::ClientOptions eve_options = options;
  eve_options.credential = eve;
  client::ClarensClient blocked(eve_options);
  blocked.connect();
  blocked.authenticate();
  try {
    blocked.call("shell.cmd", {rpc::Value("id")});
  } catch (const rpc::Fault& fault) {
    std::printf("    %s\n", fault.what());
  }

  server.stop();
  std::filesystem::remove_all(sandbox_base);
  return 0;
}
