// Quickstart: the smallest complete Clarens deployment.
//
//  1. create a certificate authority and issue server + user credentials;
//  2. start a Clarens server with an ACL that admits authenticated users
//     to the system and echo modules;
//  3. connect a client, authenticate with the certificate
//     (challenge-response over plaintext), and make a few calls.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "client/client.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"

using namespace clarens;

int main() {
  // --- 1. a tiny PKI ---------------------------------------------------
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=quickstart.org/CN=Demo CA"));
  pki::Credential user = ca.issue_user(
      pki::DistinguishedName::parse("/O=quickstart.org/OU=People/CN=Demo User"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  // --- 2. the server ---------------------------------------------------
  core::ClarensConfig config;
  config.trust = trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};  // any *authenticated* DN
  config.initial_method_acls = {{"system", anyone}, {"echo", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();
  std::printf("server listening on %s\n", server.url().c_str());

  // --- 3. the client ---------------------------------------------------
  client::ClientOptions options;
  options.port = server.port();
  options.credential = user;
  options.trust = &trust;
  client::ClarensClient client(options);
  client.connect();
  std::string session = client.authenticate();
  std::printf("authenticated, session token: %s\n", session.c_str());

  rpc::Value who = client.call("system.whoami");
  std::printf("server sees us as: %s\n", who.at("dn").as_string().c_str());

  rpc::Value methods = client.call("system.list_methods");
  std::printf("server exposes %zu methods, e.g.:\n", methods.as_array().size());
  for (std::size_t i = 0; i < 5 && i < methods.as_array().size(); ++i) {
    std::printf("  %s\n", methods.as_array()[i].as_string().c_str());
  }

  rpc::Value echoed = client.call("echo.echo", {rpc::Value("hello, grid!")});
  std::printf("echo.echo says: %s\n", echoed.as_string().c_str());

  server.stop();
  std::printf("done.\n");
  return 0;
}
