// Virtual Organization administration — builds the paper's Figure-2 tree
// over RPC and walks through the access-control rules of §2.1/§2.2:
// root admins, per-branch group admins, DN-prefix membership, inherited
// membership, and method ACLs that reference VO groups.
#include <cstdio>

#include "client/client.hpp"
#include "rpc/fault.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"

using namespace clarens;

namespace {

void show(const char* what, bool value) {
  std::printf("    %-58s %s\n", what, value ? "yes" : "no");
}

}  // namespace

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential root_admin = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Root Admin"));
  pki::Credential branch_admin = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Branch Admin"));
  pki::Credential member = ca.issue_user(
      pki::DistinguishedName::parse("/O=grid.org/OU=People/CN=Plain Member"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());

  core::ClarensConfig config;
  config.trust = trust;
  config.admins = {"/O=grid.org/OU=People/CN=Root Admin"};
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"vo", anyone},
                                {"acl", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();

  auto connect = [&](const pki::Credential& cred) {
    client::ClientOptions options;
    options.port = server.port();
    options.credential = cred;
    options.trust = &trust;
    auto client = std::make_unique<client::ClarensClient>(options);
    client->connect();
    client->authenticate();
    return client;
  };
  auto root = connect(root_admin);
  auto branch = connect(branch_admin);
  auto plain = connect(member);

  std::printf("[1] root admin builds the Figure-2 tree (A, B, C; A.1-A.3):\n");
  for (const char* g : {"A", "B", "C"}) root->call("vo.create_group", {rpc::Value(g)});
  for (const char* g : {"A.1", "A.2", "A.3"}) root->call("vo.create_group", {rpc::Value(g)});
  rpc::Value groups = root->call("vo.groups");
  std::printf("    groups:");
  for (const auto& g : groups.as_array()) std::printf(" %s", g.as_string().c_str());
  std::printf("\n");

  std::printf("\n[2] delegate branch A to the branch admin:\n");
  root->call("vo.add_admin", {rpc::Value("A"),
                              rpc::Value(branch_admin.dn().str())});
  // The branch admin may manage A and below...
  branch->call("vo.add_member",
               {rpc::Value("A.1"), rpc::Value(member.dn().str())});
  std::printf("    branch admin added a member to A.1\n");
  // ...but not other branches or the top level.
  try {
    branch->call("vo.create_group", {rpc::Value("D")});
  } catch (const rpc::Fault& fault) {
    std::printf("    creating top-level D refused: %s\n", fault.what());
  }
  try {
    branch->call("vo.add_member", {rpc::Value("B"), rpc::Value(member.dn().str())});
  } catch (const rpc::Fault& fault) {
    std::printf("    touching branch B refused: %s\n", fault.what());
  }

  std::printf("\n[3] DN-prefix membership (\"only the initial significant "
              "part\"):\n");
  root->call("vo.add_member",
             {rpc::Value("B"), rpc::Value("/O=grid.org/OU=People")});
  auto is_member = [&](const char* group, const std::string& dn) {
    return root
        ->call("vo.is_member", {rpc::Value(group), rpc::Value(dn)})
        .as_bool();
  };
  show("every /O=grid.org person is in B", is_member("B", member.dn().str()));
  show("a service DN is NOT in B",
       is_member("B", "/O=grid.org/OU=Services/CN=host/x.org"));

  std::printf("\n[4] inherited membership (member of A.1 via A):\n");
  root->call("vo.add_member", {rpc::Value("A"),
                               rpc::Value(branch_admin.dn().str())});
  show("branch admin (member of A) is member of A.1",
       is_member("A.1", branch_admin.dn().str()));
  show("plain member (in A.1 only) is member of A",
       is_member("A", member.dn().str()));

  std::printf("\n[5] method ACL referencing a VO group:\n");
  // Root grants the (hypothetical) analysis module to members of A.
  rpc::Value spec = rpc::Value::struct_();
  spec.set("order", "allow,deny");
  rpc::Value allow_groups = rpc::Value::array();
  allow_groups.push("A");
  spec.set("allow_dns", rpc::Value::array());
  spec.set("allow_groups", allow_groups);
  spec.set("deny_dns", rpc::Value::array());
  spec.set("deny_groups", rpc::Value::array());
  root->call("acl.set_method", {rpc::Value("analysis"), spec});
  auto can_call = [&](const std::string& dn) {
    return root
        ->call("acl.check_method", {rpc::Value("analysis.run"), rpc::Value(dn)})
        .as_bool();
  };
  show("A-member may call analysis.run", can_call(branch_admin.dn().str()));
  show("non-member may call analysis.run", can_call(member.dn().str()));

  std::printf("\n[6] plain members cannot administer:\n");
  try {
    plain->call("vo.create_group", {rpc::Value("E")});
  } catch (const rpc::Fault& fault) {
    std::printf("    refused: %s\n", fault.what());
  }

  server.stop();
  return 0;
}
