// Replica transfer between two sites (paper §6: "robust file transfer
// between different mass storage facilities"), driven entirely through
// the delegation machinery of §2.6:
//
//  1. CERN holds a dataset; Caltech wants a replica.
//  2. The physicist stores a proxy on the *Caltech* server.
//  3. She asks Caltech to pull the file from CERN (transfer.start).
//  4. Caltech authenticates to CERN *as her* using the stored proxy —
//     CERN's read ACL and Caltech's write ACL both apply to her identity.
//  5. The transfer streams in blocks and is MD5-verified end to end.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "pki/authority.hpp"
#include "rpc/fault.hpp"

using namespace clarens;

int main() {
  auto ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=grid.org/CN=Grid CA"));
  pki::Credential physicist = ca.issue_user(pki::DistinguishedName::parse(
      "/O=grid.org/OU=People/CN=Pat Physicist"));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate());
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};

  // --- CERN: the source site --------------------------------------------
  std::string cern_dir = "/tmp/clarens_example_cern";
  std::filesystem::remove_all(cern_dir);
  std::filesystem::create_directories(cern_dir);
  {
    std::ofstream out(cern_dir + "/run2005A.evt", std::ios::binary);
    for (int i = 0; i < 2 * 1024 * 1024; ++i) out.put(static_cast<char>(i * 131));
  }
  core::ClarensConfig cern_config;
  cern_config.trust = trust;
  cern_config.file_roots = {{"/store", cern_dir}};
  core::FileAcl cern_acl;
  cern_acl.read.allow_dns = {"/O=grid.org/OU=People"};
  cern_config.initial_file_acls = {{"/store", cern_acl}};
  cern_config.initial_method_acls = {{"system", anyone}, {"file", anyone}};
  core::ClarensServer cern(std::move(cern_config));
  cern.start();

  // --- Caltech: the destination site -------------------------------------
  std::string caltech_dir = "/tmp/clarens_example_caltech";
  std::filesystem::remove_all(caltech_dir);
  std::filesystem::create_directories(caltech_dir);
  core::ClarensConfig caltech_config;
  caltech_config.trust = trust;
  caltech_config.file_roots = {{"/replica", caltech_dir}};
  core::FileAcl caltech_acl;
  caltech_acl.read = anyone;
  caltech_acl.write.allow_dns = {"/O=grid.org/OU=People"};
  caltech_config.initial_file_acls = {{"/replica", caltech_acl}};
  caltech_config.initial_method_acls = {{"system", anyone}, {"file", anyone},
                                        {"proxy", anyone}, {"transfer", anyone}};
  core::ClarensServer caltech(std::move(caltech_config));
  caltech.start();

  std::printf("CERN at %s, Caltech at %s\n", cern.url().c_str(),
              caltech.url().c_str());

  client::ClientOptions options;
  options.port = caltech.port();
  options.credential = physicist;
  options.trust = &trust;
  client::ClarensClient session(options);
  session.connect();
  session.authenticate();

  std::printf("\n[1] store a proxy on Caltech (enables delegation):\n");
  pki::Credential proxy = pki::issue_proxy(physicist);
  session.call("proxy.store", {rpc::Value(proxy.encode()),
                               rpc::Value(physicist.certificate.encode()),
                               rpc::Value("replica-pw")});
  std::printf("    stored for %s\n", physicist.dn().str().c_str());

  std::printf("\n[2] ask Caltech to pull the dataset from CERN:\n");
  std::string id =
      session
          .call("transfer.start",
                {rpc::Value("http://127.0.0.1:" + std::to_string(cern.port())),
                 rpc::Value("/store/run2005A.evt"),
                 rpc::Value("/replica/run2005A.evt"),
                 rpc::Value("replica-pw")})
          .as_string();
  rpc::Value status;
  for (;;) {
    status = session.call("transfer.status", {rpc::Value(id)});
    std::string state = status.at("state").as_string();
    std::printf("    %s (%lld bytes)\n", state.c_str(),
                static_cast<long long>(status.at("bytes").as_int()));
    if (state == "DONE" || state == "FAILED") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (status.at("state").as_string() != "DONE") {
    std::printf("transfer failed: %s\n",
                status.at("error").as_string().c_str());
    return 1;
  }
  std::printf("    md5 verified: %s\n",
              status.at("verified").as_bool() ? "yes" : "NO");

  std::printf("\n[3] the replica is now served locally by Caltech:\n");
  rpc::Value stat = session.call("file.stat",
                                 {rpc::Value("/replica/run2005A.evt")});
  std::printf("    /replica/run2005A.evt (%lld bytes)\n",
              static_cast<long long>(stat.at("size").as_int()));

  cern.stop();
  caltech.stop();
  std::filesystem::remove_all(cern_dir);
  std::filesystem::remove_all(caltech_dir);
  return 0;
}
