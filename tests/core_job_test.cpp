// Tests for the job submission service: lifecycle, ownership isolation,
// cancellation, restart recovery, and the RPC surface.
#include <gtest/gtest.h>

#include <fstream>

#include "client/client.hpp"
#include "core/job_service.hpp"
#include "core/server.hpp"
#include "core/shell_service.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

const char* kJoeStr = "/O=g/OU=People/CN=Joe";
const char* kAnnStr = "/O=g/OU=People/CN=Ann";

pki::DistinguishedName dn(const char* s) {
  return pki::DistinguishedName::parse(s);
}

struct JobFixture : ::testing::Test {
  db::Store store;
  VoManager vo{store, {}};
  TempDir tmp;
  ShellService shell{vo, tmp.sub("sandboxes")};
  JobService jobs{store, shell, 2};

  JobFixture() {
    UserMapEntry joe;
    joe.system_user = "joe";
    joe.dns = {kJoeStr};
    UserMapEntry ann;
    ann.system_user = "ann";
    ann.dns = {kAnnStr};
    shell.set_user_map({joe, ann});
  }
};

TEST_F(JobFixture, SubmitRunsToCompletion) {
  std::string id = jobs.submit(dn(kJoeStr), "echo job ran");
  Job job = jobs.wait(id, dn(kJoeStr));
  EXPECT_EQ(job.state, JobState::Done);
  EXPECT_EQ(job.exit_code, 0);
  EXPECT_EQ(job.output, "job ran\n");
  EXPECT_GE(job.finished, job.submitted);
}

TEST_F(JobFixture, FailingCommandIsFailed) {
  std::string id = jobs.submit(dn(kJoeStr), "cat /no/such/file");
  Job job = jobs.wait(id, dn(kJoeStr));
  EXPECT_EQ(job.state, JobState::Failed);
  EXPECT_NE(job.exit_code, 0);
  EXPECT_FALSE(job.error.empty());
}

TEST_F(JobFixture, UnmappedOwnerRefused) {
  EXPECT_THROW(jobs.submit(dn("/O=elsewhere/CN=Eve"), "echo hi"), AccessError);
}

TEST_F(JobFixture, OwnershipIsolation) {
  std::string id = jobs.submit(dn(kJoeStr), "echo secret");
  jobs.wait(id, dn(kJoeStr));
  EXPECT_THROW(jobs.status(id, dn(kAnnStr)), AccessError);
  EXPECT_THROW(jobs.cancel(id, dn(kAnnStr)), AccessError);
  EXPECT_THROW(jobs.purge(id, dn(kAnnStr)), AccessError);
  EXPECT_THROW(jobs.status("no-such-job", dn(kJoeStr)), NotFoundError);
}

TEST_F(JobFixture, JobsRunInOwnersSandbox) {
  std::string id = jobs.submit(dn(kJoeStr), "touch from-job.txt");
  jobs.wait(id, dn(kJoeStr));
  EXPECT_TRUE(std::filesystem::exists(shell.sandbox_dir("joe") +
                                      "/from-job.txt"));
  // Ann's sandbox is untouched.
  EXPECT_FALSE(std::filesystem::exists(shell.sandbox_dir("ann") +
                                       "/from-job.txt"));
}

TEST_F(JobFixture, ListNewestFirst) {
  std::string a = jobs.submit(dn(kJoeStr), "echo a");
  jobs.wait(a, dn(kJoeStr));
  std::string b = jobs.submit(dn(kJoeStr), "echo b");
  jobs.wait(b, dn(kJoeStr));
  jobs.submit(dn(kAnnStr), "echo ann");
  auto listing = jobs.list(dn(kJoeStr));
  ASSERT_EQ(listing.size(), 2u);
  // Newest first (same-second ties permitted either way; both are Joe's).
  EXPECT_EQ(listing[0].owner, kJoeStr);
  EXPECT_EQ(listing[1].owner, kJoeStr);
}

TEST_F(JobFixture, PurgeRemovesTerminalOnly) {
  std::string id = jobs.submit(dn(kJoeStr), "echo done");
  jobs.wait(id, dn(kJoeStr));
  jobs.purge(id, dn(kJoeStr));
  EXPECT_THROW(jobs.status(id, dn(kJoeStr)), NotFoundError);
}

TEST(JobRecovery, OrphanedJobsRequeueOnRestart) {
  TempDir tmp;
  db::Store store(tmp.sub("db"));
  VoManager vo(store, {});
  ShellService shell(vo, tmp.sub("sandboxes"));
  UserMapEntry joe;
  joe.system_user = "joe";
  joe.dns = {kJoeStr};
  shell.set_user_map({joe});

  // Forge a job record stuck in RUNNING (as if the server crashed).
  store.put("jobs", "orphan1",
            R"({"owner":"/O=g/OU=People/CN=Joe","command":"echo recovered",)"
            R"("state":"RUNNING","exit_code":0,"output":"","error":"",)"
            R"("submitted":1,"finished":0})");

  JobService jobs(store, shell, 1);
  Job job = jobs.wait("orphan1", dn(kJoeStr));
  EXPECT_EQ(job.state, JobState::Done);
  EXPECT_EQ(job.output, "recovered\n");
}

TEST(JobRpc, EndToEndOverWire) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.sandbox_base = tmp.sub("sandboxes");
  UserMapEntry entry;
  entry.system_user = "bob";
  entry.dns = {"/O=testgrid.org/OU=People/CN=Bob Baker"};
  config.user_map = {entry};
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"job", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.bob;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  std::string id =
      client.call("job.submit", {rpc::Value("echo grid job")}).as_string();
  rpc::Value status;
  for (int i = 0; i < 200; ++i) {
    status = client.call("job.status", {rpc::Value(id)});
    std::string state = status.at("state").as_string();
    if (state == "DONE" || state == "FAILED") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(status.at("state").as_string(), "DONE");
  EXPECT_EQ(status.at("output").as_string(), "grid job\n");

  rpc::Value listing = client.call("job.list");
  EXPECT_EQ(listing.as_array().size(), 1u);
  EXPECT_TRUE(client.call("job.purge", {rpc::Value(id)}).as_bool());
  EXPECT_EQ(client.call("job.list").as_array().size(), 0u);

  // Carol (unmapped) cannot submit.
  client::ClientOptions carol_options = options;
  carol_options.credential = pki.carol;
  client::ClarensClient carol(carol_options);
  carol.connect();
  carol.authenticate();
  EXPECT_THROW(carol.call("job.submit", {rpc::Value("echo nope")}), rpc::Fault);
  server.stop();
}

}  // namespace
}  // namespace clarens::core
