// Unit tests for Virtual Organization management: the Fig.-2 group tree,
// hierarchical membership, DN-prefix member entries, and the
// authorization rules on every mutation.
#include <gtest/gtest.h>

#include "core/vo.hpp"
#include "db/store.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

const char* kRoot = "/O=grid/OU=People/CN=Root Admin";
const char* kAliceStr = "/O=grid/OU=People/CN=Alice";
const char* kBobStr = "/O=grid/OU=People/CN=Bob";

pki::DistinguishedName dn(const char* s) {
  return pki::DistinguishedName::parse(s);
}

struct VoFixture : ::testing::Test {
  db::Store store;
  VoManager vo{store, {kRoot}};
};

TEST_F(VoFixture, AdminsGroupSeededFromConfig) {
  EXPECT_TRUE(vo.group_exists(VoManager::kAdminsGroup));
  EXPECT_TRUE(vo.is_root_admin(dn(kRoot)));
  EXPECT_FALSE(vo.is_root_admin(dn(kAliceStr)));
}

TEST_F(VoFixture, AdminsGroupRepopulatedOnRestart) {
  vo.add_member(VoManager::kAdminsGroup, kAliceStr, dn(kRoot));
  EXPECT_TRUE(vo.is_root_admin(dn(kAliceStr)));
  // "Restart" with a different configured list: stale DB state replaced.
  VoManager restarted(store, {kBobStr});
  EXPECT_TRUE(restarted.is_root_admin(dn(kBobStr)));
  EXPECT_FALSE(restarted.is_root_admin(dn(kAliceStr)));
  EXPECT_FALSE(restarted.is_root_admin(dn(kRoot)));
}

TEST_F(VoFixture, PaperFigure2Tree) {
  // Top-level A, B, C with second level A.1, A.2, A.3.
  for (const char* g : {"A", "B", "C"}) vo.create_group(g, dn(kRoot));
  for (const char* g : {"A.1", "A.2", "A.3"}) vo.create_group(g, dn(kRoot));
  auto groups = vo.list_groups();
  EXPECT_EQ(groups.size(), 7u);  // + admins
  EXPECT_TRUE(vo.group_exists("A.2"));
}

TEST_F(VoFixture, HigherLevelMembersAreMembersBelow) {
  vo.create_group("A", dn(kRoot));
  vo.create_group("A.1", dn(kRoot));
  vo.add_member("A", kAliceStr, dn(kRoot));
  EXPECT_TRUE(vo.is_member("A", dn(kAliceStr)));
  EXPECT_TRUE(vo.is_member("A.1", dn(kAliceStr)));  // inherited downward
  // Not the other way around.
  vo.add_member("A.1", kBobStr, dn(kRoot));
  EXPECT_TRUE(vo.is_member("A.1", dn(kBobStr)));
  EXPECT_FALSE(vo.is_member("A", dn(kBobStr)));
}

TEST_F(VoFixture, DnPrefixMembership) {
  vo.create_group("physicists", dn(kRoot));
  // The paper's optimization: add all DOE People with one prefix entry.
  vo.add_member("physicists", "/O=grid/OU=People", dn(kRoot));
  EXPECT_TRUE(vo.is_member("physicists", dn(kAliceStr)));
  EXPECT_TRUE(vo.is_member("physicists", dn(kBobStr)));
  EXPECT_FALSE(vo.is_member("physicists",
                            dn("/O=grid/OU=Services/CN=host/x.org")));
  EXPECT_FALSE(vo.is_member("physicists", dn("/O=other/OU=People/CN=Eve")));
}

TEST_F(VoFixture, MembershipOfUnknownGroupIsFalse) {
  EXPECT_FALSE(vo.is_member("ghost", dn(kAliceStr)));
}

TEST_F(VoFixture, OnlyRootCreatesTopLevel) {
  EXPECT_THROW(vo.create_group("X", dn(kAliceStr)), AccessError);
  vo.create_group("X", dn(kRoot));
  EXPECT_TRUE(vo.group_exists("X"));
}

TEST_F(VoFixture, GroupAdminManagesLowerLevels) {
  vo.create_group("A", dn(kRoot));
  vo.add_admin("A", kAliceStr, dn(kRoot));
  // Alice (admin of A) can create and manage subgroups of A...
  vo.create_group("A.sub", dn(kAliceStr));
  vo.add_member("A.sub", kBobStr, dn(kAliceStr));
  EXPECT_TRUE(vo.is_member("A.sub", dn(kBobStr)));
  vo.remove_member("A.sub", kBobStr, dn(kAliceStr));
  EXPECT_FALSE(vo.is_member("A.sub", dn(kBobStr)));
  // ...but not create top-level groups or manage other branches.
  EXPECT_THROW(vo.create_group("B", dn(kAliceStr)), AccessError);
  vo.create_group("B", dn(kRoot));
  EXPECT_THROW(vo.add_member("B", kBobStr, dn(kAliceStr)), AccessError);
}

TEST_F(VoFixture, AdminsOfGroupCountAsMembers) {
  vo.create_group("A", dn(kRoot));
  vo.add_admin("A", kAliceStr, dn(kRoot));
  EXPECT_TRUE(vo.is_member("A", dn(kAliceStr)));
}

TEST_F(VoFixture, CreatorBecomesAdminOfNewGroup) {
  vo.create_group("A", dn(kRoot));
  vo.add_admin("A", kAliceStr, dn(kRoot));
  vo.create_group("A.x", dn(kAliceStr));
  EXPECT_TRUE(vo.is_admin("A.x", dn(kAliceStr)));
}

TEST_F(VoFixture, DeleteGroupRemovesDescendants) {
  vo.create_group("A", dn(kRoot));
  vo.create_group("A.1", dn(kRoot));
  vo.create_group("A.1.x", dn(kRoot));
  vo.create_group("AB", dn(kRoot));  // shares the "A" prefix but not branch
  vo.delete_group("A", dn(kRoot));
  EXPECT_FALSE(vo.group_exists("A"));
  EXPECT_FALSE(vo.group_exists("A.1"));
  EXPECT_FALSE(vo.group_exists("A.1.x"));
  EXPECT_TRUE(vo.group_exists("AB"));
}

TEST_F(VoFixture, GuardRails) {
  EXPECT_THROW(vo.create_group("admins", dn(kRoot)), AccessError);
  EXPECT_THROW(vo.delete_group("admins", dn(kRoot)), AccessError);
  EXPECT_THROW(vo.create_group(".bad", dn(kRoot)), ParseError);
  EXPECT_THROW(vo.create_group("sp ace", dn(kRoot)), ParseError);
  vo.create_group("A", dn(kRoot));
  EXPECT_THROW(vo.create_group("A", dn(kRoot)), Error);  // duplicate
  EXPECT_THROW(vo.create_group("Z.orphan", dn(kRoot)), NotFoundError);
  EXPECT_THROW(vo.add_member("A", "not-a-dn", dn(kRoot)), ParseError);
  EXPECT_THROW(vo.info("ghost"), NotFoundError);
}

TEST_F(VoFixture, AddMemberIsIdempotent) {
  vo.create_group("A", dn(kRoot));
  vo.add_member("A", kAliceStr, dn(kRoot));
  vo.add_member("A", kAliceStr, dn(kRoot));
  EXPECT_EQ(vo.info("A").members.size(), 1u);
}

}  // namespace
}  // namespace clarens::core
