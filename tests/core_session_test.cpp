// Unit tests for the DB-backed session manager.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;

TEST(Sessions, CreateAndLookup) {
  db::Store store;
  SessionManager sessions(store);
  Session created = sessions.create("/O=x/CN=alice", false);
  EXPECT_FALSE(created.id.empty());
  Session found = sessions.lookup(created.id);
  EXPECT_EQ(found.identity, "/O=x/CN=alice");
  EXPECT_FALSE(found.via_proxy);
  EXPECT_GT(found.expires, found.created);
}

TEST(Sessions, LookupUnknownThrowsAuthError) {
  db::Store store;
  SessionManager sessions(store);
  EXPECT_THROW(sessions.lookup("nope"), AuthError);
  EXPECT_THROW(sessions.lookup(""), AuthError);
}

TEST(Sessions, ExpiredSessionRejectedAndReaped) {
  db::Store store;
  SessionManager sessions(store, /*default_ttl=*/-1);  // born expired
  Session s = sessions.create("/O=x/CN=a", false);
  EXPECT_THROW(sessions.lookup(s.id), AuthError);
  // lookup is a read: the expired row stays in the store until reaped.
  EXPECT_EQ(sessions.active_count(), 1u);
  EXPECT_EQ(sessions.reap_expired(), 1u);
  EXPECT_EQ(sessions.active_count(), 0u);
  EXPECT_THROW(sessions.lookup(s.id), AuthError);
}

TEST(Sessions, RenewExtendsExpiry) {
  db::Store store;
  SessionManager sessions(store, 100);
  Session s = sessions.create("/O=x/CN=a", false);
  std::int64_t before = sessions.lookup(s.id).expires;
  sessions.renew(s.id, 100000);
  EXPECT_GT(sessions.lookup(s.id).expires, before);
}

TEST(Sessions, AttachProxyMarksDelegation) {
  db::Store store;
  SessionManager sessions(store);
  Session s = sessions.create("/O=x/CN=a", false);
  sessions.attach_proxy(s.id, "serial-123");
  Session updated = sessions.lookup(s.id);
  EXPECT_TRUE(updated.via_proxy);
  EXPECT_EQ(updated.attached_proxy_serial, "serial-123");
}

TEST(Sessions, DestroyRemoves) {
  db::Store store;
  SessionManager sessions(store);
  Session s = sessions.create("/O=x/CN=a", false);
  EXPECT_TRUE(sessions.destroy(s.id));
  EXPECT_FALSE(sessions.destroy(s.id));
  EXPECT_THROW(sessions.lookup(s.id), AuthError);
}

TEST(Sessions, ReapExpiredSweepsOnlyExpired) {
  db::Store store;
  SessionManager live(store, 10000);
  SessionManager dead(store, -1);
  live.create("/O=x/CN=keeper", false);
  dead.create("/O=x/CN=goner-1", false);
  dead.create("/O=x/CN=goner-2", false);
  EXPECT_EQ(live.reap_expired(), 2u);
  EXPECT_EQ(live.active_count(), 1u);
}

TEST(Sessions, PersistAcrossStoreReopen) {
  TempDir tmp;
  std::string id;
  {
    db::Store store(tmp.path());
    SessionManager sessions(store);
    id = sessions.create("/O=x/CN=alice", true).id;
  }
  {
    db::Store store(tmp.path());
    SessionManager sessions(store);
    Session s = sessions.lookup(id);
    EXPECT_EQ(s.identity, "/O=x/CN=alice");
    EXPECT_TRUE(s.via_proxy);
  }
}

TEST(Sessions, TokensAreUnique) {
  db::Store store;
  SessionManager sessions(store);
  std::set<std::string> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(sessions.create("/O=x/CN=a", false).id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

}  // namespace
}  // namespace clarens::core
