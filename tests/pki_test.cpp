// Unit tests for clarens::pki — DN algebra, certificates, the CA, proxy
// issuance and chain verification (including the delegation semantics the
// paper's proxy service relies on).
#include <gtest/gtest.h>

#include "pki/authority.hpp"
#include "pki/certificate.hpp"
#include "pki/dn.hpp"
#include "pki/verify.hpp"
#include "test_fixtures.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::pki {
namespace {

using clarens::testing::TestPki;

// ---------- DistinguishedName ----------

TEST(Dn, ParseAndRender) {
  auto dn = DistinguishedName::parse(
      "/O=doesciencegrid.org/OU=People/CN=John Smith 12345");
  EXPECT_EQ(dn.size(), 3u);
  EXPECT_EQ(dn.get("O"), "doesciencegrid.org");
  EXPECT_EQ(dn.get("OU"), "People");
  EXPECT_EQ(dn.get("CN"), "John Smith 12345");
  EXPECT_EQ(dn.str(), "/O=doesciencegrid.org/OU=People/CN=John Smith 12345");
}

TEST(Dn, SlashInsideValue) {
  // The paper's own server DN example.
  auto dn = DistinguishedName::parse(
      "/O=doesciencegrid.org/OU=Services/CN=host/www.mysite.edu");
  EXPECT_EQ(dn.size(), 3u);
  EXPECT_EQ(dn.get("CN"), "host/www.mysite.edu");
  // Round-trips.
  EXPECT_EQ(DistinguishedName::parse(dn.str()), dn);
}

TEST(Dn, EmptyAndInvalid) {
  EXPECT_TRUE(DistinguishedName::parse("").empty());
  EXPECT_THROW(DistinguishedName::parse("no-slash"), ParseError);
  EXPECT_THROW(DistinguishedName::parse("/=value"), ParseError);
  EXPECT_THROW(DistinguishedName::parse("/KEY="), ParseError);
  EXPECT_THROW(DistinguishedName::parse("/orphan"), ParseError);
}

TEST(Dn, PrefixMatching) {
  auto org = DistinguishedName::parse("/O=doesciencegrid.org/OU=People");
  auto person = DistinguishedName::parse(
      "/O=doesciencegrid.org/OU=People/CN=John Smith 12345");
  auto service = DistinguishedName::parse(
      "/O=doesciencegrid.org/OU=Services/CN=host/www.mysite.edu");
  EXPECT_TRUE(org.is_prefix_of(person));
  EXPECT_FALSE(org.is_prefix_of(service));  // OU differs
  EXPECT_FALSE(person.is_prefix_of(org));   // longer cannot prefix shorter
  EXPECT_TRUE(person.is_prefix_of(person)); // reflexive
  EXPECT_TRUE(DistinguishedName().is_prefix_of(person));  // empty prefixes all
}

TEST(Dn, WithAppendsAttribute) {
  auto user = DistinguishedName::parse("/O=x/CN=alice");
  auto proxy = user.with("CN", "proxy");
  EXPECT_EQ(proxy.str(), "/O=x/CN=alice/CN=proxy");
  EXPECT_TRUE(user.is_prefix_of(proxy));
}

TEST(Dn, OrderMattersForEquality) {
  auto a = DistinguishedName::parse("/O=x/CN=y");
  auto b = DistinguishedName::parse("/CN=y/O=x");
  EXPECT_NE(a, b);
}

// ---------- Certificates ----------

TEST(Certificate, EncodeDecodeRoundTrip) {
  const TestPki& pki = TestPki::instance();
  const Certificate& cert = pki.alice.certificate;
  Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded, cert);
  EXPECT_EQ(decoded.subject(), cert.subject());
  EXPECT_EQ(decoded.kind(), CertKind::User);
  EXPECT_TRUE(decoded.check_signature(pki.ca.certificate().public_key()));
}

TEST(Certificate, DecodeRejectsMissingFields) {
  EXPECT_THROW(Certificate::decode("kind:user\n"), ParseError);
  EXPECT_THROW(Certificate::decode("garbage without colon\n"), ParseError);
  EXPECT_THROW(Certificate::decode("serial:x\nkind:bogus\n"), ParseError);
}

TEST(Certificate, SignatureCoversEveryField) {
  const TestPki& pki = TestPki::instance();
  // Re-encode with a flipped validity and check the signature breaks.
  std::string text = pki.alice.certificate.encode();
  std::string tampered = text;
  auto pos = tampered.find("not-after:");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 10] = '9';
  Certificate cert = Certificate::decode(tampered);
  EXPECT_FALSE(cert.check_signature(pki.ca.certificate().public_key()));
}

TEST(Certificate, ValidityWindow) {
  const TestPki& pki = TestPki::instance();
  const Certificate& cert = pki.alice.certificate;
  EXPECT_TRUE(cert.valid_at(util::unix_now()));
  EXPECT_FALSE(cert.valid_at(cert.not_before() - 10));
  EXPECT_FALSE(cert.valid_at(cert.not_after() + 10));
}

TEST(Credential, EncodeDecodeRoundTrip) {
  const TestPki& pki = TestPki::instance();
  Credential decoded = Credential::decode(pki.bob.encode());
  EXPECT_EQ(decoded.certificate, pki.bob.certificate);
  // The decoded private key still signs correctly.
  auto sig = crypto::rsa_sign(decoded.private_key, "probe");
  EXPECT_TRUE(crypto::rsa_verify(decoded.certificate.public_key(), "probe", sig));
  EXPECT_THROW(Credential::decode(pki.bob.certificate.encode()), ParseError);
}

// ---------- CertificateAuthority ----------

TEST(Authority, IssuesVerifiableCertificates) {
  const TestPki& pki = TestPki::instance();
  EXPECT_TRUE(pki.ca.certificate().is_ca());
  EXPECT_EQ(pki.ca.certificate().subject(), pki.ca.certificate().issuer());
  EXPECT_TRUE(pki.ca.certificate().check_signature(
      pki.ca.certificate().public_key()));
  EXPECT_TRUE(pki.alice.certificate.check_signature(
      pki.ca.certificate().public_key()));
  EXPECT_EQ(pki.alice.certificate.issuer(), pki.ca.certificate().subject());
  EXPECT_EQ(pki.server.certificate.kind(), CertKind::Server);
}

TEST(Authority, SerialsAreUnique) {
  const TestPki& pki = TestPki::instance();
  EXPECT_NE(pki.alice.certificate.serial(), pki.bob.certificate.serial());
}

// ---------- Proxy issuance ----------

TEST(Proxy, SubjectExtendsUserAndSignedByUser) {
  const TestPki& pki = TestPki::instance();
  Credential proxy = issue_proxy(pki.alice, 3600);
  EXPECT_TRUE(proxy.certificate.is_proxy());
  EXPECT_EQ(proxy.certificate.issuer(), pki.alice.certificate.subject());
  EXPECT_TRUE(pki.alice.certificate.subject().is_prefix_of(
      proxy.certificate.subject()));
  EXPECT_EQ(proxy.certificate.subject().str(),
            pki.alice.certificate.subject().str() + "/CN=proxy");
  EXPECT_TRUE(
      proxy.certificate.check_signature(pki.alice.certificate.public_key()));
}

// ---------- TrustStore ----------

TEST(TrustStore, RejectsNonCaAnchors) {
  const TestPki& pki = TestPki::instance();
  TrustStore store;
  EXPECT_THROW(store.add_authority(pki.alice.certificate), Error);
}

TEST(TrustStore, VerifiesDirectUserChain) {
  const TestPki& pki = TestPki::instance();
  auto result = pki.trust.verify({pki.alice.certificate}, util::unix_now());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.identity, pki.alice.certificate.subject());
  EXPECT_FALSE(result.via_proxy);
}

TEST(TrustStore, RejectsUnknownIssuer) {
  const TestPki& pki = TestPki::instance();
  auto other_ca = CertificateAuthority::create(
      DistinguishedName::parse("/O=rogue/CN=Rogue CA"), 512);
  auto mallory = other_ca.issue_user(DistinguishedName::parse("/O=rogue/CN=M"));
  auto result = pki.trust.verify({mallory.certificate}, util::unix_now());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown issuer"), std::string::npos);
}

TEST(TrustStore, RejectsExpiredCertificate) {
  const TestPki& pki = TestPki::instance();
  auto shortlived = pki.ca.issue_user(
      DistinguishedName::parse("/O=testgrid.org/OU=People/CN=Flash"), 1);
  auto result = pki.trust.verify({shortlived.certificate},
                                 util::unix_now() + 3600);
  EXPECT_FALSE(result.ok);
}

TEST(TrustStore, ProxyChainYieldsUserIdentity) {
  const TestPki& pki = TestPki::instance();
  Credential proxy = issue_proxy(pki.alice);
  auto result = pki.trust.verify({proxy.certificate, pki.alice.certificate},
                                 util::unix_now());
  EXPECT_TRUE(result.ok) << result.error;
  // Delegation: the effective identity is Alice, not /CN=proxy.
  EXPECT_EQ(result.identity, pki.alice.certificate.subject());
  EXPECT_TRUE(result.via_proxy);
}

TEST(TrustStore, ProxySignedByWrongUserRejected) {
  const TestPki& pki = TestPki::instance();
  Credential proxy = issue_proxy(pki.alice);
  // Present Bob's certificate as the middle link: subject mismatch.
  auto result = pki.trust.verify({proxy.certificate, pki.bob.certificate},
                                 util::unix_now());
  EXPECT_FALSE(result.ok);
}

TEST(TrustStore, ExpiredProxyRejected) {
  const TestPki& pki = TestPki::instance();
  Credential proxy = issue_proxy(pki.alice, 1);
  auto result = pki.trust.verify({proxy.certificate, pki.alice.certificate},
                                 util::unix_now() + 7200);
  EXPECT_FALSE(result.ok);
}

TEST(TrustStore, MalformedChainsRejected) {
  const TestPki& pki = TestPki::instance();
  Credential proxy = issue_proxy(pki.alice);
  EXPECT_FALSE(pki.trust.verify({}, util::unix_now()).ok);
  // Proxy without the user certificate.
  EXPECT_FALSE(pki.trust.verify({proxy.certificate}, util::unix_now()).ok);
  // Non-proxy chain with extra certificates.
  EXPECT_FALSE(pki.trust
                   .verify({pki.alice.certificate, pki.bob.certificate},
                           util::unix_now())
                   .ok);
  // Nested proxies are refused.
  Credential proxy2 = issue_proxy(proxy);
  EXPECT_FALSE(
      pki.trust.verify({proxy2.certificate, proxy.certificate}, util::unix_now())
          .ok);
}

}  // namespace
}  // namespace clarens::pki
