// Unit tests for the shell service: user-map parsing (the paper's
// .clarens_user_map format), tokenizing, the restricted interpreter,
// sandbox confinement and per-user isolation.
#include <gtest/gtest.h>

#include <fstream>

#include "core/shell_service.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;

const char* kJoeStr = "/DC=org/DC=doegrids/OU=People/CN=Joe User";
const char* kAnnStr = "/DC=org/DC=doegrids/OU=People/CN=Ann Other";
const char* kEveStr = "/O=elsewhere/CN=Eve";

pki::DistinguishedName dn(const char* s) {
  return pki::DistinguishedName::parse(s);
}

TEST(UserMap, ParsesPaperFormat) {
  auto entries = parse_user_map(
      "# comment line\n"
      "joe ; /DC=org/DC=doegrids/OU=People/CN=Joe User ; cms.users ; \n"
      "ops ; /O=a/CN=x , /O=b/CN=y ; g1, g2 ; reserved1\n"
      "\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].system_user, "joe");
  ASSERT_EQ(entries[0].dns.size(), 1u);
  EXPECT_EQ(entries[0].dns[0], "/DC=org/DC=doegrids/OU=People/CN=Joe User");
  EXPECT_EQ(entries[0].groups, (std::vector<std::string>{"cms.users"}));
  EXPECT_EQ(entries[1].dns.size(), 2u);
  EXPECT_EQ(entries[1].groups.size(), 2u);
  EXPECT_EQ(entries[1].reserved, (std::vector<std::string>{"reserved1"}));
}

TEST(UserMap, RejectsMissingUser) {
  EXPECT_THROW(parse_user_map(" ; /O=x/CN=y ; ;\n"), ParseError);
}

TEST(Tokenize, QuotingRules) {
  EXPECT_EQ(shell_tokenize("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(shell_tokenize("echo 'two words'"),
            (std::vector<std::string>{"echo", "two words"}));
  EXPECT_EQ(shell_tokenize("echo \"it's\""),
            (std::vector<std::string>{"echo", "it's"}));
  EXPECT_EQ(shell_tokenize("a''b"), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(shell_tokenize("   ").empty());
  EXPECT_THROW(shell_tokenize("echo 'open"), ParseError);
}

struct ShellFixture : ::testing::Test {
  db::Store store;
  VoManager vo{store, {"/O=grid/CN=Root"}};
  TempDir tmp;
  ShellService shell{vo, tmp.sub("sandboxes")};

  ShellFixture() {
    UserMapEntry joe;
    joe.system_user = "joe";
    joe.dns = {kJoeStr};
    UserMapEntry grp;
    grp.system_user = "cmsops";
    grp.groups = {"cms"};
    shell.set_user_map({joe, grp});
    vo.create_group("cms", dn("/O=grid/CN=Root"));
    vo.add_member("cms", kAnnStr, dn("/O=grid/CN=Root"));
  }
};

TEST_F(ShellFixture, MapsByDnAndByGroup) {
  EXPECT_EQ(shell.map_user(dn(kJoeStr)), "joe");
  EXPECT_EQ(shell.map_user(dn(kAnnStr)), "cmsops");  // via VO group
  EXPECT_FALSE(shell.map_user(dn(kEveStr)).has_value());
}

TEST_F(ShellFixture, UnmappedUserRefused) {
  EXPECT_THROW(shell.execute(dn(kEveStr), "ls"), AccessError);
  EXPECT_THROW(shell.cmd_info(dn(kEveStr)), AccessError);
}

TEST_F(ShellFixture, CmdInfoReturnsFileServicePath) {
  EXPECT_EQ(shell.cmd_info(dn(kJoeStr)), "/sandbox/joe");
  EXPECT_TRUE(std::filesystem::is_directory(shell.sandbox_dir("joe")));
}

TEST_F(ShellFixture, EchoAndPipelineOfCommands) {
  ShellResult r = shell.execute(dn(kJoeStr), "echo hello grid");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "hello grid\n");

  shell.execute(dn(kJoeStr), "mkdir work");
  shell.execute(dn(kJoeStr), "cd work");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "pwd").out, "/work\n");
  shell.execute(dn(kJoeStr), "touch a.txt");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "ls").out, "a.txt\n");
}

TEST_F(ShellFixture, FileManipulationCommands) {
  shell.cmd_info(dn(kJoeStr));  // materialize the sandbox
  std::ofstream(shell.sandbox_dir("joe") + "/data.txt")
      << "alpha\nbeta\ngamma\n";
  EXPECT_EQ(shell.execute(dn(kJoeStr), "cat data.txt").out,
            "alpha\nbeta\ngamma\n");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "wc data.txt").out,
            "3 3 17 data.txt\n");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "grep beta data.txt").out, "beta\n");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "head -n 1 data.txt").out, "alpha\n");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "tail -n 1 data.txt").out, "gamma\n");
  shell.execute(dn(kJoeStr), "cp data.txt copy.txt");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "cat copy.txt").out,
            "alpha\nbeta\ngamma\n");
  shell.execute(dn(kJoeStr), "mv copy.txt moved.txt");
  EXPECT_EQ(shell.execute(dn(kJoeStr), "grep moved.txt missing").exit_code, 1);
  shell.execute(dn(kJoeStr), "rm moved.txt");
  EXPECT_NE(shell.execute(dn(kJoeStr), "cat moved.txt").exit_code, 0);
}

TEST_F(ShellFixture, GrepNoMatchExitsNonzero) {
  shell.cmd_info(dn(kJoeStr));  // materialize the sandbox
  std::ofstream(shell.sandbox_dir("joe") + "/f.txt") << "only this\n";
  ShellResult r = shell.execute(dn(kJoeStr), "grep absent f.txt");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.out.empty());
}

TEST_F(ShellFixture, SandboxEscapeRefused) {
  ShellResult up = shell.execute(dn(kJoeStr), "cat ../../../etc/passwd");
  EXPECT_NE(up.exit_code, 0);
  ShellResult abs = shell.execute(dn(kJoeStr), "ls /etc");
  EXPECT_NE(abs.exit_code, 0);  // "/etc" maps inside the sandbox: absent
  ShellResult cd = shell.execute(dn(kJoeStr), "cd ..");
  EXPECT_NE(cd.exit_code, 0);
}

TEST_F(ShellFixture, UsersAreIsolated) {
  shell.execute(dn(kJoeStr), "touch joes-file");
  ShellResult ann = shell.execute(dn(kAnnStr), "ls");
  EXPECT_EQ(ann.out.find("joes-file"), std::string::npos);
  // id reports the mapped system user.
  EXPECT_EQ(shell.execute(dn(kAnnStr), "id").out, "uid=cmsops\n");
}

TEST_F(ShellFixture, SandboxReusedAcrossCommands) {
  shell.execute(dn(kJoeStr), "mkdir persistent");
  // "Re-used for subsequent commands" (§2.5): state survives.
  EXPECT_NE(shell.execute(dn(kJoeStr), "ls").out.find("persistent/"),
            std::string::npos);
}

TEST_F(ShellFixture, UnknownCommandFailsCleanly) {
  ShellResult r = shell.execute(dn(kJoeStr), "rm -rf --no-preserve-root /");
  // rm flags are ignored; "/" resolves to the sandbox root, which
  // remove_all refuses... ensure nothing above the sandbox was touched.
  EXPECT_TRUE(std::filesystem::exists(shell.sandbox_base()));
  ShellResult unknown = shell.execute(dn(kJoeStr), "sudo reboot");
  EXPECT_EQ(unknown.exit_code, 1);
  EXPECT_NE(unknown.err.find("command not found"), std::string::npos);
}

TEST_F(ShellFixture, FindListsRecursively) {
  shell.execute(dn(kJoeStr), "mkdir d1");
  shell.execute(dn(kJoeStr), "touch d1/inner.txt");
  ShellResult r = shell.execute(dn(kJoeStr), "find d1");
  EXPECT_NE(r.out.find("d1"), std::string::npos);
  EXPECT_NE(r.out.find("d1/inner.txt"), std::string::npos);
}

TEST_F(ShellFixture, LoadUserMapFromFile) {
  TempDir tmp2;
  std::string path = tmp2.path() + "/.clarens_user_map";
  std::ofstream(path) << "mapped ; " << kEveStr << " ; ;\n";
  shell.load_user_map_file(path);
  EXPECT_EQ(shell.map_user(dn(kEveStr)), "mapped");
  EXPECT_THROW(shell.load_user_map_file("/no/such/file"), SystemError);
}

}  // namespace
}  // namespace clarens::core
