// Reactor/worker-pool server behaviours that the basic end-to-end tests
// in http_test.cpp do not pin down: keep-alive pipelining (multiple
// requests in one TCP segment, responses in order), requests arriving in
// arbitrary partial pieces, Connection: close semantics, the non-blocking
// 503 load-shed path, many concurrent keep-alive connections, and prompt
// stop() with idle connections still open.
#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/server.hpp"
#include "net/socket.hpp"
#include "util/sync.hpp"

namespace clarens::http {
namespace {

Server make_echo_server(ServerOptions options = {}) {
  return Server(std::move(options), [](const Request& request, const Peer&) {
    return Response::make(200, "echo:" + request.body);
  });
}

/// Read responses off `conn` until `count` have parsed (or EOF).
std::vector<Response> read_responses(net::TcpConnection& conn,
                                     std::size_t count) {
  std::vector<Response> out;
  ResponseParser parser;
  std::array<std::uint8_t, 8192> buf;
  while (out.size() < count) {
    while (auto response = parser.next()) {
      out.push_back(std::move(*response));
      if (out.size() == count) return out;
    }
    std::size_t n = conn.read(buf);
    if (n == 0) break;
    parser.feed(std::span<const std::uint8_t>(buf.data(), n));
  }
  while (auto response = parser.next()) out.push_back(std::move(*response));
  return out;
}

std::string post(const std::string& body) {
  return "POST / HTTP/1.1\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\n\r\n" + body;
}

TEST(ServerPipelining, TwoRequestsInOneSegmentAnsweredInOrder) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  // One write_all → very likely one TCP segment; either way both requests
  // sit in the parser before the first response is produced.
  conn.write_all(post("one") + post("two"));
  std::vector<Response> responses = read_responses(conn, 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "echo:one");
  EXPECT_EQ(responses[1].body, "echo:two");
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

TEST(ServerPipelining, DeepPipelineStaysOrdered) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  std::string wire;
  for (int i = 0; i < 20; ++i) wire += post("r" + std::to_string(i));
  conn.write_all(wire);
  std::vector<Response> responses = read_responses(conn, 20);
  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses[i].body, "echo:r" + std::to_string(i));
  }
  server.stop();
}

TEST(ServerPipelining, PartialRequestAcrossManyWrites) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  std::string wire = post("split-fed body");
  // Dribble the request a few bytes at a time; the reactor must keep the
  // parser state across reads and only dispatch once it completes.
  for (std::size_t i = 0; i < wire.size(); i += 5) {
    conn.write_all(std::string_view(wire).substr(i, 5));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<Response> responses = read_responses(conn, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "echo:split-fed body");
  server.stop();
}

TEST(ServerPipelining, ConnectionCloseHonored) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.write_all(std::string_view(
      "POST / HTTP/1.1\r\nConnection: close\r\nContent-Length: 3\r\n\r\nbye"));
  std::vector<Response> responses = read_responses(conn, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "echo:bye");
  EXPECT_EQ(responses[0].headers.get_or("Connection", ""), "close");
  // Server closes: the next read reaches EOF rather than blocking.
  std::array<std::uint8_t, 64> buf;
  EXPECT_EQ(conn.read(buf), 0u);
  server.stop();
}

TEST(ServerPipelining, Http10ImpliesClose) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.write_all(std::string_view("GET / HTTP/1.0\r\n\r\n"));
  std::vector<Response> responses = read_responses(conn, 1);
  ASSERT_EQ(responses.size(), 1u);
  std::array<std::uint8_t, 64> buf;
  EXPECT_EQ(conn.read(buf), 0u);
  server.stop();
}

TEST(ServerLoadShed, OverLimitConnectionGets503WithoutBlocking) {
  ServerOptions options;
  options.max_connections = 1;
  Server server = make_echo_server(std::move(options));
  server.start();

  // Complete a request on the first connection so it is fully admitted
  // before the second one arrives.
  net::TcpConnection first =
      net::TcpConnection::connect("127.0.0.1", server.port());
  first.write_all(post("hold"));
  ASSERT_EQ(read_responses(first, 1).size(), 1u);

  net::TcpConnection second =
      net::TcpConnection::connect("127.0.0.1", server.port());
  std::vector<Response> responses = read_responses(second, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 503);
  // Shed connections are closed right after the refusal.
  std::array<std::uint8_t, 64> buf;
  EXPECT_EQ(second.read(buf), 0u);

  // The admitted connection keeps working.
  first.write_all(post("still here"));
  std::vector<Response> again = read_responses(first, 1);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].body, "echo:still here");
  server.stop();
}

TEST(ServerConcurrency, ManyKeepAliveConnectionsInParallel) {
  Server server = make_echo_server();
  server.start();
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 10;
  std::atomic<int> failures{0};
  std::vector<util::Thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::TcpConnection conn =
            net::TcpConnection::connect("127.0.0.1", server.port());
        for (int i = 0; i < kRequestsEach; ++i) {
          std::string body = std::to_string(c) + ":" + std::to_string(i);
          conn.write_all(post(body));
          std::vector<Response> responses = read_responses(conn, 1);
          if (responses.size() != 1 || responses[0].body != "echo:" + body) {
            ++failures;
            return;
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kClients * kRequestsEach));
  server.stop();
}

// --- Adaptive inline dispatch -------------------------------------------
//
// With a cost key configured, measured-cheap requests run directly on the
// reactor thread; everything else (no key, measured-slow, over budget)
// takes the worker-pool handoff. The split must be invisible on the wire:
// per-connection ordering and response bytes are identical either way.

ServerOptions inline_options(
    std::function<std::string(const Request&)> cost_key) {
  ServerOptions options;
  options.dispatch.inline_dispatch = true;
  options.dispatch.cost_key = std::move(cost_key);
  return options;
}

TEST(ServerInlineDispatch, CheapRequestsRunOnTheReactor) {
  Server server = make_echo_server(
      inline_options([](const Request& request) { return request.target; }));
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    conn.write_all(post("ping" + std::to_string(i)));
    std::vector<Response> responses = read_responses(conn, 1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].body, "echo:ping" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), 10u);
  // An unknown method is optimistically inlined and the echo handler is
  // far cheaper than the cost ceiling, so every request stays inline.
  EXPECT_EQ(server.requests_inlined(), 10u);
  server.stop();
}

TEST(ServerInlineDispatch, PipelinedMixOfInlineAndSpilledStaysOrdered) {
  // Odd-length bodies get no cost key, forcing the worker-pool path;
  // even ones are inline-eligible. All 20 ride one TCP segment, starting
  // with an eligible request so the reactor takes the queue first; the
  // first odd body then hands the busy token (and the rest of the queue)
  // to a worker. Responses must come back in request order regardless of
  // which side produced them.
  Server server = make_echo_server(inline_options([](const Request& request) {
    return request.body.size() % 2 == 0 ? "cheap" : std::string();
  }));
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    wire += post(std::string(static_cast<std::size_t>(i) + 2, 'a'));
  }
  conn.write_all(wire);
  std::vector<Response> responses = read_responses(conn, 20);
  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses[i].body,
              "echo:" + std::string(static_cast<std::size_t>(i) + 2, 'a'));
  }
  EXPECT_EQ(server.requests_served(), 20u);
  std::uint64_t inlined = server.requests_inlined();
  EXPECT_GT(inlined, 0u);
  EXPECT_LT(inlined, 20u);
  server.stop();
}

TEST(ServerInlineDispatch, MeasuredSlowMethodsStopBeingInlined) {
  ServerOptions options;
  options.dispatch.inline_dispatch = true;
  options.dispatch.inline_cost_limit_us = 500.0;
  options.dispatch.cost_key = [](const Request&) { return "slow.method"; };
  Server server(std::move(options), [](const Request& request, const Peer&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    return Response::make(200, "echo:" + request.body);
  });
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  for (int i = 0; i < 8; ++i) {
    conn.write_all(post("r" + std::to_string(i)));
    ASSERT_EQ(read_responses(conn, 1).size(), 1u);
  }
  EXPECT_EQ(server.requests_served(), 8u);
  // The first call is optimistically inlined (unknown cost); its 3 ms
  // measurement lands far above the 500 µs ceiling, so the EWMA keeps
  // every later call on the worker pool.
  EXPECT_LE(server.requests_inlined(), 2u);
  server.stop();
}

TEST(ServerInlineDispatch, DisabledMeansEveryRequestTakesAWorker) {
  ServerOptions options =
      inline_options([](const Request&) { return "cheap"; });
  options.dispatch.inline_dispatch = false;
  Server server = make_echo_server(std::move(options));
  server.start();
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    conn.write_all(post("x"));
    ASSERT_EQ(read_responses(conn, 1).size(), 1u);
  }
  EXPECT_EQ(server.requests_served(), 5u);
  EXPECT_EQ(server.requests_inlined(), 0u);
  server.stop();
}

TEST(ServerStop, ReturnsPromptlyWithIdleConnectionOpen) {
  Server server = make_echo_server();
  server.start();
  net::TcpConnection idle =
      net::TcpConnection::connect("127.0.0.1", server.port());
  // Serve one request so the connection is definitely registered.
  idle.write_all(post("x"));
  ASSERT_EQ(read_responses(idle, 1).size(), 1u);

  auto begin = std::chrono::steady_clock::now();
  server.stop();
  auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  // The idle connection was torn down, not leaked to a detached thread.
  std::array<std::uint8_t, 64> buf;
  EXPECT_EQ(idle.read(buf), 0u);
}

}  // namespace
}  // namespace clarens::http
