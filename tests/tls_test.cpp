// Unit tests for the TLS-like secure channel: handshake success and
// failure modes, mutual authentication, proxy chains, data transfer, and
// record tampering.
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "net/socket.hpp"
#include "pki/authority.hpp"
#include "test_fixtures.hpp"
#include "tls/channel.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::tls {
namespace {

using clarens::testing::TestPki;

struct ChannelPair {
  std::unique_ptr<SecureChannel> client;
  std::unique_ptr<SecureChannel> server;
};

/// Run both halves of the handshake over a loopback socket pair.
ChannelPair handshake(const TlsConfig& client_config,
                      const TlsConfig& server_config) {
  net::TcpListener listener = net::TcpListener::listen(0);
  std::unique_ptr<SecureChannel> server_channel;
  std::exception_ptr server_error;
  util::Thread server_thread([&] {
    try {
      auto conn = std::make_unique<net::TcpConnection>(listener.accept());
      server_channel = SecureChannel::accept(std::move(conn), server_config);
    } catch (...) {
      server_error = std::current_exception();
    }
  });

  std::unique_ptr<SecureChannel> client_channel;
  std::exception_ptr client_error;
  try {
    auto conn = std::make_unique<net::TcpConnection>(
        net::TcpConnection::connect("127.0.0.1", listener.local_port()));
    client_channel = SecureChannel::connect(std::move(conn), client_config);
  } catch (...) {
    client_error = std::current_exception();
  }
  server_thread.join();
  if (client_error) std::rethrow_exception(client_error);
  if (server_error) std::rethrow_exception(server_error);
  return {std::move(client_channel), std::move(server_channel)};
}

TlsConfig server_config(const TestPki& pki) {
  TlsConfig config;
  config.credential = pki.server;
  config.trust = &pki.trust;
  return config;
}

TlsConfig client_config(const TestPki& pki,
                        std::optional<pki::Credential> credential) {
  TlsConfig config;
  config.credential = std::move(credential);
  config.trust = &pki.trust;
  return config;
}

TEST(Tls, MutualHandshakeExchangesIdentities) {
  const TestPki& pki = TestPki::instance();
  ChannelPair pair = handshake(client_config(pki, pki.alice), server_config(pki));

  ASSERT_TRUE(pair.client->peer().has_value());
  EXPECT_EQ(pair.client->peer()->identity, pki.server.certificate.subject());
  ASSERT_TRUE(pair.server->peer().has_value());
  EXPECT_EQ(pair.server->peer()->identity, pki.alice.certificate.subject());
}

TEST(Tls, AnonymousClientAllowedUnlessRequired) {
  const TestPki& pki = TestPki::instance();
  ChannelPair pair =
      handshake(client_config(pki, std::nullopt), server_config(pki));
  EXPECT_FALSE(pair.server->peer().has_value());

  TlsConfig strict = server_config(pki);
  strict.require_peer_certificate = true;
  EXPECT_THROW(handshake(client_config(pki, std::nullopt), strict), AuthError);
}

TEST(Tls, DataRoundTripBothDirections) {
  const TestPki& pki = TestPki::instance();
  ChannelPair pair = handshake(client_config(pki, pki.alice), server_config(pki));

  pair.client->write_all(std::string_view("from client"));
  std::array<std::uint8_t, 64> buf;
  std::size_t n = pair.server->read(buf);
  EXPECT_EQ(std::string(buf.begin(), buf.begin() + n), "from client");

  pair.server->write_all(std::string_view("from server"));
  n = pair.client->read(buf);
  EXPECT_EQ(std::string(buf.begin(), buf.begin() + n), "from server");
}

TEST(Tls, LargeTransferSpansManyRecords) {
  const TestPki& pki = TestPki::instance();
  ChannelPair pair = handshake(client_config(pki, pki.alice), server_config(pki));

  // > 16 KiB forces multiple records.
  std::string big(100 * 1024, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  util::Thread writer([&] { pair.client->write_all(big); });
  std::string got;
  std::array<std::uint8_t, 8192> buf;
  while (got.size() < big.size()) {
    std::size_t n = pair.server->read(buf);
    ASSERT_GT(n, 0u);
    got.append(buf.begin(), buf.begin() + n);
  }
  writer.join();
  EXPECT_EQ(got, big);
}

TEST(Tls, ClientRejectsUntrustedServer) {
  const TestPki& pki = TestPki::instance();
  // Server with a credential from a CA the client does not trust.
  auto rogue_ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=rogue/CN=Rogue CA"), 512);
  auto rogue_server = rogue_ca.issue_server(
      pki::DistinguishedName::parse("/O=rogue/CN=host/evil.example"));
  pki::TrustStore rogue_trust;
  rogue_trust.add_authority(rogue_ca.certificate());

  TlsConfig server;
  server.credential = rogue_server;
  server.trust = &rogue_trust;  // server trusts its own CA
  EXPECT_THROW(handshake(client_config(pki, pki.alice), server), AuthError);
}

TEST(Tls, ServerRejectsUntrustedClient) {
  const TestPki& pki = TestPki::instance();
  auto rogue_ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=rogue/CN=Rogue CA"), 512);
  auto mallory =
      rogue_ca.issue_user(pki::DistinguishedName::parse("/O=rogue/CN=M"));

  // Client trusts the real CA (to accept the server) but presents a
  // certificate from the rogue CA.
  TlsConfig client;
  client.credential = mallory;
  client.trust = &pki.trust;
  EXPECT_THROW(handshake(client, server_config(pki)), AuthError);
}

TEST(Tls, ProxyChainAuthenticatesAsUser) {
  const TestPki& pki = TestPki::instance();
  pki::Credential proxy = pki::issue_proxy(pki.alice);
  TlsConfig client;
  client.credential = proxy;
  client.chain = {pki.alice.certificate};
  client.trust = &pki.trust;
  ChannelPair pair = handshake(client, server_config(pki));
  ASSERT_TRUE(pair.server->peer().has_value());
  EXPECT_EQ(pair.server->peer()->identity, pki.alice.certificate.subject());
  EXPECT_TRUE(pair.server->peer()->via_proxy);
}

TEST(Tls, TamperedRecordDetected) {
  const TestPki& pki = TestPki::instance();
  // Manual wiring so we can corrupt bytes in flight.
  net::TcpListener listener = net::TcpListener::listen(0);
  std::unique_ptr<SecureChannel> server_channel;
  util::Thread server_thread([&] {
    auto conn = std::make_unique<net::TcpConnection>(listener.accept());
    server_channel = SecureChannel::accept(std::move(conn), server_config(pki));
  });
  auto raw = std::make_unique<net::TcpConnection>(
      net::TcpConnection::connect("127.0.0.1", listener.local_port()));
  net::TcpConnection* raw_ptr = raw.get();
  auto client = SecureChannel::connect(std::move(raw), client_config(pki, pki.alice));
  server_thread.join();

  // Build a syntactically valid data record with garbage ciphertext:
  // type=2, length=40, payload=junk (8 data bytes + 32 "MAC").
  std::array<std::uint8_t, 45> forged{};
  forged[0] = 2;
  forged[4] = 40;
  raw_ptr->write_all(std::span<const std::uint8_t>(forged.data(), forged.size()));

  std::array<std::uint8_t, 16> buf;
  EXPECT_THROW(server_channel->read(buf), AuthError);
  client->close();
}

TEST(Tls, ReadReturnsZeroAfterPeerClose) {
  const TestPki& pki = TestPki::instance();
  ChannelPair pair = handshake(client_config(pki, pki.alice), server_config(pki));
  pair.client->close();
  std::array<std::uint8_t, 8> buf;
  EXPECT_EQ(pair.server->read(buf), 0u);
}

}  // namespace
}  // namespace clarens::tls
