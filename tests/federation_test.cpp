// Unit tests for the federation layer (ISSUE 8): consistent-hash
// placement, node tickets, the discovery-fed router, the redirect
// envelope, and the per-node client pool.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "client/peer_pool.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/publisher.hpp"
#include "discovery/station.hpp"
#include "federation/node_ticket.hpp"
#include "federation/placement.hpp"
#include "federation/router.hpp"
#include "rpc/binding.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::federation {
namespace {

NodeInfo make_node(const std::string& id, double capacity = 1.0) {
  NodeInfo node;
  node.id = id;
  node.url = "http://" + id + ":8080/clarens";
  node.capacity = capacity;
  return node;
}

TEST(Placement, PrefixOfNormalizesDepth) {
  EXPECT_EQ(Placement::prefix_of("/data/run1/evt.bin", 2), "/data/run1");
  EXPECT_EQ(Placement::prefix_of("/data/run1", 2), "/data/run1");
  EXPECT_EQ(Placement::prefix_of("/data", 2), "/data");
  EXPECT_EQ(Placement::prefix_of("//data///run1//x", 2), "/data/run1");
  EXPECT_EQ(Placement::prefix_of("/data/run1/evt.bin", 1), "/data");
  EXPECT_EQ(Placement::prefix_of("/", 2), "/");
  EXPECT_EQ(Placement::prefix_of("", 2), "/");
}

TEST(Placement, EmptyRingOwnsNothing) {
  Placement placement;
  EXPECT_TRUE(placement.empty());
  EXPECT_FALSE(placement.owner("/data/run1").has_value());
  EXPECT_TRUE(placement.owners("/data/run1", 3).empty());
}

TEST(Placement, DeterministicAndStableAcrossRebuilds) {
  Placement a, b;
  std::vector<NodeInfo> nodes = {make_node("farm/n1"), make_node("farm/n2"),
                                 make_node("farm/n3")};
  a.set_nodes(nodes);
  b.set_nodes(nodes);  // independent instance, same membership
  for (const char* prefix : {"/data/run1", "/data/run2", "/sandbox/u1"}) {
    ASSERT_TRUE(a.owner(prefix).has_value());
    EXPECT_EQ(a.owner(prefix)->id, b.owner(prefix)->id) << prefix;
  }
}

TEST(Placement, SpreadsPrefixesAcrossNodes) {
  Placement placement;
  placement.set_nodes({make_node("farm/n1"), make_node("farm/n2")});
  std::map<std::string, int> per_node;
  for (int i = 0; i < 200; ++i) {
    auto owner = placement.owner("/data/run" + std::to_string(i));
    ASSERT_TRUE(owner.has_value());
    ++per_node[owner->id];
  }
  // Both nodes get a meaningful share (64 vnodes each; a 90/10 split
  // would indicate a broken ring walk).
  EXPECT_GE(per_node["farm/n1"], 40);
  EXPECT_GE(per_node["farm/n2"], 40);
}

TEST(Placement, CapacityWeightsTheRing) {
  Placement placement;
  placement.set_nodes({make_node("farm/big", 4.0), make_node("farm/small", 1.0)});
  std::map<std::string, int> per_node;
  for (int i = 0; i < 400; ++i) {
    ++per_node[placement.owner("/data/run" + std::to_string(i))->id];
  }
  EXPECT_GT(per_node["farm/big"], per_node["farm/small"] * 2);
}

TEST(Placement, RemovingANodeOnlyMovesItsPrefixes) {
  Placement before, after;
  before.set_nodes(
      {make_node("farm/n1"), make_node("farm/n2"), make_node("farm/n3")});
  after.set_nodes({make_node("farm/n1"), make_node("farm/n2")});
  int moved = 0, total = 300;
  for (int i = 0; i < total; ++i) {
    std::string prefix = "/data/run" + std::to_string(i);
    std::string owner_before = before.owner(prefix)->id;
    std::string owner_after = after.owner(prefix)->id;
    if (owner_before == "farm/n3") {
      // Orphaned prefixes must land on a surviving node.
      EXPECT_NE(owner_after, "farm/n3");
    } else if (owner_before != owner_after) {
      ++moved;  // consistent hashing: this should be rare
    }
  }
  EXPECT_LT(moved, total / 10);
}

TEST(Placement, ReplicasAreDistinctAndOrdered) {
  Placement placement;
  placement.set_nodes(
      {make_node("farm/n1"), make_node("farm/n2"), make_node("farm/n3")});
  std::vector<NodeInfo> owners = placement.owners("/data/run1", 3);
  ASSERT_EQ(owners.size(), 3u);
  std::set<std::string> distinct;
  for (const auto& node : owners) distinct.insert(node.id);
  EXPECT_EQ(distinct.size(), 3u);
  // The primary is the single-owner answer.
  EXPECT_EQ(owners[0].id, placement.owner("/data/run1")->id);
  // Asking for more replicas than nodes caps at the node count.
  EXPECT_EQ(placement.owners("/data/run1", 9).size(), 3u);
}

TEST(Placement, AdvertisedPrefixesRestrictOwnership) {
  NodeInfo data_only = make_node("farm/data");
  data_only.prefixes = {"/data"};
  NodeInfo sandbox_only = make_node("farm/sandbox");
  sandbox_only.prefixes = {"/sandbox"};
  Placement placement;
  placement.set_nodes({data_only, sandbox_only});
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(placement.owner("/data/run" + std::to_string(i))->id,
              "farm/data");
    EXPECT_EQ(placement.owner("/sandbox/u" + std::to_string(i))->id,
              "farm/sandbox");
  }
  // "/database" must not match the "/data" root (component boundary).
  EXPECT_FALSE(placement.owner("/database").has_value());
}

TEST(Placement, OwnerChurnMovesFewReplicaSets) {
  // The replicator places each file by its full owners() chain; a node
  // joining must disturb few existing replica sets, or every membership
  // change would trigger a cluster-wide re-replication storm.
  Placement before, after;
  std::vector<NodeInfo> nodes = {make_node("farm/n1"), make_node("farm/n2"),
                                 make_node("farm/n3"), make_node("farm/n4")};
  before.set_nodes(nodes);
  nodes.push_back(make_node("farm/n5"));
  after.set_nodes(nodes);
  int disturbed = 0, total = 300;
  for (int i = 0; i < total; ++i) {
    std::string prefix = "/data/run" + std::to_string(i);
    std::vector<NodeInfo> a = before.owners(prefix, 2);
    std::vector<NodeInfo> b = after.owners(prefix, 2);
    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), 2u);
    std::set<std::string> set_a, set_b;
    for (const auto& n : a) set_a.insert(n.id);
    for (const auto& n : b) set_b.insert(n.id);
    // Any change to a set means a copy-in and (eventually) a purge; a
    // set only changes when the new node inserted into its ring walk.
    if (set_a != set_b) {
      ++disturbed;
      EXPECT_TRUE(set_b.count("farm/n5"))
          << prefix << ": set changed without involving the joiner";
    }
  }
  // The joiner holds ~1/5 of the ring; with 2 ranks per set, expect
  // roughly 2/5 of sets touched — well under a full reshuffle.
  EXPECT_LT(disturbed, total * 6 / 10);
  EXPECT_GT(disturbed, 0);  // it must take SOME load
}

TEST(Placement, AdvertisedPrefixesGateEveryReplicaRank) {
  // Prefix gating is not a primary-only rule: a node that does not
  // export /data must never appear at ANY rank of a /data replica set,
  // or the repair engine would copy bytes to a node that refuses them.
  NodeInfo sandbox_only = make_node("farm/sandbox");
  sandbox_only.prefixes = {"/sandbox"};
  Placement placement;
  placement.set_nodes({make_node("farm/n1"), make_node("farm/n2"),
                       sandbox_only});
  for (int i = 0; i < 100; ++i) {
    std::string prefix = "/data/run" + std::to_string(i);
    std::vector<NodeInfo> owners = placement.owners(prefix, 3);
    // Only the two exporters qualify, even though 3 ranks were asked.
    ASSERT_EQ(owners.size(), 2u) << prefix;
    for (const auto& node : owners) {
      EXPECT_NE(node.id, "farm/sandbox") << prefix;
    }
  }
  // The restricted node still serves its own namespace at depth > 0.
  bool sandbox_seen = false;
  for (int i = 0; i < 100; ++i) {
    for (const auto& node :
         placement.owners("/sandbox/u" + std::to_string(i), 3)) {
      if (node.id == "farm/sandbox") sandbox_seen = true;
    }
  }
  EXPECT_TRUE(sandbox_seen);
}

TEST(NodeTicket, MintVerifyRoundTrip) {
  NodeTicket ticket;
  ticket.dn = "/O=testgrid.org/OU=People/CN=Alice Able";
  ticket.via_proxy = true;
  ticket.proxy_serial = "serial-42";
  ticket.scope = "/data/run1";
  ticket.write = true;
  ticket.expires = util::unix_now() + 60;
  std::string token = ticket.mint("super-secret-cluster-key");
  auto back = NodeTicket::verify("super-secret-cluster-key", token,
                                 util::unix_now());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dn, ticket.dn);
  EXPECT_TRUE(back->via_proxy);
  EXPECT_EQ(back->proxy_serial, "serial-42");
  EXPECT_EQ(back->scope, "/data/run1");
  EXPECT_TRUE(back->write);
  EXPECT_EQ(back->expires, ticket.expires);

  // The write bit is covered by the MAC and defaults to read-only.
  ticket.write = false;
  auto readonly = NodeTicket::verify("super-secret-cluster-key",
                                     ticket.mint("super-secret-cluster-key"),
                                     util::unix_now());
  ASSERT_TRUE(readonly.has_value());
  EXPECT_FALSE(readonly->write);
  // Tokens must be header/URL-safe: version dot hex dot hex.
  EXPECT_EQ(token.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz0123456789."),
            std::string::npos);
}

TEST(NodeTicket, RejectsTamperWrongSecretAndExpiry) {
  NodeTicket ticket;
  ticket.dn = "/O=testgrid.org/CN=Alice";
  ticket.scope = "/data";
  ticket.expires = util::unix_now() + 60;
  std::string token = ticket.mint("super-secret-cluster-key");

  EXPECT_FALSE(NodeTicket::verify("wrong-secret", token, util::unix_now()));
  // Flip one payload nibble: MAC mismatch.
  std::string tampered = token;
  std::size_t payload_pos = tampered.find('.') + 1;
  tampered[payload_pos] = tampered[payload_pos] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(NodeTicket::verify("super-secret-cluster-key", tampered,
                                  util::unix_now()));
  // Expired.
  EXPECT_FALSE(NodeTicket::verify("super-secret-cluster-key", token,
                                  ticket.expires + 1));
  // Garbage shapes never throw.
  EXPECT_FALSE(NodeTicket::verify("s", "", 0));
  EXPECT_FALSE(NodeTicket::verify("s", "cnt1", 0));
  EXPECT_FALSE(NodeTicket::verify("s", "cnt1.zz.zz", 0));
  EXPECT_FALSE(NodeTicket::verify("s", "cnt2.00.00", 0));
}

TEST(NodeTicket, ScopeCoversSubtreeOnly) {
  NodeTicket ticket;
  ticket.scope = "/data/run1";
  EXPECT_TRUE(ticket.covers("/data/run1"));
  EXPECT_TRUE(ticket.covers("/data/run1/evt.bin"));
  EXPECT_FALSE(ticket.covers("/data/run2"));
  EXPECT_FALSE(ticket.covers("/data/run10"));  // component boundary
  ticket.scope = "/";
  EXPECT_TRUE(ticket.covers("/anything"));
}

TEST(RedirectResult, EnvelopeRoundTripsAndDiscriminates) {
  rpc::RedirectResult redirect;
  redirect.url = "http://node1:8080/clarens";
  redirect.ticket = "cnt1.aa.bb";
  redirect.scope = "/data/run1";
  rpc::Value v = redirect.to_value();
  ASSERT_TRUE(rpc::RedirectResult::is_redirect(v));
  rpc::RedirectResult back = rpc::RedirectResult::from_value(v);
  EXPECT_EQ(back.url, redirect.url);
  EXPECT_EQ(back.ticket, redirect.ticket);
  EXPECT_EQ(back.scope, redirect.scope);

  // Ordinary structs — even ones with the key at a non-307 value — are
  // not redirects.
  rpc::Value plain = rpc::Value::struct_();
  plain.set("url", std::string("x"));
  EXPECT_FALSE(rpc::RedirectResult::is_redirect(plain));
  plain.set(rpc::RedirectResult::kMarker, std::int64_t{200});
  EXPECT_FALSE(rpc::RedirectResult::is_redirect(plain));
  EXPECT_FALSE(rpc::RedirectResult::is_redirect(rpc::Value(std::int64_t{307})));
  EXPECT_THROW(rpc::RedirectResult::from_value(plain), rpc::Fault);
}

TEST(PeerEndpoint, ParsesAndRejects) {
  client::PeerEndpoint http = client::PeerEndpoint::parse(
      "http://127.0.0.1:8080/clarens");
  EXPECT_EQ(http.host, "127.0.0.1");
  EXPECT_EQ(http.port, 8080);
  EXPECT_FALSE(http.tls);
  client::PeerEndpoint https = client::PeerEndpoint::parse(
      "https://node.example.org:443");
  EXPECT_TRUE(https.tls);
  EXPECT_EQ(https.host, "node.example.org");
  EXPECT_THROW(client::PeerEndpoint::parse("ftp://x:1"), ParseError);
  EXPECT_THROW(client::PeerEndpoint::parse("http://nohost"), ParseError);
}

TEST(PeerPool, LeaseReturnsAndDiscards) {
  client::PeerPool pool{client::ClientOptions{}};
  const std::string url = "http://127.0.0.1:19999/clarens";
  {
    auto lease = pool.lease(url);
    EXPECT_EQ(pool.idle_count(url), 0u);
  }
  EXPECT_EQ(pool.idle_count(url), 1u);  // returned on destruction
  {
    auto lease = pool.lease(url);  // reuses the pooled client
    EXPECT_EQ(pool.idle_count(url), 0u);
    lease.discard();
  }
  EXPECT_EQ(pool.idle_count(url), 0u);  // discarded, not re-pooled
}

// Router refresh against a live discovery fabric: publisher -> station ->
// discovery server -> placement ring.
TEST(Router, BuildsRingFromStorageRecordsOnly) {
  discovery::StationServer station;
  db::Store store;
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/60);
  discovery.subscribe("127.0.0.1", station.port());

  discovery::Publisher publisher("127.0.0.1", station.port());
  auto record = [](const std::string& node, const std::string& role) {
    discovery::ServiceRecord r;
    r.farm = "farm";
    r.node = node;
    r.service = "file";
    r.url = "http://" + node + ":8080/clarens";
    r.protocol = "xmlrpc";
    r.version = "1.0";
    r.heartbeat = util::unix_now();
    r.role = role;
    r.metrics["capacity"] = 1.0;
    return r;
  };
  publisher.set_records({record("head1", "head"), record("node1", "storage"),
                         record("node2", "storage")});
  publisher.publish_once();

  RouterOptions options;
  options.secret = "super-secret-cluster-key";
  options.refresh_ms = 0;  // rebuild on every query
  Router router(discovery, options);
  for (int i = 0; i < 100 && router.storage_nodes().size() != 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::vector<NodeInfo> nodes = router.storage_nodes();
  ASSERT_EQ(nodes.size(), 2u);  // the head record never joins the ring
  for (const auto& node : nodes) {
    EXPECT_NE(node.id, "farm/head1");
  }
  auto owner = router.route("/data/run1/evt.bin");
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(router.prefix_of("/data/run1/evt.bin"), "/data/run1");
  std::string ticket = router.mint_ticket("/O=t/CN=A", false, "",
                                          "/data/run1", /*write=*/true);
  auto verified = NodeTicket::verify("super-secret-cluster-key", ticket,
                                     util::unix_now());
  ASSERT_TRUE(verified.has_value());
  EXPECT_TRUE(verified->write);
}

}  // namespace
}  // namespace clarens::federation
