// Unit tests for the discovery substrate: GLUE records and datagrams,
// station servers (publish/expire/subscribe/query), publishers, and the
// aggregating discovery server of Fig. 3.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/glue.hpp"
#include "discovery/publisher.hpp"
#include "discovery/station.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace clarens::discovery {
namespace {

ServiceRecord make_record(const std::string& node, const std::string& service) {
  ServiceRecord record;
  record.farm = "caltech-tier2";
  record.node = node;
  record.service = service;
  record.url = "http://" + node + ":8080/clarens";
  record.protocol = "xmlrpc";
  record.version = "1.0";
  record.heartbeat = util::unix_now();
  record.metrics["load"] = 0.25;
  record.metrics["capacity"] = 100;
  return record;
}

/// Poll until `predicate` holds or ~2 s elapse.
template <typename F>
bool eventually(F predicate) {
  for (int i = 0; i < 100; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

TEST(Glue, RecordRoundTripsThroughValue) {
  ServiceRecord record = make_record("clarens01", "file");
  ServiceRecord back = ServiceRecord::from_value(record.to_value());
  EXPECT_EQ(back, record);
  EXPECT_EQ(record.key(), "caltech-tier2/clarens01/file");
}

TEST(Glue, DatagramRoundTrips) {
  Datagram datagram;
  datagram.type = Datagram::Type::Publish;
  datagram.records = {make_record("a", "file"), make_record("b", "shell")};
  datagram.reply_host = "127.0.0.1";
  datagram.reply_port = 4242;
  datagram.query = "fil";
  Datagram back = Datagram::decode(datagram.encode());
  EXPECT_EQ(back.type, Datagram::Type::Publish);
  EXPECT_EQ(back.records, datagram.records);
  EXPECT_EQ(back.reply_port, 4242);
  EXPECT_EQ(back.query, "fil");
  EXPECT_THROW(Datagram::decode("{\"type\":\"nonsense\",\"records\":[],"
                                "\"reply_host\":\"\",\"reply_port\":0,"
                                "\"query\":\"\"}"),
               ParseError);
}

TEST(Station, AcceptsPublishesAndServesRecords) {
  StationServer station;
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file"), make_record("n1", "shell")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return station.records().size() == 2; }));
  EXPECT_EQ(station.publish_count(), 1u);
}

TEST(Station, RepublishUpdatesNotDuplicates) {
  StationServer station;
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file")});
  publisher.publish_once();
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return station.publish_count() == 2; }));
  EXPECT_EQ(station.records().size(), 1u);  // same key upserted
}

TEST(Station, ExpiresStaleRecords) {
  StationServer station(0, /*record_ttl=*/1);
  Publisher publisher("127.0.0.1", station.port());
  ServiceRecord stale = make_record("old", "file");
  publisher.set_records({stale});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return station.records().size() == 1; }));
  // After the TTL passes the record is no longer reported.
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  EXPECT_TRUE(station.records().empty());
}

TEST(Station, MalformedDatagramIgnored) {
  StationServer station;
  net::UdpSocket sender = net::UdpSocket::bind(0);
  sender.send_to("127.0.0.1", station.port(), std::string_view("not json"));
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n", "s")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return station.records().size() == 1; }));
}

TEST(Discovery, SubscribeBootstrapsAndStreams) {
  StationServer station;
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return station.records().size() == 1; }));

  db::Store store;
  DiscoveryServer discovery(store);
  discovery.subscribe("127.0.0.1", station.port());
  // Bootstrap delivers the existing record.
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 1; }));

  // Later publishes stream through the station to the discovery server.
  publisher.set_records({make_record("n1", "file"), make_record("n2", "vo")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 2; }));

  auto all = discovery.find_services("");
  EXPECT_EQ(all.size(), 2u);
  auto files = discovery.find_services("file");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0].node, "n1");
}

TEST(Discovery, LocateBindsServiceToUrl) {
  StationServer station;
  db::Store store;
  DiscoveryServer discovery(store);
  discovery.subscribe("127.0.0.1", station.port());
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("clarens01", "file")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 1; }));
  EXPECT_EQ(discovery.locate("file"), "http://clarens01:8080/clarens");
  EXPECT_FALSE(discovery.locate("nothing").has_value());
  auto servers = discovery.find_servers();
  ASSERT_EQ(servers.size(), 1u);
}

TEST(Discovery, StaleRecordsFilteredFromQueries) {
  StationServer station;
  db::Store store;
  DiscoveryServer discovery(store, /*record_ttl=*/1);
  discovery.subscribe("127.0.0.1", station.port());
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  EXPECT_TRUE(discovery.find_services("").empty());  // live filter
}

TEST(Glue, RoleAndPrefixesRoundTripAndDefault) {
  ServiceRecord record = make_record("clarens01", "file");
  record.role = "storage";
  record.prefixes = {"/data", "/sandbox"};
  ServiceRecord back = ServiceRecord::from_value(record.to_value());
  EXPECT_EQ(back, record);
  EXPECT_EQ(back.role, "storage");
  ASSERT_EQ(back.prefixes.size(), 2u);

  // Records published by pre-federation servers carry neither field;
  // from_value must tolerate their absence rather than throw.
  rpc::Value legacy = make_record("old", "file").to_value();
  ServiceRecord tolerated = ServiceRecord::from_value(legacy);
  EXPECT_TRUE(tolerated.prefixes.empty());
}

// Regression (ISSUE 8 satellite): records used to be filtered out of
// query answers once stale, but the cache + persisted table kept them
// forever — record_count() counted dead servers and the table grew
// without bound. The receive loop now lazily reaps expired entries.
TEST(Discovery, ExpiredRecordsAreReapedNotJustFiltered) {
  StationServer station;
  db::Store store;
  DiscoveryServer discovery(store, /*record_ttl=*/1);
  discovery.subscribe("127.0.0.1", station.port());
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 1; }));
  // No further heartbeats: the record expires and the background reap
  // removes it from the cache entirely, not only from query answers.
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  EXPECT_TRUE(eventually([&] { return discovery.record_count() == 0; }));
}

TEST(Discovery, ReapStaleReportsCountAndErasesPersistedRows) {
  StationServer station;
  db::Store store;
  DiscoveryServer discovery(store, /*record_ttl=*/1);
  discovery.subscribe("127.0.0.1", station.port());
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n1", "file"), make_record("n2", "vo")});
  publisher.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 2; }));
  EXPECT_EQ(store.keys("discovery_records").size(), 2u);
  discovery.stop();  // park the background reaper for a deterministic count
  std::this_thread::sleep_for(std::chrono::milliseconds(2300));
  EXPECT_EQ(discovery.reap_stale(), 2u);
  EXPECT_EQ(discovery.record_count(), 0u);
  EXPECT_TRUE(store.keys("discovery_records").empty());
  EXPECT_EQ(discovery.reap_stale(), 0u);  // idempotent once drained
}

TEST(Discovery, StalePersistedRowsDroppedAtStartup) {
  db::Store store;
  ServiceRecord stale = make_record("dead", "file");
  stale.heartbeat = util::unix_now() - 100;
  ServiceRecord fresh = make_record("live", "file");
  store.put("discovery_records", stale.key(),
            rpc::jsonrpc::serialize_value(stale.to_value()));
  store.put("discovery_records", fresh.key(),
            rpc::jsonrpc::serialize_value(fresh.to_value()));

  DiscoveryServer discovery(store, /*record_ttl=*/5);
  // The restart warm-up resurrects only the live row; the stale one is
  // reaped from the table instead of haunting record_count().
  EXPECT_EQ(discovery.record_count(), 1u);
  ASSERT_EQ(store.keys("discovery_records").size(), 1u);
  EXPECT_EQ(discovery.find_services("file").at(0).node, "live");
}

TEST(Discovery, QueryStationsSlowPathMatchesFastPath) {
  StationServer station_a, station_b;
  db::Store store;
  DiscoveryServer discovery(store);
  discovery.subscribe("127.0.0.1", station_a.port());
  discovery.subscribe("127.0.0.1", station_b.port());

  Publisher pub_a("127.0.0.1", station_a.port());
  pub_a.set_records({make_record("nodeA", "file")});
  pub_a.publish_once();
  Publisher pub_b("127.0.0.1", station_b.port());
  pub_b.set_records({make_record("nodeB", "file")});
  pub_b.publish_once();
  ASSERT_TRUE(eventually([&] { return discovery.record_count() == 2; }));

  auto fast = discovery.find_services("file");
  auto slow = discovery.query_stations("file");
  EXPECT_EQ(fast.size(), 2u);
  EXPECT_EQ(slow.size(), 2u);
}

TEST(Discovery, PeriodicPublisherRefreshesHeartbeat) {
  StationServer station;
  Publisher publisher("127.0.0.1", station.port());
  publisher.set_records({make_record("n", "file")});
  publisher.start_periodic(50);
  ASSERT_TRUE(eventually([&] { return station.publish_count() >= 3; }));
  publisher.stop();
  auto count = station.publish_count();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_LE(station.publish_count(), count + 1);  // stopped publishing
}

}  // namespace
}  // namespace clarens::discovery
