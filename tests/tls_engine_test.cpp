// Unit tests for the sans-IO TLS engine: the handshake and record layer
// as a pure state machine, driven under arbitrary wire fragmentation —
// one byte at a time and whole flights coalesced — plus record
// coalescing for vectored writes and tamper detection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "test_fixtures.hpp"
#include "tls/channel.hpp"
#include "tls/engine.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"

namespace clarens::tls {
namespace {

using clarens::testing::TestPki;

/// The engine keeps a reference to its TlsConfig, so the pair fixture
/// owns both configs for the lifetime of both engines.
struct EnginePair {
  EnginePair() {
    const TestPki& pki = TestPki::instance();
    client_config.credential = pki.alice;
    client_config.trust = &pki.trust;
    server_config.credential = pki.server;
    server_config.trust = &pki.trust;
    client = std::make_unique<Engine>(Engine::Role::Client, client_config);
    server = std::make_unique<Engine>(Engine::Role::Server, server_config);
  }

  TlsConfig client_config;
  TlsConfig server_config;
  std::unique_ptr<Engine> client;
  std::unique_ptr<Engine> server;
};

/// Move every byte queued in `wire` into `to`, `step` bytes per feed()
/// call; responses accumulate into `reply`.
void deliver(util::Buffer& wire, Engine& to, util::Buffer& reply,
             std::size_t step) {
  while (!wire.empty()) {
    auto view = wire.peek();
    std::size_t n = std::min(step, view.size());
    to.feed(view.subspan(0, n), reply);
    wire.consume(n);
  }
}

/// Run the full handshake, delivering client->server bytes in chunks of
/// `client_step` and server->client bytes in chunks of `server_step`.
void run_handshake(Engine& client, Engine& server, std::size_t client_step,
                   std::size_t server_step) {
  util::Buffer to_server;
  util::Buffer to_client;
  client.start(to_server);
  int rounds = 0;
  while (!(client.handshake_done() && server.handshake_done())) {
    ASSERT_LT(++rounds, 16) << "handshake did not converge";
    deliver(to_server, server, to_client, client_step);
    deliver(to_client, client, to_server, server_step);
  }
}

/// Number of complete records (u8 type | u32 len | payload) in `wire`.
int count_records(const util::Buffer& wire) {
  auto bytes = wire.peek();
  int records = 0;
  std::size_t pos = 0;
  while (pos + 5 <= bytes.size()) {
    std::uint32_t len = (std::uint32_t{bytes[pos + 1]} << 24) |
                        (std::uint32_t{bytes[pos + 2]} << 16) |
                        (std::uint32_t{bytes[pos + 3]} << 8) |
                        std::uint32_t{bytes[pos + 4]};
    pos += 5 + len;
    ++records;
  }
  EXPECT_EQ(pos, bytes.size()) << "trailing partial record";
  return records;
}

std::string drain_plain(Engine& engine) {
  std::string out;
  std::vector<std::uint8_t> buf(4096);
  while (engine.plain_available() > 0) {
    std::size_t n = engine.read_plain(buf);
    out.append(reinterpret_cast<const char*>(buf.data()), n);
  }
  return out;
}

TEST(TlsEngine, HandshakeConvergesWithCoalescedFlights) {
  const TestPki& pki = TestPki::instance();
  EnginePair pair;
  run_handshake(*pair.client, *pair.server, 1 << 20, 1 << 20);

  ASSERT_TRUE(pair.client->peer().has_value());
  EXPECT_EQ(pair.client->peer()->identity, pki.server.certificate.subject());
  ASSERT_TRUE(pair.server->peer().has_value());
  EXPECT_EQ(pair.server->peer()->identity, pki.alice.certificate.subject());
}

TEST(TlsEngine, HandshakeConvergesOneByteAtATime) {
  const TestPki& pki = TestPki::instance();
  EnginePair pair;
  run_handshake(*pair.client, *pair.server, 1, 1);

  EXPECT_TRUE(pair.client->handshake_done());
  EXPECT_TRUE(pair.server->handshake_done());
  ASSERT_TRUE(pair.server->peer().has_value());
  EXPECT_EQ(pair.server->peer()->identity, pki.alice.certificate.subject());
}

TEST(TlsEngine, DataSurvivesArbitraryFragmentation) {
  EnginePair pair;
  Engine& client = *pair.client;
  Engine& server = *pair.server;
  run_handshake(client, server, 1 << 20, 1 << 20);

  std::string message = "GET /portal HTTP/1.1\r\n\r\n";
  util::Buffer wire;
  client.encrypt(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()),
      wire);
  util::Buffer reply;
  deliver(wire, server, reply, 3);  // awkward stride across record edges
  EXPECT_TRUE(reply.empty()) << "data records must not provoke responses";
  EXPECT_EQ(drain_plain(server), message);
}

TEST(TlsEngine, EncryptCoalescesChunksIntoOneRecord) {
  EnginePair pair;
  Engine& client = *pair.client;
  Engine& server = *pair.server;
  run_handshake(client, server, 1 << 20, 1 << 20);

  // A vectored HTTP response: status/header chunk plus body chunk. The
  // engine must pack both into a single shared record, not one each.
  std::string head = "HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n";
  std::string body = "hello world";
  std::vector<std::string_view> chunks = {head, body};
  util::Buffer wire;
  client.encrypt(chunks, wire);
  EXPECT_EQ(count_records(wire), 1);

  util::Buffer reply;
  deliver(wire, server, reply, 1 << 20);
  EXPECT_EQ(drain_plain(server), head + body);
}

TEST(TlsEngine, LargeWriteSplitsIntoBoundedRecords) {
  EnginePair pair;
  Engine& client = *pair.client;
  Engine& server = *pair.server;
  run_handshake(client, server, 1 << 20, 1 << 20);

  std::string big(40 * 1024, 'x');  // > 2 full 16 KiB records
  std::vector<std::string_view> chunks = {big};
  util::Buffer wire;
  client.encrypt(chunks, wire);
  EXPECT_GE(count_records(wire), 3);

  util::Buffer reply;
  deliver(wire, server, reply, 4096);
  EXPECT_EQ(drain_plain(server), big);
}

TEST(TlsEngine, TamperedRecordRaisesAuthErrorAndEmitsAlert) {
  EnginePair pair;
  Engine& client = *pair.client;
  Engine& server = *pair.server;
  run_handshake(client, server, 1 << 20, 1 << 20);

  std::string message = "payload";
  util::Buffer wire;
  client.encrypt(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()),
      wire);
  std::vector<std::uint8_t> bytes(wire.peek().begin(), wire.peek().end());
  bytes[bytes.size() - 1] ^= 0x01;  // flip a MAC byte

  util::Buffer reply;
  EXPECT_THROW(server.feed(bytes, reply), AuthError);
  // The alert owed to the peer was appended before the throw, so the
  // caller can flush it best-effort and close.
  EXPECT_FALSE(reply.empty());
}

}  // namespace
}  // namespace clarens::tls
