// Unit tests for proxy-certificate storage and delegation (§2.6).
#include <gtest/gtest.h>

#include "core/proxy_service.hpp"
#include "core/session.hpp"
#include "pki/authority.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TestPki;

struct ProxyFixture : ::testing::Test {
  const TestPki& pki = TestPki::instance();
  db::Store store;
  SessionManager sessions{store};
  ProxyService proxies{store, sessions, pki.trust};
  pki::Credential proxy = pki::issue_proxy(pki.alice);
  std::string alice_dn = pki.alice.certificate.subject().str();
};

TEST_F(ProxyFixture, StoreAndRetrieve) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  EXPECT_TRUE(proxies.exists(alice_dn));
  auto stored = proxies.retrieve(alice_dn, "pw");
  EXPECT_EQ(stored.proxy.certificate, proxy.certificate);
  EXPECT_EQ(stored.user_cert, pki.alice.certificate);
  // The retrieved key works (delegation is usable).
  auto sig = crypto::rsa_sign(stored.proxy.private_key, "probe");
  EXPECT_TRUE(crypto::rsa_verify(stored.proxy.certificate.public_key(),
                                 "probe", sig));
}

TEST_F(ProxyFixture, WrongPasswordRejected) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  EXPECT_THROW(proxies.retrieve(alice_dn, "wrong"), AuthError);
  EXPECT_THROW(proxies.retrieve("/O=no/CN=body", "pw"), AuthError);
  EXPECT_THROW(proxies.store(proxy, pki.alice.certificate, ""), ParseError);
}

TEST_F(ProxyFixture, InvalidChainRefusedAtStore) {
  // Proxy signed by alice presented with bob's certificate.
  EXPECT_THROW(proxies.store(proxy, pki.bob.certificate, "pw"), AuthError);
}

TEST_F(ProxyFixture, ExpiredProxyRefusedAtRetrieve) {
  pki::Credential brief = pki::issue_proxy(pki.alice, /*lifetime=*/-10);
  // Store-time verification also fails for an already-expired proxy.
  EXPECT_THROW(proxies.store(brief, pki.alice.certificate, "pw"), AuthError);
}

TEST_F(ProxyFixture, LogonCreatesDelegatedSession) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  std::string session_id = proxies.logon(alice_dn, "pw");
  Session session = sessions.lookup(session_id);
  EXPECT_EQ(session.identity, alice_dn);  // user identity, not /CN=proxy
  EXPECT_TRUE(session.via_proxy);
  EXPECT_EQ(session.attached_proxy_serial, proxy.certificate.serial());
}

TEST_F(ProxyFixture, AttachRenewsSessionToProxyLifetime) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  // Short-lived session: attaching the 12-hour proxy extends it.
  SessionManager brief_sessions(store, /*default_ttl=*/60);
  Session session = brief_sessions.create(alice_dn, false);
  proxies.attach(session.id, alice_dn, "pw");
  Session updated = sessions.lookup(session.id);
  EXPECT_TRUE(updated.via_proxy);
  EXPECT_EQ(updated.attached_proxy_serial, proxy.certificate.serial());
  // The session now tracks the proxy certificate's remaining lifetime.
  EXPECT_GT(updated.expires, session.expires);
  EXPECT_LE(updated.expires, proxy.certificate.not_after() + 5);
}

TEST_F(ProxyFixture, AttachToForeignSessionRefused) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  Session bob_session =
      sessions.create(pki.bob.certificate.subject().str(), false);
  EXPECT_THROW(proxies.attach(bob_session.id, alice_dn, "pw"), AccessError);
}

TEST_F(ProxyFixture, RemoveRequiresPassword) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  EXPECT_THROW(proxies.remove(alice_dn, "wrong"), AuthError);
  EXPECT_TRUE(proxies.remove(alice_dn, "pw"));
  EXPECT_FALSE(proxies.exists(alice_dn));
  EXPECT_FALSE(proxies.remove(alice_dn, "pw"));
}

TEST_F(ProxyFixture, StoredBlobIsNotPlaintext) {
  proxies.store(proxy, pki.alice.certificate, "pw");
  auto raw = store.get("proxies", alice_dn);
  ASSERT_TRUE(raw.has_value());
  // The private key hex must not appear in the stored record.
  EXPECT_EQ(raw->find(proxy.private_key.d.to_hex()), std::string::npos);
}

TEST_F(ProxyFixture, ReplacingProxyOverwrites) {
  proxies.store(proxy, pki.alice.certificate, "pw1");
  pki::Credential proxy2 = pki::issue_proxy(pki.alice);
  proxies.store(proxy2, pki.alice.certificate, "pw2");
  EXPECT_THROW(proxies.retrieve(alice_dn, "pw1"), AuthError);
  EXPECT_EQ(proxies.retrieve(alice_dn, "pw2").proxy.certificate,
            proxy2.certificate);
}

}  // namespace
}  // namespace clarens::core
