// Tests for the client library: the synchronous client's transport
// behaviour (keep-alive reuse, transparent reconnect, GET ranges) and
// the asynchronous multi-connection driver used by the Figure-4 bench.
#include <gtest/gtest.h>

#include <fstream>

#include "client/async_client.hpp"
#include "client/client.hpp"
#include "core/server.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::client {
namespace {

using testing::TempDir;
using testing::TestPki;

core::ClarensConfig open_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"echo", anyone}};
  return config;
}

ClientOptions options_for(const TestPki& pki, std::uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.credential = pki.alice;
  options.trust = &pki.trust;
  return options;
}

TEST(Client, KeepAliveReusesOneConnection) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
  }
  // 50 echos + challenge + auth = 52 requests, all on one connection.
  EXPECT_EQ(server.requests_served(), 52u);
  server.stop();
}

TEST(Client, ReconnectsAfterServerRestartWithPersistentSessions) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  core::ClarensConfig config = open_config(pki);
  config.data_dir = tmp.sub("state");
  auto server = std::make_unique<core::ClarensServer>(std::move(config));
  server->start();
  std::uint16_t port = server->port();

  ClarensClient client(options_for(pki, port));
  client.connect();
  std::string session = client.authenticate();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(1)}).as_int(), 1);

  // Restart the server on the same port; the session store persists.
  server->stop();
  server.reset();
  core::ClarensConfig config2 = open_config(pki);
  config2.data_dir = tmp.path() + "/state";
  config2.port = port;
  core::ClarensServer restarted(std::move(config2));
  restarted.start();

  // The client notices the dead keep-alive connection and retries; the
  // old session token still works (the paper's restart-survival claim).
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(2)}).as_int(), 2);
  EXPECT_EQ(client.session(), session);
  restarted.stop();
}

TEST(Client, AuthenticateWithoutCredentialFails) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClientOptions options;
  options.port = server.port();
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), AuthError);
  server.stop();
}

TEST(Client, WrongKeyChallengeRejected) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Credential whose certificate belongs to alice but whose key is bob's:
  // the challenge signature will not verify.
  pki::Credential frankenstein{pki.alice.certificate, pki.bob.private_key};
  ClientOptions options;
  options.port = server.port();
  options.credential = frankenstein;
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), rpc::Fault);
  server.stop();
}

TEST(Client, GetRangeRequests) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("files");
  {
    std::ofstream out(dir + "/blob.bin", std::ios::binary);
    out << "0123456789ABCDEF";
  }
  core::ClarensConfig config = open_config(pki);
  config.file_roots = {{"/data", dir}};
  core::FileAcl facl;
  facl.read.allow_dns = {core::AclSpec::kAnyone};
  config.initial_file_acls = {{"/data", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  EXPECT_EQ(client.get("/data/blob.bin").body, "0123456789ABCDEF");
  EXPECT_EQ(client.get("/data/blob.bin", 4, 4).body, "4567");
  EXPECT_EQ(client.get("/data/blob.bin", 10, -1).body, "ABCDEF");
  EXPECT_EQ(client.get("/data/ghost").status, 404);
  server.stop();
}

TEST(AsyncDriver, CompletesExactCallBudget) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;

  AsyncCallDriver driver("127.0.0.1", server.port(), session,
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(/*connections=*/8, /*total_calls=*/500);
  EXPECT_EQ(result.calls_completed, 500u);
  EXPECT_EQ(result.faults, 0u);
  EXPECT_GT(result.calls_per_second(), 0.0);
  server.stop();
}

TEST(AsyncDriver, SingleConnectionWorks) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;
  AsyncCallDriver driver("127.0.0.1", server.port(), session, "echo.echo",
                         {rpc::Value(1)});
  AsyncRunResult result = driver.run(1, 50);
  EXPECT_EQ(result.calls_completed, 50u);
  EXPECT_EQ(result.faults, 0u);
  server.stop();
}

TEST(AsyncDriver, CountsFaultsWithoutStalling) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Bogus session: every call faults but the run still completes.
  AsyncCallDriver driver("127.0.0.1", server.port(), "bogus-session",
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(4, 100);
  EXPECT_EQ(result.calls_completed, 100u);
  EXPECT_EQ(result.faults, 100u);
  server.stop();
}

TEST(AsyncDriver, RejectsZeroConnections) {
  AsyncCallDriver driver("127.0.0.1", 1, "", "m", {});
  EXPECT_THROW(driver.run(0, 10), Error);
}

}  // namespace
}  // namespace clarens::client
