// Tests for the client library: the synchronous client's transport
// behaviour (keep-alive reuse, transparent reconnect, GET ranges) and
// the asynchronous multi-connection driver used by the Figure-4 bench.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

#include "client/async_client.hpp"
#include "client/client.hpp"
#include "client/routed.hpp"
#include "core/server.hpp"
#include "http/parser.hpp"
#include "net/socket.hpp"
#include "rpc/fault.hpp"
#include "rpc/protocol.hpp"
#include "test_fixtures.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::client {
namespace {

using testing::TempDir;
using testing::TestPki;

core::ClarensConfig open_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"echo", anyone}};
  return config;
}

ClientOptions options_for(const TestPki& pki, std::uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.credential = pki.alice;
  options.trust = &pki.trust;
  return options;
}

TEST(Client, KeepAliveReusesOneConnection) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
  }
  // 50 echos + challenge + auth = 52 requests, all on one connection.
  EXPECT_EQ(server.requests_served(), 52u);
  server.stop();
}

TEST(Client, ReconnectsAfterServerRestartWithPersistentSessions) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  core::ClarensConfig config = open_config(pki);
  config.data_dir = tmp.sub("state");
  auto server = std::make_unique<core::ClarensServer>(std::move(config));
  server->start();
  std::uint16_t port = server->port();

  ClarensClient client(options_for(pki, port));
  client.connect();
  std::string session = client.authenticate();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(1)}).as_int(), 1);

  // Restart the server on the same port; the session store persists.
  server->stop();
  server.reset();
  core::ClarensConfig config2 = open_config(pki);
  config2.data_dir = tmp.path() + "/state";
  config2.port = port;
  core::ClarensServer restarted(std::move(config2));
  restarted.start();

  // The client notices the dead keep-alive connection and retries; the
  // old session token still works (the paper's restart-survival claim).
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(2)}).as_int(), 2);
  EXPECT_EQ(client.session(), session);
  restarted.stop();
}

TEST(Client, AuthenticateWithoutCredentialFails) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClientOptions options;
  options.port = server.port();
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), AuthError);
  server.stop();
}

TEST(Client, WrongKeyChallengeRejected) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Credential whose certificate belongs to alice but whose key is bob's:
  // the challenge signature will not verify.
  pki::Credential frankenstein{pki.alice.certificate, pki.bob.private_key};
  ClientOptions options;
  options.port = server.port();
  options.credential = frankenstein;
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), rpc::Fault);
  server.stop();
}

TEST(Client, GetRangeRequests) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("files");
  {
    std::ofstream out(dir + "/blob.bin", std::ios::binary);
    out << "0123456789ABCDEF";
  }
  core::ClarensConfig config = open_config(pki);
  config.file_roots = {{"/data", dir}};
  core::FileAcl facl;
  facl.read.allow_dns = {core::AclSpec::kAnyone};
  config.initial_file_acls = {{"/data", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  EXPECT_EQ(client.get("/data/blob.bin").body, "0123456789ABCDEF");
  EXPECT_EQ(client.get("/data/blob.bin", 4, 4).body, "4567");
  EXPECT_EQ(client.get("/data/blob.bin", 10, -1).body, "ABCDEF");
  EXPECT_EQ(client.get("/data/ghost").status, 404);
  server.stop();
}

// Scripted keep-alive peer for the retry-policy tests: every request is
// answered with its 1-based sequence number, except request `drop_at`,
// which is read fully and then "answered" by closing the connection —
// the keep-alive teardown race ClarensClient::roundtrip must survive.
// When `partial` is set the dropped request first receives a torn
// response prefix. Fresh connections keep being accepted afterwards.
class FlakyServer {
 public:
  explicit FlakyServer(int drop_at, bool partial = false)
      : drop_at_(drop_at),
        partial_(partial),
        listener_(net::TcpListener::listen(0)),
        thread_([this] { serve(); }) {}
  ~FlakyServer() {
    running_.store(false);
    listener_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return listener_.local_port(); }
  int requests_seen() const { return requests_seen_.load(); }

 private:
  void serve() {
    while (running_.load()) {
      net::TcpConnection conn;
      try {
        conn = listener_.accept();
      } catch (const Error&) {
        return;  // shutdown() woke us
      }
      http::RequestParser parser;
      std::array<std::uint8_t, 16 * 1024> chunk;
      bool open = true;
      while (running_.load() && open) {
        std::optional<http::Request> request;
        try {
          while (!(request = parser.next())) {
            std::size_t n = conn.read(chunk);
            if (n == 0) {
              open = false;
              break;
            }
            parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
          }
        } catch (const Error&) {
          open = false;
        }
        if (!request) break;
        int seq = ++requests_seen_;
        if (seq == drop_at_) {
          if (partial_) {
            conn.write_all(std::string("HTTP/1.1 200 OK\r\nContent-Le"));
          }
          conn.close();
          break;
        }
        rpc::Request rpc_request =
            rpc::parse_request(rpc::Protocol::XmlRpc, request->body);
        rpc::Response response =
            rpc::Response::success(rpc::Value(static_cast<std::int64_t>(seq)));
        response.id = rpc_request.id;
        http::Response out = http::Response::make(
            200, rpc::serialize_response(rpc::Protocol::XmlRpc, response),
            rpc::content_type(rpc::Protocol::XmlRpc));
        conn.write_all(out.serialize());
      }
    }
  }

  int drop_at_;
  bool partial_;
  std::atomic<bool> running_{true};
  std::atomic<int> requests_seen_{0};
  net::TcpListener listener_;
  util::Thread thread_;
};

ClientOptions plain_options(std::uint16_t port) {
  ClientOptions options;
  options.port = port;
  return options;
}

TEST(ClientRetry, IdempotentMethodTable) {
  EXPECT_TRUE(is_idempotent_method("echo.echo"));
  EXPECT_TRUE(is_idempotent_method("system.ping"));
  EXPECT_TRUE(is_idempotent_method("discovery.find_services"));
  EXPECT_TRUE(is_idempotent_method("file.read"));
  EXPECT_TRUE(is_idempotent_method("file.ls"));
  EXPECT_TRUE(is_idempotent_method("file.locate"));
  EXPECT_TRUE(is_idempotent_method("proxy.exists"));
  EXPECT_FALSE(is_idempotent_method("file.write"));
  EXPECT_FALSE(is_idempotent_method("file.mkdir"));
  EXPECT_FALSE(is_idempotent_method("file.rm"));
  EXPECT_FALSE(is_idempotent_method("job.submit"));
  EXPECT_FALSE(is_idempotent_method("proxy.logon"));
  EXPECT_FALSE(is_idempotent_method("filesystem"));  // prefix, not a match
}

TEST(ClientRetry, IdempotentCallReplayedOnceOnTornKeepAlive) {
  FlakyServer server(/*drop_at=*/2);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{1})}).as_int(),
            1);
  // Request 2 is read and dropped; the replay on a fresh connection is
  // request 3 and the call succeeds transparently.
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{2})}).as_int(),
            3);
  EXPECT_EQ(server.requests_seen(), 3);
}

TEST(ClientRetry, NonIdempotentCallIsNeverReplayed) {
  FlakyServer server(/*drop_at=*/2);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client
                .call("file.write",
                      {rpc::Value(std::string("/p")),
                       rpc::Value(std::string("x"))})
                .as_int(),
            1);
  // The server may have executed the dropped write before dying, so the
  // client must surface the failure instead of double-executing.
  EXPECT_THROW(client.call("file.write", {rpc::Value(std::string("/p")),
                                          rpc::Value(std::string("y"))}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 2);
}

TEST(ClientRetry, FreshConnectionFailureIsNotRetried) {
  FlakyServer server(/*drop_at=*/1);
  ClarensClient client(plain_options(server.port()));
  // No connect(): roundtrip dials a fresh connection, so its failure is
  // a real error, not a stale keep-alive — even for idempotent methods.
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{1})}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 1);
}

TEST(ClientRetry, TransportErrorCarriesMayHaveExecuted) {
  // Dropped after the full request was written: the server may have
  // executed the call before dying, and the error must say so.
  {
    FlakyServer server(/*drop_at=*/2);
    ClarensClient client(plain_options(server.port()));
    client.connect();
    client.call("file.write", {rpc::Value(std::string("/p")),
                               rpc::Value(std::string("x"))});
    try {
      client.call("file.write", {rpc::Value(std::string("/p")),
                                 rpc::Value(std::string("y"))});
      FAIL() << "expected TransportError";
    } catch (const TransportError& e) {
      EXPECT_TRUE(e.may_have_executed());
    }
  }
  // Connection refused: the request provably never reached a server, so
  // outer retry layers may replay even non-idempotent methods.
  {
    net::TcpListener closed = net::TcpListener::listen(0);
    std::uint16_t dead_port = closed.local_port();
    closed.shutdown();
    ClientOptions options;
    options.port = dead_port;
    ClarensClient client(options);
    try {
      client.call("file.write", {rpc::Value(std::string("/p")),
                                 rpc::Value(std::string("x"))});
      FAIL() << "expected TransportError";
    } catch (const TransportError& e) {
      EXPECT_FALSE(e.may_have_executed());
    }
  }
}

TEST(RoutedRetry, IdempotentCallRetriedThroughHead) {
  // The head drops the very first request after reading it; an
  // idempotent call rides out the failure via the retry loop.
  FlakyServer server(/*drop_at=*/1);
  ClientOptions base;
  RoutedClient client("http://127.0.0.1:" + std::to_string(server.port()) +
                          "/clarens",
                      base, /*max_attempts=*/4, /*retry_backoff_ms=*/10);
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{1})}).as_int(),
            2);
  EXPECT_EQ(server.requests_seen(), 2);
}

TEST(RoutedRetry, NonIdempotentThatMayHaveExecutedPropagates) {
  // Same failure, non-idempotent method: the request reached the server
  // (which may have executed it before dying), so RoutedClient must NOT
  // replay through the head — the transport error surfaces unchanged.
  FlakyServer server(/*drop_at=*/1);
  ClientOptions base;
  RoutedClient client("http://127.0.0.1:" + std::to_string(server.port()) +
                          "/clarens",
                      base, /*max_attempts=*/4, /*retry_backoff_ms=*/10);
  EXPECT_THROW(client.call("file.write", {rpc::Value(std::string("/p")),
                                          rpc::Value(std::string("x"))}),
               TransportError);
  EXPECT_EQ(server.requests_seen(), 1);
}

TEST(RoutedRetry, NonIdempotentRetriedWhenRequestNeverReachedServer) {
  // Dead head: every connect is refused, so nothing ever executed and
  // retrying is safe even for file.write — the retry budget is spent
  // (proving the calls were replayed, not propagated on first failure).
  net::TcpListener closed = net::TcpListener::listen(0);
  std::uint16_t dead_port = closed.local_port();
  closed.shutdown();
  ClientOptions base;
  RoutedClient client("http://127.0.0.1:" + std::to_string(dead_port) +
                          "/clarens",
                      base, /*max_attempts=*/3, /*retry_backoff_ms=*/10);
  try {
    client.call("file.write", {rpc::Value(std::string("/p")),
                               rpc::Value(std::string("x"))});
    FAIL() << "expected SystemError";
  } catch (const SystemError& e) {
    EXPECT_NE(std::string(e.what()).find("after 3 attempts"),
              std::string::npos)
        << e.what();
  }
}

TEST(ClientRetry, PartialResponseNeverReplayedEvenWhenIdempotent) {
  FlakyServer server(/*drop_at=*/2, /*partial=*/true);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{1})}).as_int(),
            1);
  // Response bytes arrived: the call definitely executed server-side, so
  // even an idempotent method must not be silently run twice.
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{2})}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 2);
}

TEST(FanOut, BlackholedTargetDoesNotStallHealthySiblings) {
  // A healthy node plus a port whose accept queue is deliberately full —
  // SYNs to it are dropped, so a *blocking* connect would hang for the
  // kernel's minutes-long handshake timeout. fan_out connects
  // non-blockingly under its own deadline: the healthy sibling answers
  // and the blackholed one fails, all within the fan-out timeout.
  FlakyServer healthy(/*drop_at=*/0);  // seq starts at 1: never drops
  net::TcpListener blackhole =
      net::TcpListener::listen(0, "127.0.0.1", /*backlog=*/1);
  std::vector<net::TcpConnection> filler;
  for (int i = 0; i < 4; ++i) {
    try {
      filler.push_back(net::TcpConnection::connect_nonblocking(
          "127.0.0.1", blackhole.local_port()));
    } catch (const Error&) {
      break;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<FanOutTarget> targets(2);
  targets[0].host = "127.0.0.1";
  targets[0].port = healthy.port();
  targets[1].host = "127.0.0.1";
  targets[1].port = blackhole.local_port();
  util::Stopwatch timer;
  std::vector<FanOutReply> replies =
      fan_out(targets, "echo.echo", {rpc::Value(std::int64_t{7})}, {},
              rpc::Protocol::XmlRpc, /*timeout_ms=*/1000);
  // Well under the kernel connect timeout the old blocking path hit
  // (sanitizer headroom on top of the 1 s fan-out deadline).
  EXPECT_LT(timer.seconds(), 30.0);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[0].ok) << replies[0].error;
  EXPECT_EQ(replies[0].result.as_int(), 1);
  EXPECT_FALSE(replies[1].ok);
}

TEST(AsyncDriver, CompletesExactCallBudget) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;

  AsyncCallDriver driver("127.0.0.1", server.port(), session,
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(/*connections=*/8, /*total_calls=*/500);
  EXPECT_EQ(result.calls_completed, 500u);
  EXPECT_EQ(result.faults, 0u);
  EXPECT_GT(result.calls_per_second(), 0.0);
  server.stop();
}

TEST(AsyncDriver, SingleConnectionWorks) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;
  AsyncCallDriver driver("127.0.0.1", server.port(), session, "echo.echo",
                         {rpc::Value(1)});
  AsyncRunResult result = driver.run(1, 50);
  EXPECT_EQ(result.calls_completed, 50u);
  EXPECT_EQ(result.faults, 0u);
  server.stop();
}

TEST(AsyncDriver, CountsFaultsWithoutStalling) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Bogus session: every call faults but the run still completes.
  AsyncCallDriver driver("127.0.0.1", server.port(), "bogus-session",
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(4, 100);
  EXPECT_EQ(result.calls_completed, 100u);
  EXPECT_EQ(result.faults, 100u);
  server.stop();
}

TEST(AsyncDriver, RejectsZeroConnections) {
  AsyncCallDriver driver("127.0.0.1", 1, "", "m", {});
  EXPECT_THROW(driver.run(0, 10), Error);
}

}  // namespace
}  // namespace clarens::client
