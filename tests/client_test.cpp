// Tests for the client library: the synchronous client's transport
// behaviour (keep-alive reuse, transparent reconnect, GET ranges) and
// the asynchronous multi-connection driver used by the Figure-4 bench.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <fstream>
#include <optional>

#include "client/async_client.hpp"
#include "client/client.hpp"
#include "core/server.hpp"
#include "http/parser.hpp"
#include "net/socket.hpp"
#include "rpc/fault.hpp"
#include "rpc/protocol.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::client {
namespace {

using testing::TempDir;
using testing::TestPki;

core::ClarensConfig open_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"echo", anyone}};
  return config;
}

ClientOptions options_for(const TestPki& pki, std::uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.credential = pki.alice;
  options.trust = &pki.trust;
  return options;
}

TEST(Client, KeepAliveReusesOneConnection) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
  }
  // 50 echos + challenge + auth = 52 requests, all on one connection.
  EXPECT_EQ(server.requests_served(), 52u);
  server.stop();
}

TEST(Client, ReconnectsAfterServerRestartWithPersistentSessions) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  core::ClarensConfig config = open_config(pki);
  config.data_dir = tmp.sub("state");
  auto server = std::make_unique<core::ClarensServer>(std::move(config));
  server->start();
  std::uint16_t port = server->port();

  ClarensClient client(options_for(pki, port));
  client.connect();
  std::string session = client.authenticate();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(1)}).as_int(), 1);

  // Restart the server on the same port; the session store persists.
  server->stop();
  server.reset();
  core::ClarensConfig config2 = open_config(pki);
  config2.data_dir = tmp.path() + "/state";
  config2.port = port;
  core::ClarensServer restarted(std::move(config2));
  restarted.start();

  // The client notices the dead keep-alive connection and retries; the
  // old session token still works (the paper's restart-survival claim).
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(2)}).as_int(), 2);
  EXPECT_EQ(client.session(), session);
  restarted.stop();
}

TEST(Client, AuthenticateWithoutCredentialFails) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  ClientOptions options;
  options.port = server.port();
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), AuthError);
  server.stop();
}

TEST(Client, WrongKeyChallengeRejected) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Credential whose certificate belongs to alice but whose key is bob's:
  // the challenge signature will not verify.
  pki::Credential frankenstein{pki.alice.certificate, pki.bob.private_key};
  ClientOptions options;
  options.port = server.port();
  options.credential = frankenstein;
  options.trust = &pki.trust;
  ClarensClient client(options);
  client.connect();
  EXPECT_THROW(client.authenticate(), rpc::Fault);
  server.stop();
}

TEST(Client, GetRangeRequests) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("files");
  {
    std::ofstream out(dir + "/blob.bin", std::ios::binary);
    out << "0123456789ABCDEF";
  }
  core::ClarensConfig config = open_config(pki);
  config.file_roots = {{"/data", dir}};
  core::FileAcl facl;
  facl.read.allow_dns = {core::AclSpec::kAnyone};
  config.initial_file_acls = {{"/data", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  ClarensClient client(options_for(pki, server.port()));
  client.connect();
  client.authenticate();
  EXPECT_EQ(client.get("/data/blob.bin").body, "0123456789ABCDEF");
  EXPECT_EQ(client.get("/data/blob.bin", 4, 4).body, "4567");
  EXPECT_EQ(client.get("/data/blob.bin", 10, -1).body, "ABCDEF");
  EXPECT_EQ(client.get("/data/ghost").status, 404);
  server.stop();
}

// Scripted keep-alive peer for the retry-policy tests: every request is
// answered with its 1-based sequence number, except request `drop_at`,
// which is read fully and then "answered" by closing the connection —
// the keep-alive teardown race ClarensClient::roundtrip must survive.
// When `partial` is set the dropped request first receives a torn
// response prefix. Fresh connections keep being accepted afterwards.
class FlakyServer {
 public:
  explicit FlakyServer(int drop_at, bool partial = false)
      : drop_at_(drop_at),
        partial_(partial),
        listener_(net::TcpListener::listen(0)),
        thread_([this] { serve(); }) {}
  ~FlakyServer() {
    running_.store(false);
    listener_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  std::uint16_t port() const { return listener_.local_port(); }
  int requests_seen() const { return requests_seen_.load(); }

 private:
  void serve() {
    while (running_.load()) {
      net::TcpConnection conn;
      try {
        conn = listener_.accept();
      } catch (const Error&) {
        return;  // shutdown() woke us
      }
      http::RequestParser parser;
      std::array<std::uint8_t, 16 * 1024> chunk;
      bool open = true;
      while (running_.load() && open) {
        std::optional<http::Request> request;
        try {
          while (!(request = parser.next())) {
            std::size_t n = conn.read(chunk);
            if (n == 0) {
              open = false;
              break;
            }
            parser.feed(std::span<const std::uint8_t>(chunk.data(), n));
          }
        } catch (const Error&) {
          open = false;
        }
        if (!request) break;
        int seq = ++requests_seen_;
        if (seq == drop_at_) {
          if (partial_) {
            conn.write_all(std::string("HTTP/1.1 200 OK\r\nContent-Le"));
          }
          conn.close();
          break;
        }
        rpc::Request rpc_request =
            rpc::parse_request(rpc::Protocol::XmlRpc, request->body);
        rpc::Response response =
            rpc::Response::success(rpc::Value(static_cast<std::int64_t>(seq)));
        response.id = rpc_request.id;
        http::Response out = http::Response::make(
            200, rpc::serialize_response(rpc::Protocol::XmlRpc, response),
            rpc::content_type(rpc::Protocol::XmlRpc));
        conn.write_all(out.serialize());
      }
    }
  }

  int drop_at_;
  bool partial_;
  std::atomic<bool> running_{true};
  std::atomic<int> requests_seen_{0};
  net::TcpListener listener_;
  util::Thread thread_;
};

ClientOptions plain_options(std::uint16_t port) {
  ClientOptions options;
  options.port = port;
  return options;
}

TEST(ClientRetry, IdempotentMethodTable) {
  EXPECT_TRUE(is_idempotent_method("echo.echo"));
  EXPECT_TRUE(is_idempotent_method("system.ping"));
  EXPECT_TRUE(is_idempotent_method("discovery.find_services"));
  EXPECT_TRUE(is_idempotent_method("file.read"));
  EXPECT_TRUE(is_idempotent_method("file.ls"));
  EXPECT_TRUE(is_idempotent_method("file.locate"));
  EXPECT_TRUE(is_idempotent_method("proxy.exists"));
  EXPECT_FALSE(is_idempotent_method("file.write"));
  EXPECT_FALSE(is_idempotent_method("file.mkdir"));
  EXPECT_FALSE(is_idempotent_method("file.rm"));
  EXPECT_FALSE(is_idempotent_method("job.submit"));
  EXPECT_FALSE(is_idempotent_method("proxy.logon"));
  EXPECT_FALSE(is_idempotent_method("filesystem"));  // prefix, not a match
}

TEST(ClientRetry, IdempotentCallReplayedOnceOnTornKeepAlive) {
  FlakyServer server(/*drop_at=*/2);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{1})}).as_int(),
            1);
  // Request 2 is read and dropped; the replay on a fresh connection is
  // request 3 and the call succeeds transparently.
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{2})}).as_int(),
            3);
  EXPECT_EQ(server.requests_seen(), 3);
}

TEST(ClientRetry, NonIdempotentCallIsNeverReplayed) {
  FlakyServer server(/*drop_at=*/2);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client
                .call("file.write",
                      {rpc::Value(std::string("/p")),
                       rpc::Value(std::string("x"))})
                .as_int(),
            1);
  // The server may have executed the dropped write before dying, so the
  // client must surface the failure instead of double-executing.
  EXPECT_THROW(client.call("file.write", {rpc::Value(std::string("/p")),
                                          rpc::Value(std::string("y"))}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 2);
}

TEST(ClientRetry, FreshConnectionFailureIsNotRetried) {
  FlakyServer server(/*drop_at=*/1);
  ClarensClient client(plain_options(server.port()));
  // No connect(): roundtrip dials a fresh connection, so its failure is
  // a real error, not a stale keep-alive — even for idempotent methods.
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{1})}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 1);
}

TEST(ClientRetry, PartialResponseNeverReplayedEvenWhenIdempotent) {
  FlakyServer server(/*drop_at=*/2, /*partial=*/true);
  ClarensClient client(plain_options(server.port()));
  client.connect();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(std::int64_t{1})}).as_int(),
            1);
  // Response bytes arrived: the call definitely executed server-side, so
  // even an idempotent method must not be silently run twice.
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{2})}),
               SystemError);
  EXPECT_EQ(server.requests_seen(), 2);
}

TEST(AsyncDriver, CompletesExactCallBudget) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;

  AsyncCallDriver driver("127.0.0.1", server.port(), session,
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(/*connections=*/8, /*total_calls=*/500);
  EXPECT_EQ(result.calls_completed, 500u);
  EXPECT_EQ(result.faults, 0u);
  EXPECT_GT(result.calls_per_second(), 0.0);
  server.stop();
}

TEST(AsyncDriver, SingleConnectionWorks) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  std::string session = server.direct_login(
      pki.alice.certificate.subject().str()).id;
  AsyncCallDriver driver("127.0.0.1", server.port(), session, "echo.echo",
                         {rpc::Value(1)});
  AsyncRunResult result = driver.run(1, 50);
  EXPECT_EQ(result.calls_completed, 50u);
  EXPECT_EQ(result.faults, 0u);
  server.stop();
}

TEST(AsyncDriver, CountsFaultsWithoutStalling) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // Bogus session: every call faults but the run still completes.
  AsyncCallDriver driver("127.0.0.1", server.port(), "bogus-session",
                         "system.list_methods", {});
  AsyncRunResult result = driver.run(4, 100);
  EXPECT_EQ(result.calls_completed, 100u);
  EXPECT_EQ(result.faults, 100u);
  server.stop();
}

TEST(AsyncDriver, RejectsZeroConnections) {
  AsyncCallDriver driver("127.0.0.1", 1, "", "m", {});
  EXPECT_THROW(driver.run(0, 10), Error);
}

}  // namespace
}  // namespace clarens::client
