// The typed method-binding layer (rpc/binding.hpp): parameter
// unmarshalling, derived signatures, per-method metadata, kFaultType
// faults for wrong-typed / missing parameters — at the registry level
// and end-to-end over all four wire protocols.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "core/server.hpp"
#include "rpc/binding.hpp"
#include "rpc/fault.hpp"
#include "rpc/registry.hpp"
#include "test_fixtures.hpp"

namespace clarens {
namespace {

using testing::TestPki;

rpc::CallContext context_of(const std::string& dn) {
  rpc::CallContext context;
  context.identity = dn;
  return context;
}

// ---- unmarshalling ------------------------------------------------------

TEST(MethodBinding, TypedParametersReachTheHandler) {
  rpc::Registry registry;
  registry.bind("t.concat",
                [](const std::string& s, std::int64_t n, bool flag) {
                  return s + "/" + std::to_string(n) + (flag ? "/y" : "/n");
                });
  rpc::Value out = registry.dispatch(
      "t.concat", {}, {rpc::Value("a"), rpc::Value(7), rpc::Value(true)});
  EXPECT_EQ(out.as_string(), "a/7/y");
}

TEST(MethodBinding, ContextIsInjectedWhenDeclared) {
  rpc::Registry registry;
  registry.bind("t.who", [](const rpc::CallContext& context) {
    return context.identity;
  });
  rpc::Value out = registry.dispatch("t.who", context_of("/CN=X"), {});
  EXPECT_EQ(out.as_string(), "/CN=X");
}

TEST(MethodBinding, WrongTypeFaultsWithTypeCodeAndIndex) {
  rpc::Registry registry;
  registry.bind("t.take_int", [](std::int64_t n) { return n; });
  try {
    registry.dispatch("t.take_int", {}, {rpc::Value("five")});
    FAIL() << "expected a fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultType);
    EXPECT_NE(std::string(fault.what()).find("parameter 1"), std::string::npos);
    EXPECT_NE(std::string(fault.what()).find("expected int"),
              std::string::npos);
  }
}

TEST(MethodBinding, MissingRequiredParameterFaultsWithTypeCode) {
  rpc::Registry registry;
  registry.bind("t.pair", [](const std::string&, const std::string&) {
    return true;
  });
  try {
    registry.dispatch("t.pair", {}, {rpc::Value("only-one")});
    FAIL() << "expected a fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultType);
    EXPECT_NE(std::string(fault.what()).find("at least 2"), std::string::npos);
  }
}

TEST(MethodBinding, TrailingOptionalTolerantOfMissingAndNil) {
  rpc::Registry registry;
  registry.bind("t.opt",
                [](const std::string& s, std::optional<std::int64_t> n) {
                  return s + ":" + (n ? std::to_string(*n) : "none");
                });
  EXPECT_EQ(registry.dispatch("t.opt", {}, {rpc::Value("a")}).as_string(),
            "a:none");
  EXPECT_EQ(registry.dispatch("t.opt", {}, {rpc::Value("a"), rpc::Value::nil()})
                .as_string(),
            "a:none");
  EXPECT_EQ(
      registry.dispatch("t.opt", {}, {rpc::Value("a"), rpc::Value(3)})
          .as_string(),
      "a:3");
  // A *present but wrong-typed* optional still faults.
  try {
    registry.dispatch("t.opt", {}, {rpc::Value("a"), rpc::Value("x")});
    FAIL() << "expected a fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultType);
  }
}

TEST(MethodBinding, ExtraParametersAreIgnored) {
  rpc::Registry registry;
  registry.bind("t.one", [](std::int64_t n) { return n; });
  rpc::Value out =
      registry.dispatch("t.one", {}, {rpc::Value(1), rpc::Value("ignored")});
  EXPECT_EQ(out.as_int(), 1);
}

TEST(MethodBinding, BlobAcceptsBinaryAndString) {
  rpc::Registry registry;
  registry.bind("t.len", [](rpc::Blob data) {
    return static_cast<std::int64_t>(data.bytes.size());
  });
  std::vector<std::uint8_t> raw = {1, 2, 3};
  EXPECT_EQ(registry.dispatch("t.len", {}, {rpc::Value(raw)}).as_int(), 3);
  EXPECT_EQ(registry.dispatch("t.len", {}, {rpc::Value("abcd")}).as_int(), 4);
  EXPECT_THROW(registry.dispatch("t.len", {}, {rpc::Value(1)}), rpc::Fault);
}

TEST(MethodBinding, StructArgRequiresStruct) {
  rpc::Registry registry;
  registry.bind("t.pick", [](rpc::StructArg s) {
    return s.at("k").as_string();
  });
  rpc::Value arg = rpc::Value::struct_();
  arg.set("k", std::string("v"));
  EXPECT_EQ(registry.dispatch("t.pick", {}, {arg}).as_string(), "v");
  try {
    registry.dispatch("t.pick", {}, {rpc::Value("not-a-struct")});
    FAIL() << "expected a fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultType);
    EXPECT_NE(std::string(fault.what()).find("expected struct"),
              std::string::npos);
  }
}

// ---- derived signatures & metadata -------------------------------------

TEST(MethodBinding, SignatureDerivedFromCppTypes) {
  rpc::Registry registry;
  registry.bind(
      "t.read",
      [](const rpc::CallContext&, const std::string&, std::int64_t,
         std::int64_t) { return std::vector<std::uint8_t>{}; },
      {.params = {"path", "offset", "length"}});
  EXPECT_EQ(registry.info("t.read").signature,
            "base64 (string path, int offset, int length)");

  registry.bind("t.opt", [](const std::string&, std::optional<std::int64_t>) {
    return rpc::Array{};
  });
  // Optionals are marked; unnamed parameters print bare types.
  EXPECT_EQ(registry.info("t.opt").signature, "array (string, int?)");

  registry.bind("t.blob", [](rpc::Blob) { return rpc::StructResult{}; });
  EXPECT_EQ(registry.info("t.blob").signature, "struct (base64|string)");

  registry.bind("t.any", [](const rpc::Value& v) { return v; });
  EXPECT_EQ(registry.info("t.any").signature, "any (any)");
}

TEST(MethodBinding, MetadataCarriedThroughFind) {
  rpc::Registry registry;
  registry.bind(
      "t.pub", [] { return true; },
      {.help = "a public probe", .is_public = true, .acl_path = "other.path"});
  auto method = registry.find("t.pub");
  ASSERT_NE(method, nullptr);
  EXPECT_TRUE(method->info.is_public);
  EXPECT_EQ(method->info.acl_path, "other.path");
  EXPECT_EQ(method->info.help, "a public probe");
  EXPECT_EQ(registry.find("t.absent"), nullptr);
}

// ---- end-to-end: introspection + faults over every protocol -------------

core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::ClarensConfig base_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.admins = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  config.initial_method_acls = {{"system", allow_anyone()},
                                {"echo", allow_anyone()}};
  return config;
}

client::ClientOptions client_options(const TestPki& pki,
                                     const pki::Credential& who,
                                     std::uint16_t port) {
  client::ClientOptions options;
  options.port = port;
  options.credential = who;
  options.trust = &pki.trust;
  return options;
}

TEST(MethodBindingIntrospection, WireIntrospectionMatchesRegistry) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  client.authenticate();

  rpc::Value methods = client.call("system.list_methods");
  ASSERT_EQ(methods.as_array().size(), server.registry().size());
  for (const rpc::Value& name : methods.as_array()) {
    rpc::MethodInfo info = server.registry().info(name.as_string());
    rpc::Value signature =
        client.call("system.method_signature", {name});
    rpc::Value help = client.call("system.method_help", {name});
    EXPECT_EQ(signature.as_string(), info.signature) << name.as_string();
    EXPECT_EQ(help.as_string(), info.help) << name.as_string();
    // Every bound method has a derived, well-formed signature.
    EXPECT_NE(info.signature.find(" ("), std::string::npos)
        << name.as_string();
    EXPECT_EQ(info.signature.back(), ')') << name.as_string();
    EXPECT_FALSE(info.help.empty()) << name.as_string();
  }
  server.stop();
}

TEST(MethodBindingIntrospection, FileReadSignatureIsDerived) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  EXPECT_EQ(server.registry().info("file.read").signature,
            "base64 (string path, int offset, int length)");
  EXPECT_EQ(server.registry().info("system.auth").signature,
            "string (string nonce?, array chain?, string signature?)");
  // Metadata replaced the hardcoded public-method name list.
  EXPECT_TRUE(server.registry().find("system.ping")->info.is_public);
  EXPECT_TRUE(server.registry().find("proxy.logon")->info.is_public);
  EXPECT_FALSE(server.registry().find("system.logout")->info.is_public);
}

TEST(MethodBindingFaults, WrongTypeFaultsOnEveryProtocol) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  const rpc::Protocol protocols[] = {rpc::Protocol::XmlRpc,
                                     rpc::Protocol::JsonRpc,
                                     rpc::Protocol::Soap,
                                     rpc::Protocol::Binary};
  for (rpc::Protocol protocol : protocols) {
    client::ClientOptions options =
        client_options(pki, pki.bob, server.port());
    options.protocol = protocol;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();

    // system.method_help expects a string; send an int.
    try {
      client.call("system.method_help", {rpc::Value(5)});
      FAIL() << "expected a type fault on protocol "
             << static_cast<int>(protocol);
    } catch (const rpc::Fault& fault) {
      EXPECT_EQ(fault.code(), rpc::kFaultType)
          << "protocol " << static_cast<int>(protocol);
      EXPECT_NE(std::string(fault.what()).find("expected string"),
                std::string::npos);
    }

    // Missing required parameter is the same fault class.
    try {
      client.call("system.method_help");
      FAIL() << "expected a missing-parameter fault";
    } catch (const rpc::Fault& fault) {
      EXPECT_EQ(fault.code(), rpc::kFaultType);
    }
  }
  server.stop();
}

// ---- redirect envelopes over every protocol ------------------------------
//
// A federated head answers file.read/write with a RedirectResult struct
// (ISSUE 8); the envelope must survive serialization on all four wire
// protocols, and its reserved marker must stay distinguishable from
// ordinary struct results.
TEST(MethodBindingRedirect, EnvelopeSurvivesEveryProtocol) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = base_config(pki);
  core::AclSpec anyone = allow_anyone();
  config.initial_method_acls.push_back({"t", anyone});
  core::ClarensServer server(std::move(config));
  server.registry().bind(
      "t.redirect",
      [](const std::string&) {
        rpc::RedirectResult redirect;
        redirect.url = "http://node1:8080/clarens";
        redirect.ticket = "cnt1.00ff.aa55";
        redirect.scope = "/data/run1";
        return redirect;
      },
      {.help = "test: always redirects", .params = {"path"}});
  server.registry().bind(
      "t.plain",
      [] {
        // A struct that *mentions* the marker key with a non-307 value
        // must not be mistaken for a redirect.
        rpc::Value v = rpc::Value::struct_();
        v.set("clarens.redirect", std::int64_t{200});
        v.set("url", std::string("http://decoy"));
        return rpc::StructResult{std::move(v)};
      },
      {.help = "test: marker-shaped but not a redirect"});
  EXPECT_EQ(server.registry().info("t.redirect").signature,
            "redirect (string path)");
  server.start();

  const rpc::Protocol protocols[] = {rpc::Protocol::XmlRpc,
                                     rpc::Protocol::JsonRpc,
                                     rpc::Protocol::Soap,
                                     rpc::Protocol::Binary};
  for (rpc::Protocol protocol : protocols) {
    client::ClientOptions options =
        client_options(pki, pki.bob, server.port());
    options.protocol = protocol;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();

    rpc::Value value =
        client.call("t.redirect", {rpc::Value("/data/run1/evt.bin")});
    ASSERT_TRUE(rpc::RedirectResult::is_redirect(value))
        << "protocol " << static_cast<int>(protocol);
    rpc::RedirectResult redirect = rpc::RedirectResult::from_value(value);
    EXPECT_EQ(redirect.url, "http://node1:8080/clarens");
    EXPECT_EQ(redirect.ticket, "cnt1.00ff.aa55");
    EXPECT_EQ(redirect.scope, "/data/run1");

    rpc::Value plain = client.call("t.plain");
    EXPECT_FALSE(rpc::RedirectResult::is_redirect(plain))
        << "protocol " << static_cast<int>(protocol);
    EXPECT_THROW(rpc::RedirectResult::from_value(plain), rpc::Fault);
  }
  server.stop();
}

}  // namespace
}  // namespace clarens
