// End-to-end tests: full server + client over real sockets, covering
// authentication (challenge and TLS paths), the per-request session/ACL
// checks, all four wire protocols, file service over RPC and GET,
// session persistence across restart, and the shell/proxy flows.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "client/client.hpp"
#include "core/server.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::ClarensConfig base_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.admins = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  config.initial_method_acls = {{"system", allow_anyone()},
                                {"echo", allow_anyone()}};
  return config;
}

client::ClientOptions client_options(const TestPki& pki,
                                     const pki::Credential& who,
                                     std::uint16_t port) {
  client::ClientOptions options;
  options.port = port;
  options.credential = who;
  options.trust = &pki.trust;
  return options;
}

TEST(ServerIntegration, ChallengeAuthAndBasicCalls) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  std::string session = client.authenticate();
  EXPECT_FALSE(session.empty());

  // system.list_methods returns the >30-method array of the paper's bench.
  rpc::Value methods = client.call("system.list_methods");
  EXPECT_GT(methods.as_array().size(), 30u);

  rpc::Value who = client.call("system.whoami");
  EXPECT_EQ(who.at("dn").as_string(), "/O=testgrid.org/OU=People/CN=Bob Baker");
  EXPECT_FALSE(who.at("via_proxy").as_bool());

  rpc::Value echoed = client.call("echo.echo", {rpc::Value("hello grid")});
  EXPECT_EQ(echoed.as_string(), "hello grid");
  server.stop();
}

TEST(ServerIntegration, UnauthenticatedCallsAreRejected) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClientOptions options = client_options(pki, pki.bob, server.port());
  client::ClarensClient client(options);
  client.connect();
  // No session: non-public method must fault with the auth code.
  try {
    client.call("system.list_methods");
    FAIL() << "expected fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAuth);
  }
  // Public ping works without a session.
  EXPECT_EQ(client.call("system.ping").as_string(), "pong");
  server.stop();
}

TEST(ServerIntegration, BogusSessionTokenRejected) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  client.set_session("deadbeefdeadbeefdeadbeefdeadbeef");
  EXPECT_THROW(client.call("system.list_methods"), rpc::Fault);
  server.stop();
}

TEST(ServerIntegration, MethodAclDeniesUnlistedIdentity) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = base_config(pki);
  // Only DOE-grid people may use echo; Carol is from another O=.
  core::AclSpec spec;
  spec.allow_dns = {"/O=testgrid.org/OU=People"};
  config.initial_method_acls = {{"system", allow_anyone()}, {"echo", spec}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClarensClient carol(client_options(pki, pki.carol, server.port()));
  carol.connect();
  carol.authenticate();
  try {
    carol.call("echo.echo", {rpc::Value(1)});
    FAIL() << "expected access fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAccess);
  }

  client::ClarensClient bob(client_options(pki, pki.bob, server.port()));
  bob.connect();
  bob.authenticate();
  EXPECT_EQ(bob.call("echo.echo", {rpc::Value(7)}).as_int(), 7);
  server.stop();
}

TEST(ServerIntegration, AllFourProtocolsServeTheSameMethod) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  for (rpc::Protocol protocol :
       {rpc::Protocol::XmlRpc, rpc::Protocol::JsonRpc, rpc::Protocol::Soap,
        rpc::Protocol::Binary}) {
    client::ClientOptions options = client_options(pki, pki.bob, server.port());
    options.protocol = protocol;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();
    rpc::Value result = client.call("echo.echo", {rpc::Value("proto")});
    EXPECT_EQ(result.as_string(), "proto") << rpc::to_string(protocol);
    rpc::Value who = client.call("system.whoami");
    EXPECT_EQ(who.at("protocol").as_string(), rpc::to_string(protocol));
  }
  server.stop();
}

TEST(ServerIntegration, TlsAuthUsesChannelIdentity) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = base_config(pki);
  config.use_tls = true;
  config.credential = pki.server;
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options = client_options(pki, pki.alice, server.port());
  options.use_tls = true;
  client::ClarensClient client(options);
  client.connect();
  std::string session = client.authenticate();
  EXPECT_FALSE(session.empty());
  rpc::Value who = client.call("system.whoami");
  EXPECT_EQ(who.at("dn").as_string(),
            "/O=testgrid.org/OU=People/CN=Alice Able");
  server.stop();
}

TEST(ServerIntegration, FileServiceOverRpcAndGet) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string data_dir = tmp.sub("files");
  {
    std::ofstream out(data_dir + "/events.dat", std::ios::binary);
    for (int i = 0; i < 1000; ++i) out << "event-" << i << "\n";
  }

  core::ClarensConfig config = base_config(pki);
  config.file_roots = {{"/data", data_dir}};
  core::AclSpec anyone = allow_anyone();
  core::FileAcl facl;
  facl.read = anyone;
  facl.write = anyone;
  config.initial_file_acls = {{"/data", facl}};
  config.initial_method_acls.push_back({"file", anyone});
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  client.authenticate();

  // file.ls / file.stat
  auto names = client.file_ls_names("/data");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "events.dat");

  // file.read with offset
  auto bytes = client.file_read("/data/events.dat", 0, 8);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "event-0\n");
  auto tail = client.file_read("/data/events.dat", 8, 8);
  EXPECT_EQ(std::string(tail.begin(), tail.end()), "event-1\n");

  // file.md5 matches a local computation.
  std::string md5 = client.file_md5("/data/events.dat");
  EXPECT_EQ(md5.size(), 32u);

  // HTTP GET with sendfile path; whole file, then a range.
  auto response = client.get("/data/events.dat");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.substr(0, 8), "event-0\n");
  auto range = client.get("/data/events.dat", 8, 8);
  EXPECT_EQ(range.body, "event-1\n");

  // file.write then read it back.
  client.call("file.write",
              {rpc::Value("/data/note.txt"), rpc::Value("hello")});
  auto note = client.file_read("/data/note.txt", 0, 100);
  EXPECT_EQ(std::string(note.begin(), note.end()), "hello");

  // file.find locates it.
  auto found = client.call("file.find",
                           {rpc::Value("/data"), rpc::Value("note")});
  ASSERT_EQ(found.as_array().size(), 1u);
  EXPECT_EQ(found.as_array()[0].as_string(), "/data/note.txt");
  server.stop();
}

TEST(ServerIntegration, FileAclDenied) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string data_dir = tmp.sub("files");
  std::ofstream(data_dir + "/secret.txt") << "classified";

  core::ClarensConfig config = base_config(pki);
  config.file_roots = {{"/data", data_dir}};
  core::AclSpec alice_only;
  alice_only.allow_dns = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  core::FileAcl facl;
  facl.read = alice_only;
  facl.write = alice_only;
  config.initial_file_acls = {{"/data", facl}};
  config.initial_method_acls.push_back({"file", allow_anyone()});
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClarensClient bob(client_options(pki, pki.bob, server.port()));
  bob.connect();
  bob.authenticate();
  try {
    bob.file_read("/data/secret.txt", 0, 10);
    FAIL() << "expected access fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAccess);
  }
  // GET path returns 403 for the same identity-less anonymous request.
  auto anon = bob.get("/data/secret.txt");
  EXPECT_EQ(anon.status, 403);
  server.stop();
}

TEST(ServerIntegration, SessionsSurviveServerRestart) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string state = tmp.sub("state");

  std::string session;
  std::uint16_t port;
  {
    core::ClarensConfig config = base_config(pki);
    config.data_dir = state;
    core::ClarensServer server(std::move(config));
    server.start();
    port = server.port();
    client::ClarensClient client(client_options(pki, pki.bob, port));
    client.connect();
    session = client.authenticate();
    EXPECT_EQ(client.call("system.ping").as_string(), "pong");
    server.stop();
  }
  {
    core::ClarensConfig config = base_config(pki);
    config.data_dir = state;
    config.port = port;  // reuse the port so the client can reconnect
    core::ClarensServer server(std::move(config));
    server.start();
    client::ClarensClient client(client_options(pki, pki.bob, port));
    client.connect();
    client.set_session(session);  // no re-authentication
    rpc::Value who = client.call("system.whoami");
    EXPECT_EQ(who.at("dn").as_string(),
              "/O=testgrid.org/OU=People/CN=Bob Baker");
    server.stop();
  }
}

TEST(ServerIntegration, VoManagementOverRpc) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = base_config(pki);
  config.initial_method_acls.push_back({"vo", allow_anyone()});
  core::ClarensServer server(std::move(config));
  server.start();

  // Alice is a root admin (config), so she may create top-level groups.
  client::ClarensClient alice(client_options(pki, pki.alice, server.port()));
  alice.connect();
  alice.authenticate();
  alice.call("vo.create_group", {rpc::Value("cms")});
  alice.call("vo.create_group", {rpc::Value("cms.analysis")});
  alice.call("vo.add_member",
             {rpc::Value("cms"), rpc::Value("/O=testgrid.org/OU=People")});

  // Hierarchical membership: members of cms are members of cms.analysis.
  rpc::Value direct = alice.call(
      "vo.is_member", {rpc::Value("cms"),
                       rpc::Value("/O=testgrid.org/OU=People/CN=Bob Baker")});
  EXPECT_TRUE(direct.as_bool());
  rpc::Value inherited = alice.call(
      "vo.is_member", {rpc::Value("cms.analysis"),
                       rpc::Value("/O=testgrid.org/OU=People/CN=Bob Baker")});
  EXPECT_TRUE(inherited.as_bool());

  // Bob (not an admin) cannot create groups.
  client::ClarensClient bob(client_options(pki, pki.bob, server.port()));
  bob.connect();
  bob.authenticate();
  EXPECT_THROW(bob.call("vo.create_group", {rpc::Value("rogue")}), rpc::Fault);
  server.stop();
}

TEST(ServerIntegration, ShellSandboxFlow) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  core::ClarensConfig config = base_config(pki);
  config.sandbox_base = tmp.sub("sandbox");
  core::UserMapEntry entry;
  entry.system_user = "bob";
  entry.dns = {"/O=testgrid.org/OU=People/CN=Bob Baker"};
  config.user_map = {entry};
  config.initial_method_acls.push_back({"shell", allow_anyone()});
  config.initial_method_acls.push_back({"file", allow_anyone()});
  core::FileAcl facl;
  facl.read = allow_anyone();
  facl.write = allow_anyone();
  config.initial_file_acls = {{"/sandbox", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClarensClient bob(client_options(pki, pki.bob, server.port()));
  bob.connect();
  bob.authenticate();

  rpc::Value info = bob.call("shell.cmd_info");
  EXPECT_EQ(info.at("sandbox").as_string(), "/sandbox/bob");
  EXPECT_EQ(info.at("user").as_string(), "bob");

  // Upload a file through the file service, then inspect via the shell.
  bob.call("file.write", {rpc::Value("/sandbox/bob/input.txt"),
                          rpc::Value("alpha\nbeta\ngamma\n")});
  rpc::Value wc = bob.call("shell.cmd", {rpc::Value("wc input.txt")});
  EXPECT_EQ(wc.at("exit_code").as_int(), 0);
  EXPECT_EQ(wc.at("stdout").as_string(), "3 3 17 input.txt\n");

  rpc::Value grep = bob.call("shell.cmd", {rpc::Value("grep beta input.txt")});
  EXPECT_EQ(grep.at("stdout").as_string(), "beta\n");

  // Unmapped identity is refused.
  client::ClarensClient carol(client_options(pki, pki.carol, server.port()));
  carol.connect();
  carol.authenticate();
  EXPECT_THROW(carol.call("shell.cmd", {rpc::Value("ls")}), rpc::Fault);
  server.stop();
}

TEST(ServerIntegration, ProxyStoreLogonAndAttach) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = base_config(pki);
  config.initial_method_acls.push_back({"proxy", allow_anyone()});
  core::ClarensServer server(std::move(config));
  server.start();

  pki::Credential proxy = pki::issue_proxy(pki.alice);

  client::ClarensClient alice(client_options(pki, pki.alice, server.port()));
  alice.connect();
  alice.authenticate();
  alice.call("proxy.store",
             {rpc::Value(proxy.encode()),
              rpc::Value(pki.alice.certificate.encode()),
              rpc::Value("s3cret")});

  // Fresh client logs in with DN + password only.
  client::ClientOptions options;
  options.port = server.port();
  options.trust = &pki.trust;
  client::ClarensClient fresh(options);
  fresh.connect();
  std::string session = fresh.proxy_logon(
      "/O=testgrid.org/OU=People/CN=Alice Able", "s3cret");
  EXPECT_FALSE(session.empty());
  rpc::Value who = fresh.call("system.whoami");
  EXPECT_EQ(who.at("dn").as_string(),
            "/O=testgrid.org/OU=People/CN=Alice Able");
  EXPECT_TRUE(who.at("via_proxy").as_bool());

  // Wrong password is rejected.
  EXPECT_THROW(fresh.call("proxy.logon",
                          {rpc::Value("/O=testgrid.org/OU=People/CN=Alice Able"),
                           rpc::Value("wrong")}),
               rpc::Fault);

  // Attach to alice's own session renews it.
  EXPECT_EQ(alice.call("proxy.attach", {rpc::Value("/O=testgrid.org/OU=People/CN=Alice Able"),
                                        rpc::Value("s3cret")})
                .as_bool(),
            true);
  server.stop();
}

}  // namespace
}  // namespace clarens
