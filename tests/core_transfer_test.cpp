// Tests for third-party transfers: URL parsing, the full delegated pull
// between two live servers (source read ACL + destination write ACL both
// enforced against the user), MD5 verification, and failure modes.
#include <gtest/gtest.h>

#include <fstream>

#include "client/client.hpp"
#include "core/server.hpp"
#include "core/transfer_service.hpp"
#include "crypto/md5.hpp"
#include "pki/authority.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

TEST(TransferUrl, Parsing) {
  std::string host;
  std::uint16_t port = 0;
  bool tls = false;
  parse_server_url("http://10.0.0.1:8080", host, port, tls);
  EXPECT_EQ(host, "10.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(tls);
  parse_server_url("https://grid.example.org:8443/clarens", host, port, tls);
  EXPECT_EQ(host, "grid.example.org");
  EXPECT_EQ(port, 8443);
  EXPECT_TRUE(tls);
  EXPECT_THROW(parse_server_url("ftp://x:1", host, port, tls), ParseError);
  EXPECT_THROW(parse_server_url("http://noport", host, port, tls), ParseError);
  EXPECT_THROW(parse_server_url("http://:8080", host, port, tls), ParseError);
}

struct TwoSites {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::unique_ptr<ClarensServer> source;
  std::unique_ptr<ClarensServer> dest;
  std::string source_data;
  std::string dest_data;
  std::string bob_dn;

  explicit TwoSites(bool restrict_source_read = false) {
    bob_dn = pki.bob.certificate.subject().str();
    AclSpec anyone;
    anyone.allow_dns = {AclSpec::kAnyone};

    // Source site holds the dataset.
    source_data = tmp.sub("source-data");
    {
      std::ofstream out(source_data + "/events.dat", std::ios::binary);
      for (int i = 0; i < 300000; ++i) out.put(static_cast<char>(i * 31));
    }
    ClarensConfig source_config;
    source_config.trust = pki.trust;
    source_config.file_roots = {{"/data", source_data}};
    FileAcl source_acl;
    if (restrict_source_read) {
      source_acl.read.allow_dns = {
          pki.alice.certificate.subject().str()};  // bob locked out
    } else {
      source_acl.read = anyone;
    }
    source_config.initial_file_acls = {{"/data", source_acl}};
    source_config.initial_method_acls = {{"system", anyone}, {"file", anyone}};
    source = std::make_unique<ClarensServer>(std::move(source_config));
    source->start();

    // Destination site accepts the pull.
    dest_data = tmp.sub("dest-data");
    ClarensConfig dest_config;
    dest_config.trust = pki.trust;
    dest_config.file_roots = {{"/replica", dest_data}};
    FileAcl dest_acl;
    dest_acl.read = anyone;
    dest_acl.write = anyone;
    dest_config.initial_file_acls = {{"/replica", dest_acl}};
    dest_config.initial_method_acls = {{"system", anyone}, {"file", anyone},
                                       {"proxy", anyone}, {"transfer", anyone}};
    dest = std::make_unique<ClarensServer>(std::move(dest_config));
    dest->start();
  }

  ~TwoSites() {
    dest->stop();
    source->stop();
  }

  std::unique_ptr<client::ClarensClient> connect_bob(ClarensServer& server) {
    client::ClientOptions options;
    options.port = server.port();
    options.credential = pki.bob;
    options.trust = &pki.trust;
    auto client = std::make_unique<client::ClarensClient>(options);
    client->connect();
    client->authenticate();
    return client;
  }

  /// Bob stores a proxy on the destination (enabling delegation).
  void store_proxy(const std::string& password) {
    pki::Credential proxy = pki::issue_proxy(pki.bob);
    auto client = connect_bob(*dest);
    client->call("proxy.store", {rpc::Value(proxy.encode()),
                                rpc::Value(pki.bob.certificate.encode()),
                                rpc::Value(password)});
  }
};

TEST(Transfer, DelegatedPullBetweenServers) {
  TwoSites sites;
  sites.store_proxy("tr4nsfer");
  auto bob = sites.connect_bob(*sites.dest);

  std::string id =
      bob->call("transfer.start",
               {rpc::Value("http://127.0.0.1:" +
                           std::to_string(sites.source->port())),
                rpc::Value("/data/events.dat"),
                rpc::Value("/replica/events.dat"), rpc::Value("tr4nsfer")})
          .as_string();

  Transfer done = sites.dest->transfers().wait(
      id, pki::DistinguishedName::parse(sites.bob_dn));
  EXPECT_EQ(done.state, TransferState::Done) << done.error;
  EXPECT_EQ(done.bytes, 300000);
  EXPECT_TRUE(done.verified);

  // The replica is byte-identical (verify locally).
  std::ifstream a(sites.source_data + "/events.dat", std::ios::binary);
  std::ifstream b(sites.dest_data + "/events.dat", std::ios::binary);
  std::string content_a((std::istreambuf_iterator<char>(a)),
                        std::istreambuf_iterator<char>());
  std::string content_b((std::istreambuf_iterator<char>(b)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(crypto::Md5::hex(content_a), crypto::Md5::hex(content_b));

  // RPC status view agrees.
  rpc::Value status = bob->call("transfer.status", {rpc::Value(id)});
  EXPECT_EQ(status.at("state").as_string(), "DONE");
  EXPECT_TRUE(status.at("verified").as_bool());
  EXPECT_EQ(bob->call("transfer.list").as_array().size(), 1u);
}

TEST(Transfer, SourceAclEnforcedAgainstDelegatedIdentity) {
  TwoSites sites(/*restrict_source_read=*/true);
  sites.store_proxy("pw");
  auto bob = sites.connect_bob(*sites.dest);
  std::string id =
      bob->call("transfer.start",
               {rpc::Value("http://127.0.0.1:" +
                           std::to_string(sites.source->port())),
                rpc::Value("/data/events.dat"),
                rpc::Value("/replica/events.dat"), rpc::Value("pw")})
          .as_string();
  Transfer done = sites.dest->transfers().wait(
      id, pki::DistinguishedName::parse(sites.bob_dn));
  // The source denies bob, so the delegated pull fails — the destination
  // cannot launder access through its own identity.
  EXPECT_EQ(done.state, TransferState::Failed);
  EXPECT_NE(done.error.find("denied"), std::string::npos);
}

TEST(Transfer, WrongProxyPasswordRefusedAtStart) {
  TwoSites sites;
  sites.store_proxy("right");
  auto bob = sites.connect_bob(*sites.dest);
  EXPECT_THROW(
      bob->call("transfer.start",
               {rpc::Value("http://127.0.0.1:1"), rpc::Value("/data/x"),
                rpc::Value("/replica/x"), rpc::Value("wrong")}),
      rpc::Fault);
}

TEST(Transfer, MissingSourceFileFails) {
  TwoSites sites;
  sites.store_proxy("pw");
  auto bob = sites.connect_bob(*sites.dest);
  std::string id =
      bob->call("transfer.start",
               {rpc::Value("http://127.0.0.1:" +
                           std::to_string(sites.source->port())),
                rpc::Value("/data/ghost.dat"),
                rpc::Value("/replica/ghost.dat"), rpc::Value("pw")})
          .as_string();
  Transfer done = sites.dest->transfers().wait(
      id, pki::DistinguishedName::parse(sites.bob_dn));
  EXPECT_EQ(done.state, TransferState::Failed);
  EXPECT_FALSE(done.error.empty());
}

TEST(Transfer, OwnershipIsolation) {
  TwoSites sites;
  sites.store_proxy("pw");
  auto bob = sites.connect_bob(*sites.dest);
  std::string id =
      bob->call("transfer.start",
               {rpc::Value("http://127.0.0.1:" +
                           std::to_string(sites.source->port())),
                rpc::Value("/data/events.dat"),
                rpc::Value("/replica/events.dat"), rpc::Value("pw")})
          .as_string();
  EXPECT_THROW(
      sites.dest->transfers().status(
          id, sites.pki.alice.certificate.subject()),
      AccessError);
  sites.dest->transfers().wait(id, pki::DistinguishedName::parse(sites.bob_dn));
}

}  // namespace
}  // namespace clarens::core
