// Tests for the browser-portal serving path (§3): built-in page, static
// pages from portal_dir with content types, containment, and the
// JSON-RPC contract the portal JavaScript relies on.
#include <gtest/gtest.h>

#include <fstream>

#include "client/client.hpp"
#include "core/server.hpp"
#include "test_fixtures.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

ClarensConfig base_config(const TestPki& pki) {
  ClarensConfig config;
  config.trust = pki.trust;
  AclSpec anyone;
  anyone.allow_dns = {AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}};
  return config;
}

client::ClarensClient make_client(const TestPki& pki, std::uint16_t port) {
  client::ClientOptions options;
  options.port = port;
  options.trust = &pki.trust;
  return client::ClarensClient(options);
}

TEST(Portal, BuiltInPageWhenUnconfigured) {
  const TestPki& pki = TestPki::instance();
  ClarensServer server(base_config(pki));
  server.start();
  auto client = make_client(pki, server.port());
  client.connect();
  http::Response root = client.get("/");
  EXPECT_EQ(root.status, 200);
  EXPECT_NE(root.body.find("Clarens Web Service Framework"), std::string::npos);
  EXPECT_EQ(root.headers.get_or("Content-Type", ""), "text/html");
  // Without portal_dir, arbitrary portal paths are 404.
  EXPECT_EQ(client.get("/portal/app.js").status, 404);
  server.stop();
}

TEST(Portal, ServesStaticDirectoryWithContentTypes) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("portal");
  std::ofstream(dir + "/index.html") << "<html>grid portal</html>";
  std::ofstream(dir + "/portal.js") << "const portal = {};";
  std::ofstream(dir + "/portal.css") << "body {}";

  ClarensConfig config = base_config(pki);
  config.portal_dir = dir;
  ClarensServer server(std::move(config));
  server.start();
  auto client = make_client(pki, server.port());
  client.connect();

  http::Response index = client.get("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_EQ(index.body, "<html>grid portal</html>");
  EXPECT_EQ(index.headers.get_or("Content-Type", ""), "text/html");

  http::Response js = client.get("/portal/portal.js");
  EXPECT_EQ(js.status, 200);
  EXPECT_EQ(js.headers.get_or("Content-Type", ""), "application/javascript");
  http::Response css = client.get("/portal/portal.css");
  EXPECT_EQ(css.headers.get_or("Content-Type", ""), "text/css");

  EXPECT_EQ(client.get("/portal/missing.html").status, 404);
  EXPECT_EQ(client.get("/portal/../secret").status, 403);
  server.stop();
}

TEST(Portal, ShippedPortalAssetsServe) {
  // The repository's share/portal pages serve as-is. Resolve the
  // directory relative to the repo root or the build directory.
  std::string portal_dir;
  for (const char* candidate : {"share/portal", "../share/portal"}) {
    if (std::filesystem::exists(std::string(candidate) + "/index.html")) {
      portal_dir = candidate;
      break;
    }
  }
  if (portal_dir.empty()) {
    GTEST_SKIP() << "share/portal not found relative to the working directory";
  }
  const TestPki& pki = TestPki::instance();
  ClarensConfig config = base_config(pki);
  config.portal_dir = portal_dir;
  ClarensServer server(std::move(config));
  server.start();
  auto client = make_client(pki, server.port());
  client.connect();
  http::Response index = client.get("/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("Clarens Grid Portal"), std::string::npos);
  http::Response js = client.get("/portal/portal.js");
  EXPECT_EQ(js.status, 200);
  EXPECT_NE(js.body.find("X-Clarens-Session"), std::string::npos);
  server.stop();
}

// The portal's wire contract: JSON-RPC POST with the session header.
TEST(Portal, JsonRpcContractWorksUnauthenticatedForPublicMethods) {
  const TestPki& pki = TestPki::instance();
  ClarensServer server(base_config(pki));
  server.start();
  auto client = make_client(pki, server.port());
  client.connect();

  http::Request request;
  request.method = "POST";
  request.target = "/clarens";
  request.headers.set("Content-Type", "application/json");
  request.body = R"({"method":"system.ping","params":[],"id":1})";
  // Reuse the client's GET transport for a raw POST round-trip.
  net::TcpConnection conn =
      net::TcpConnection::connect("127.0.0.1", server.port());
  conn.write_all(request.serialize());
  http::ResponseParser parser;
  std::array<std::uint8_t, 8192> buf;
  std::optional<http::Response> response;
  while (!response) {
    std::size_t n = conn.read(buf);
    ASSERT_GT(n, 0u);
    parser.feed(std::span<const std::uint8_t>(buf.data(), n));
    response = parser.next();
  }
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"result\":\"pong\""), std::string::npos);
  EXPECT_NE(response->body.find("\"id\":1"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace clarens::core
