// Concurrency stress: many clients hammering one server across threads,
// mixed RPC + file traffic, connection churn, and overload shedding.
// These exercise the thread-per-connection server under the conditions
// the paper's §4 test creates (tens of concurrent keep-alive clients).
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "net/socket.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

core::ClarensConfig open_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"echo", anyone},
                                {"file", anyone}, {"message", anyone}};
  return config;
}

TEST(Stress, ManyThreadsSharedServer) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();

  constexpr int kThreads = 16;
  constexpr int kCallsPerThread = 200;
  std::atomic<int> failures{0};
  std::vector<util::Thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        client::ClientOptions options;
        options.port = server.port();
        options.credential = pki.alice;
        options.trust = &pki.trust;
        client::ClarensClient client(options);
        client.connect();
        client.authenticate();
        for (int i = 0; i < kCallsPerThread; ++i) {
          std::int64_t v = t * 1000 + i;
          if (client.call("echo.echo", {rpc::Value(v)}).as_int() != v) {
            failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // kThreads * (challenge + auth + calls)
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kThreads) * (kCallsPerThread + 2));
  server.stop();
}

TEST(Stress, ConnectionChurn) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();
  // One session, many short-lived connections (worst-case accept load).
  std::string session =
      server.direct_login(pki.alice.certificate.subject().str()).id;
  for (int i = 0; i < 100; ++i) {
    client::ClientOptions options;
    options.port = server.port();
    options.trust = &pki.trust;
    client::ClarensClient client(options);
    client.connect();
    client.set_session(session);
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
    client.close();
  }
  server.stop();
}

TEST(Stress, MixedRpcAndFileTraffic) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("files");
  {
    std::ofstream out(dir + "/shared.bin", std::ios::binary);
    for (int i = 0; i < 100000; ++i) out.put(static_cast<char>(i));
  }
  core::ClarensConfig config = open_config(pki);
  config.file_roots = {{"/data", dir}};
  core::FileAcl facl;
  facl.read.allow_dns = {core::AclSpec::kAnyone};
  config.initial_file_acls = {{"/data", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  std::atomic<int> failures{0};
  std::vector<util::Thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        client::ClientOptions options;
        options.port = server.port();
        options.credential = pki.bob;
        options.trust = &pki.trust;
        client::ClarensClient client(options);
        client.connect();
        client.authenticate();
        for (int i = 0; i < 50; ++i) {
          if (t % 2 == 0) {
            auto bytes = client.file_read("/data/shared.bin", i * 100, 100);
            if (bytes.size() != 100) failures.fetch_add(1);
          } else {
            auto body = client.get("/data/shared.bin", i * 100, 100).body;
            if (body.size() != 100) failures.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
}

TEST(Stress, OverloadShedsWith503) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config = open_config(pki);
  config.max_connections = 4;
  core::ClarensServer server(std::move(config));
  server.start();

  // Saturate the connection budget with idle keep-alive connections.
  std::vector<net::TcpConnection> held;
  for (int i = 0; i < 4; ++i) {
    held.push_back(net::TcpConnection::connect("127.0.0.1", server.port()));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The next connection is refused politely.
  net::TcpConnection extra =
      net::TcpConnection::connect("127.0.0.1", server.port());
  std::string got;
  std::array<std::uint8_t, 1024> buf;
  for (;;) {
    std::size_t n = extra.read(buf);
    if (n == 0) break;
    got.append(buf.begin(), buf.begin() + n);
  }
  EXPECT_NE(got.find("503"), std::string::npos);

  for (auto& conn : held) conn.close();
  server.stop();
}

TEST(Stress, ConcurrentMessagingIsLossless) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(open_config(pki));
  server.start();

  constexpr int kSenders = 8;
  constexpr int kPerSender = 50;
  std::string inbox_dn = pki.alice.certificate.subject().str();
  std::vector<util::Thread> threads;
  for (int t = 0; t < kSenders; ++t) {
    threads.emplace_back([&, t] {
      client::ClientOptions options;
      options.port = server.port();
      options.credential = pki.bob;
      options.trust = &pki.trust;
      client::ClarensClient client(options);
      client.connect();
      client.authenticate();
      for (int i = 0; i < kPerSender; ++i) {
        client.call("message.send",
                    {rpc::Value(inbox_dn), rpc::Value("s"),
                     rpc::Value(std::to_string(t * 1000 + i))});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(server.messages().pending(inbox_dn),
            static_cast<std::size_t>(kSenders * kPerSender));
  auto all = server.messages().poll(inbox_dn, kSenders * kPerSender);
  std::set<std::string> bodies;
  for (const auto& m : all) bodies.insert(m.body);
  EXPECT_EQ(bodies.size(), static_cast<std::size_t>(kSenders * kPerSender));
  server.stop();
}

}  // namespace
}  // namespace clarens
