// Unit tests for the embedded store: CRUD, prefix scans, persistence
// across reopen, torn-tail crash recovery, and snapshot compaction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::db {
namespace {

using clarens::testing::TempDir;

TEST(Store, InMemoryCrud) {
  Store store;
  EXPECT_FALSE(store.persistent());
  store.put("t", "k1", "v1");
  store.put("t", "k2", "v2");
  EXPECT_EQ(store.get("t", "k1"), "v1");
  EXPECT_FALSE(store.get("t", "missing").has_value());
  EXPECT_FALSE(store.get("other", "k1").has_value());
  EXPECT_TRUE(store.contains("t", "k2"));
  EXPECT_EQ(store.size("t"), 2u);
  EXPECT_TRUE(store.erase("t", "k1"));
  EXPECT_FALSE(store.erase("t", "k1"));  // second erase reports absence
  EXPECT_EQ(store.size("t"), 1u);
}

TEST(Store, OverwriteReplacesValue) {
  Store store;
  store.put("t", "k", "old");
  store.put("t", "k", "new");
  EXPECT_EQ(store.get("t", "k"), "new");
  EXPECT_EQ(store.size("t"), 1u);
}

TEST(Store, KeysSortedAndPrefixScan) {
  Store store;
  store.put("t", "b", "2");
  store.put("t", "a", "1");
  store.put("t", "ab", "3");
  store.put("t", "c", "4");
  EXPECT_EQ(store.keys("t"), (std::vector<std::string>{"a", "ab", "b", "c"}));
  auto scan = store.scan_prefix("t", "a");
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_EQ(scan[0].first, "a");
  EXPECT_EQ(scan[1].first, "ab");
  EXPECT_TRUE(store.scan_prefix("t", "zzz").empty());
}

TEST(Store, DropTable) {
  Store store;
  store.put("a", "k", "v");
  store.put("b", "k", "v");
  EXPECT_EQ(store.drop_table("a"), 1u);
  EXPECT_EQ(store.drop_table("a"), 0u);
  EXPECT_EQ(store.tables(), (std::vector<std::string>{"b"}));
}

TEST(Store, BinarySafeKeysAndValues) {
  Store store;
  std::string key("k\0ey", 4);
  std::string value("v\0al\xff", 5);
  store.put("t", key, value);
  EXPECT_EQ(store.get("t", key), value);
}

TEST(Store, PersistsAcrossReopen) {
  TempDir tmp;
  {
    Store store(tmp.path());
    EXPECT_TRUE(store.persistent());
    store.put("sessions", "s1", "alice");
    store.put("sessions", "s2", "bob");
    store.erase("sessions", "s1");
  }
  {
    Store store(tmp.path());
    EXPECT_FALSE(store.get("sessions", "s1").has_value());
    EXPECT_EQ(store.get("sessions", "s2"), "bob");
  }
}

TEST(Store, TornTailIsDiscarded) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "complete", "yes");
  }
  // Simulate a crash mid-write: append half a record to the journal.
  {
    std::ofstream journal(tmp.path() + "/journal.log",
                          std::ios::binary | std::ios::app);
    journal.write("P\x05\x00\x00", 4);  // truncated header
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "complete"), "yes");
  // The store remains writable after recovery.
  store.put("t", "after", "crash");
  EXPECT_EQ(store.get("t", "after"), "crash");
}

TEST(Store, CorruptChecksumTailDiscarded) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "good", "1");
    store.put("t", "bad", "2");
  }
  // Flip a byte in the final record's value region.
  std::string path = tmp.path() + "/journal.log";
  auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<long>(size) - 6);
    f.put('\x7e');
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "good"), "1");
  EXPECT_FALSE(store.get("t", "bad").has_value());
}

TEST(Store, CompactionPreservesContentAndShrinksJournal) {
  TempDir tmp;
  {
    Store store(tmp.path());
    // Many overwrites bloat the journal with dead records.
    for (int i = 0; i < 500; ++i) {
      store.put("t", "hot", "value-" + std::to_string(i));
    }
    store.put("t", "cold", "stable");
    auto before = std::filesystem::file_size(tmp.path() + "/journal.log");
    store.compact();
    auto after = std::filesystem::file_size(tmp.path() + "/journal.log");
    EXPECT_EQ(after, 0u);
    EXPECT_GT(before, 1000u);
    EXPECT_EQ(store.get("t", "hot"), "value-499");
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "hot"), "value-499");
  EXPECT_EQ(store.get("t", "cold"), "stable");
}

TEST(Store, WritesAfterCompactionSurviveReopen) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "a", "1");
    store.compact();
    store.put("t", "b", "2");
    store.erase("t", "a");
  }
  Store store(tmp.path());
  EXPECT_FALSE(store.get("t", "a").has_value());
  EXPECT_EQ(store.get("t", "b"), "2");
}

TEST(Store, ConcurrentWritersDontCorrupt) {
  Store store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string(t) + "-" + std::to_string(i);
        store.put("t", key, "v");
        EXPECT_EQ(store.get("t", key), "v");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size("t"), 8u * 500u);
}

}  // namespace
}  // namespace clarens::db
