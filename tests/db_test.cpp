// Unit tests for the embedded store: CRUD, prefix scans, persistence
// across reopen, torn-tail crash recovery, and snapshot compaction.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::db {
namespace {

using clarens::testing::TempDir;

TEST(Store, InMemoryCrud) {
  Store store;
  EXPECT_FALSE(store.persistent());
  store.put("t", "k1", "v1");
  store.put("t", "k2", "v2");
  EXPECT_EQ(store.get("t", "k1"), "v1");
  EXPECT_FALSE(store.get("t", "missing").has_value());
  EXPECT_FALSE(store.get("other", "k1").has_value());
  EXPECT_TRUE(store.contains("t", "k2"));
  EXPECT_EQ(store.size("t"), 2u);
  EXPECT_TRUE(store.erase("t", "k1"));
  EXPECT_FALSE(store.erase("t", "k1"));  // second erase reports absence
  EXPECT_EQ(store.size("t"), 1u);
}

TEST(Store, OverwriteReplacesValue) {
  Store store;
  store.put("t", "k", "old");
  store.put("t", "k", "new");
  EXPECT_EQ(store.get("t", "k"), "new");
  EXPECT_EQ(store.size("t"), 1u);
}

TEST(Store, KeysSortedAndPrefixScan) {
  Store store;
  store.put("t", "b", "2");
  store.put("t", "a", "1");
  store.put("t", "ab", "3");
  store.put("t", "c", "4");
  EXPECT_EQ(store.keys("t"), (std::vector<std::string>{"a", "ab", "b", "c"}));
  auto scan = store.scan_prefix("t", "a");
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_EQ(scan[0].first, "a");
  EXPECT_EQ(scan[1].first, "ab");
  EXPECT_TRUE(store.scan_prefix("t", "zzz").empty());
}

TEST(Store, DropTable) {
  Store store;
  store.put("a", "k", "v");
  store.put("b", "k", "v");
  EXPECT_EQ(store.drop_table("a"), 1u);
  EXPECT_EQ(store.drop_table("a"), 0u);
  EXPECT_EQ(store.tables(), (std::vector<std::string>{"b"}));
}

TEST(Store, BinarySafeKeysAndValues) {
  Store store;
  std::string key("k\0ey", 4);
  std::string value("v\0al\xff", 5);
  store.put("t", key, value);
  EXPECT_EQ(store.get("t", key), value);
}

TEST(Store, PersistsAcrossReopen) {
  TempDir tmp;
  {
    Store store(tmp.path());
    EXPECT_TRUE(store.persistent());
    store.put("sessions", "s1", "alice");
    store.put("sessions", "s2", "bob");
    store.erase("sessions", "s1");
  }
  {
    Store store(tmp.path());
    EXPECT_FALSE(store.get("sessions", "s1").has_value());
    EXPECT_EQ(store.get("sessions", "s2"), "bob");
  }
}

TEST(Store, TornTailIsDiscarded) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "complete", "yes");
  }
  // Simulate a crash mid-write: append half a record to the journal.
  {
    std::ofstream journal(tmp.path() + "/journal.log",
                          std::ios::binary | std::ios::app);
    journal.write("P\x05\x00\x00", 4);  // truncated header
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "complete"), "yes");
  // The store remains writable after recovery.
  store.put("t", "after", "crash");
  EXPECT_EQ(store.get("t", "after"), "crash");
}

TEST(Store, CorruptChecksumTailDiscarded) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "good", "1");
    store.put("t", "bad", "2");
  }
  // Flip a byte in the final record's value region.
  std::string path = tmp.path() + "/journal.log";
  auto size = std::filesystem::file_size(path);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<long>(size) - 6);
    f.put('\x7e');
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "good"), "1");
  EXPECT_FALSE(store.get("t", "bad").has_value());
}

TEST(Store, CompactionPreservesContentAndShrinksJournal) {
  TempDir tmp;
  {
    Store store(tmp.path());
    // Many overwrites bloat the journal with dead records.
    for (int i = 0; i < 500; ++i) {
      store.put("t", "hot", "value-" + std::to_string(i));
    }
    store.put("t", "cold", "stable");
    store.sync();  // drain the commit queue before measuring the journal
    auto before = std::filesystem::file_size(tmp.path() + "/journal.log");
    store.compact();
    auto after = std::filesystem::file_size(tmp.path() + "/journal.log");
    EXPECT_EQ(after, 0u);
    EXPECT_GT(before, 1000u);
    EXPECT_EQ(store.get("t", "hot"), "value-499");
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "hot"), "value-499");
  EXPECT_EQ(store.get("t", "cold"), "stable");
}

TEST(Store, WritesAfterCompactionSurviveReopen) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "a", "1");
    store.compact();
    store.put("t", "b", "2");
    store.erase("t", "a");
  }
  Store store(tmp.path());
  EXPECT_FALSE(store.get("t", "a").has_value());
  EXPECT_EQ(store.get("t", "b"), "2");
}

TEST(Store, ConcurrentWritersDontCorrupt) {
  Store store;
  std::vector<util::Thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "k" + std::to_string(t) + "-" + std::to_string(i);
        store.put("t", key, "v");
        EXPECT_EQ(store.get("t", key), "v");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size("t"), 8u * 500u);
}

TEST(Store, GetSharedSurvivesOverwriteAndErase) {
  Store store;
  store.put("t", "k", "original");
  auto snapshot = store.get_shared("t", "k");
  ASSERT_TRUE(snapshot);
  store.put("t", "k", "replaced");
  store.erase("t", "k");
  // The record handed out is immutable: later mutations never touch it.
  EXPECT_EQ(*snapshot, "original");
  EXPECT_FALSE(store.get_shared("t", "missing"));
}

TEST(Store, SyncMakesDataDurableAcrossReopen) {
  // Satellite: sync() is a real durability barrier. Copy the live
  // directory right after sync() returns — before the store's destructor
  // can flush anything — and recover from the copy: every record written
  // before the sync must be there.
  TempDir tmp;
  Store store(tmp.path());
  store.put("t", "synced", "yes");
  store.put("t", "synced2", "also");
  store.sync();
  std::filesystem::copy(tmp.path(), tmp.path() + "_snap",
                        std::filesystem::copy_options::recursive);
  Store recovered(tmp.path() + "_snap");
  EXPECT_EQ(recovered.get("t", "synced"), "yes");
  EXPECT_EQ(recovered.get("t", "synced2"), "also");
}

TEST(Store, PutDurableVisibleAfterCopyOfLiveDirectory) {
  TempDir tmp;
  Store store(tmp.path());
  store.put_durable("t", "k", "durable-value");
  // put_durable acked => the record is on disk now, before destruction.
  std::filesystem::copy(tmp.path(), tmp.path() + "_snap",
                        std::filesystem::copy_options::recursive);
  Store recovered(tmp.path() + "_snap");
  EXPECT_EQ(recovered.get("t", "k"), "durable-value");
}

TEST(Store, EraseDurableVisibleAfterCopyOfLiveDirectory) {
  TempDir tmp;
  Store store(tmp.path());
  store.put_durable("t", "k", "v");
  EXPECT_TRUE(store.erase_durable("t", "k"));
  EXPECT_FALSE(store.erase_durable("t", "k"));
  std::filesystem::copy(tmp.path(), tmp.path() + "_snap",
                        std::filesystem::copy_options::recursive);
  Store recovered(tmp.path() + "_snap");
  EXPECT_FALSE(recovered.get("t", "k").has_value());
}

TEST(Store, ShardedViewsMergeSorted) {
  // Exercise the merge paths with enough keys that every shard of a
  // 16-way store holds several.
  StoreOptions options;
  options.shards = 16;
  TempDir tmp;
  Store store(tmp.path(), options);
  std::vector<std::string> expected;
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key-%03d", i);
    store.put("t", buf, std::to_string(i));
    expected.push_back(buf);
  }
  store.put("other", "x", "y");
  EXPECT_EQ(store.keys("t"), expected);  // sorted merge across shards
  auto scan = store.scan_prefix("t", "key-01");
  ASSERT_EQ(scan.size(), 10u);
  EXPECT_EQ(scan.front().first, "key-010");
  EXPECT_EQ(scan.back().first, "key-019");
  EXPECT_EQ(scan.back().second, "19");
  EXPECT_EQ(store.tables(), (std::vector<std::string>{"other", "t"}));
  EXPECT_EQ(store.size("t"), 200u);
  EXPECT_EQ(store.drop_table("t"), 200u);
  EXPECT_EQ(store.tables(), (std::vector<std::string>{"other"}));
}

TEST(Store, SingleShardStoreStillCorrect) {
  StoreOptions options;
  options.shards = 1;
  options.group_commit = false;  // per-op commit ablation path
  TempDir tmp;
  {
    Store store(tmp.path(), options);
    store.put("t", "a", "1");
    store.put("t", "b", "2");
    EXPECT_TRUE(store.erase("t", "a"));
  }
  Store reopened(tmp.path(), options);
  EXPECT_FALSE(reopened.get("t", "a").has_value());
  EXPECT_EQ(reopened.get("t", "b"), "2");
}

TEST(Store, ConcurrentDurableWritersShareGroups) {
  TempDir tmp;
  StoreOptions options;
  options.commit_interval_us = 100;
  Store store(tmp.path(), options);
  std::vector<util::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 50; ++i) {
        std::string key = "d" + std::to_string(t) + "-" + std::to_string(i);
        store.put_durable("t", key, "v");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.size("t"), 4u * 50u);
  std::filesystem::copy(tmp.path(), tmp.path() + "_snap",
                        std::filesystem::copy_options::recursive);
  Store recovered(tmp.path() + "_snap");
  EXPECT_EQ(recovered.size("t"), 4u * 50u);
}

TEST(Store, ConcurrentWritersWithCompaction) {
  TempDir tmp;
  StoreOptions options;
  options.compact_threshold = 16 * 1024;  // force frequent auto-checkpoints
  Store store(tmp.path(), options);
  std::vector<util::Thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 300; ++i) {
        std::string key = "k" + std::to_string(t) + "-" + std::to_string(i);
        store.put("t", key, std::string(64, 'x'));
        EXPECT_TRUE(store.get_shared("t", key));
      }
    });
  }
  for (auto& t : threads) t.join();
  store.compact();
  EXPECT_EQ(store.size("t"), 4u * 300u);
}

TEST(Store, ReopenAfterAutoCompaction) {
  TempDir tmp;
  StoreOptions options;
  options.compact_threshold = 8 * 1024;
  {
    Store store(tmp.path(), options);
    for (int i = 0; i < 200; ++i) {
      store.put("t", "hot", std::string(128, 'a' + (i % 26)));
    }
    store.put("t", "last", "value");
  }
  Store reopened(tmp.path());
  EXPECT_EQ(reopened.get("t", "last"), "value");
  EXPECT_TRUE(reopened.get("t", "hot").has_value());
}

TEST(Store, LeftoverJournalOldIsReplayedAndFolded) {
  // Simulate a checkpoint that crashed between the snapshot rename and
  // the journal.old unlink: recovery must replay .old before .log and
  // fold everything so the stale file cannot survive a second crash.
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "a", "1");
  }
  std::filesystem::rename(tmp.path() + "/journal.log",
                          tmp.path() + "/journal.old");
  {
    std::ofstream journal(tmp.path() + "/journal.log", std::ios::binary);
    (void)journal;  // empty fresh journal, as rotation leaves it
  }
  {
    Store store(tmp.path());
    EXPECT_EQ(store.get("t", "a"), "1");
  }
  EXPECT_FALSE(std::filesystem::exists(tmp.path() + "/journal.old"));
  EXPECT_TRUE(std::filesystem::exists(tmp.path() + "/snapshot.db"));
}

TEST(Store, StaleSnapshotTmpIsIgnored) {
  TempDir tmp;
  {
    Store store(tmp.path());
    store.put("t", "k", "v");
  }
  {
    std::ofstream f(tmp.path() + "/snapshot.tmp", std::ios::binary);
    f << "half-written garbage";
  }
  Store store(tmp.path());
  EXPECT_EQ(store.get("t", "k"), "v");
  EXPECT_FALSE(std::filesystem::exists(tmp.path() + "/snapshot.tmp"));
}

TEST(Store, OperationsCounterCounts) {
  Store store;
  auto base = store.operations();
  store.put("t", "k", "v");
  store.get("t", "k");
  store.contains("t", "k");
  EXPECT_EQ(store.operations(), base + 3);
}

}  // namespace
}  // namespace clarens::db
