// Tests for the HeavyGrid (GT3-model) baseline: functional correctness of
// the per-call handshake path, and the structural property behind the
// paper's footnote-4 comparison — per-call cost dominated by setup.
#include <gtest/gtest.h>

#include "baseline/heavygrid.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::baseline {
namespace {

using clarens::testing::TestPki;

HeavyGridOptions options_with(const TestPki& pki) {
  HeavyGridOptions options;
  options.credential = pki.server;
  options.trust = pki.trust;
  options.gridmap = {
      {pki.alice.certificate.subject().str(), "alice"},
      {pki.bob.certificate.subject().str(), "bob"},
  };
  return options;
}

TEST(HeavyGrid, TrivialEchoCallSucceeds) {
  const TestPki& pki = TestPki::instance();
  HeavyGridServer server(options_with(pki));
  server.start();

  HeavyGridClient client("127.0.0.1", server.port(), pki.alice, pki.trust);
  rpc::Value result = client.call("echo", {rpc::Value("ping")});
  EXPECT_EQ(result.as_string(), "ping");
  EXPECT_EQ(server.calls_served(), 1u);
  server.stop();
}

TEST(HeavyGrid, EachCallIsIndependent) {
  const TestPki& pki = TestPki::instance();
  HeavyGridServer server(options_with(pki));
  server.start();
  HeavyGridClient client("127.0.0.1", server.port(), pki.alice, pki.trust);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.call("echo", {rpc::Value(i)}).as_int(), i);
  }
  EXPECT_EQ(server.calls_served(), 3u);
  server.stop();
}

TEST(HeavyGrid, IdentityNotInGridmapRefused) {
  const TestPki& pki = TestPki::instance();
  HeavyGridOptions options = options_with(pki);
  options.gridmap = {{pki.bob.certificate.subject().str(), "bob"}};
  HeavyGridServer server(std::move(options));
  server.start();
  HeavyGridClient client("127.0.0.1", server.port(), pki.alice, pki.trust);
  try {
    client.call("echo", {rpc::Value(1)});
    FAIL() << "expected access fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAccess);
  }
  server.stop();
}

TEST(HeavyGrid, UntrustedClientRejectedAtHandshake) {
  const TestPki& pki = TestPki::instance();
  HeavyGridServer server(options_with(pki));
  server.start();
  auto rogue_ca = pki::CertificateAuthority::create(
      pki::DistinguishedName::parse("/O=rogue/CN=CA"), 512);
  auto mallory = rogue_ca.issue_user(
      pki::DistinguishedName::parse("/O=rogue/CN=Mallory"));
  HeavyGridClient client("127.0.0.1", server.port(), mallory, pki.trust);
  EXPECT_THROW(client.call("echo", {rpc::Value(1)}), Error);
  server.stop();
}

TEST(HeavyGrid, UnknownOperationFaults) {
  const TestPki& pki = TestPki::instance();
  HeavyGridServer server(options_with(pki));
  server.start();
  HeavyGridClient client("127.0.0.1", server.port(), pki.alice, pki.trust);
  try {
    client.call("launch_missiles", {});
    FAIL();
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultBadMethod);
  }
  server.stop();
}

}  // namespace
}  // namespace clarens::baseline
