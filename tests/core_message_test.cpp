// Unit + integration tests for the message service (the paper's §6
// asynchronous bi-directional communication for NAT-ed jobs).
#include <gtest/gtest.h>

#include "client/client.hpp"
#include "core/message_service.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

const char* kUserDn = "/O=g/CN=user";
const char* kJobDn = "/O=g/CN=job";

TEST(Messages, SendAndPollInOrder) {
  db::Store store;
  MessageService messages(store);
  messages.send(kUserDn, kJobDn, "cmd", "start");
  messages.send(kUserDn, kJobDn, "cmd", "status?");
  EXPECT_EQ(messages.pending(kJobDn), 2u);

  auto inbox = messages.poll(kJobDn);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].body, "start");       // oldest first
  EXPECT_EQ(inbox[1].body, "status?");
  EXPECT_EQ(inbox[0].from, kUserDn);
  EXPECT_LT(inbox[0].id, inbox[1].id);
  EXPECT_GT(inbox[0].sent, 0);
  // Poll drains.
  EXPECT_EQ(messages.pending(kJobDn), 0u);
  EXPECT_TRUE(messages.poll(kJobDn).empty());
}

TEST(Messages, PeekDoesNotDrain) {
  db::Store store;
  MessageService messages(store);
  messages.send(kUserDn, kJobDn, "s", "b");
  EXPECT_EQ(messages.peek(kJobDn).size(), 1u);
  EXPECT_EQ(messages.pending(kJobDn), 1u);
}

TEST(Messages, PollMaxLimitsBatch) {
  db::Store store;
  MessageService messages(store);
  for (int i = 0; i < 10; ++i) {
    messages.send(kUserDn, kJobDn, "s", std::to_string(i));
  }
  auto first = messages.poll(kJobDn, 3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[2].body, "2");
  auto rest = messages.poll(kJobDn, 100);
  EXPECT_EQ(rest.size(), 7u);
  EXPECT_EQ(rest[0].body, "3");
}

TEST(Messages, MailboxesAreIsolated) {
  db::Store store;
  MessageService messages(store);
  messages.send(kUserDn, kJobDn, "s", "for job");
  messages.send(kJobDn, kUserDn, "s", "for user");
  auto job_inbox = messages.poll(kJobDn);
  ASSERT_EQ(job_inbox.size(), 1u);
  EXPECT_EQ(job_inbox[0].body, "for job");
  auto user_inbox = messages.poll(kUserDn);
  ASSERT_EQ(user_inbox.size(), 1u);
  EXPECT_EQ(user_inbox[0].body, "for user");
}

TEST(Messages, MailboxBoundDropsOldest) {
  db::Store store;
  MessageService messages(store, /*max_mailbox=*/5);
  for (int i = 0; i < 8; ++i) {
    messages.send(kUserDn, kJobDn, "s", std::to_string(i));
  }
  auto inbox = messages.poll(kJobDn, 100);
  ASSERT_EQ(inbox.size(), 5u);
  EXPECT_EQ(inbox[0].body, "3");  // 0..2 were dropped
  EXPECT_EQ(inbox[4].body, "7");
}

TEST(Messages, ChannelsFanOutToSubscribers) {
  db::Store store;
  MessageService messages(store);
  messages.subscribe("jobs.status", "/O=g/CN=a");
  messages.subscribe("jobs.status", "/O=g/CN=b");
  messages.subscribe("other", "/O=g/CN=c");
  EXPECT_EQ(messages.subscribers("jobs.status").size(), 2u);

  std::size_t delivered =
      messages.publish(kJobDn, "jobs.status", "done", "exit 0");
  EXPECT_EQ(delivered, 2u);
  auto a = messages.poll("/O=g/CN=a");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].channel, "jobs.status");
  EXPECT_EQ(a[0].from, kJobDn);
  EXPECT_EQ(messages.pending("/O=g/CN=b"), 1u);
  EXPECT_EQ(messages.pending("/O=g/CN=c"), 0u);

  messages.unsubscribe("jobs.status", "/O=g/CN=b");
  EXPECT_EQ(messages.publish(kJobDn, "jobs.status", "s", "x"), 1u);
}

TEST(Messages, ValidationErrors) {
  db::Store store;
  MessageService messages(store);
  EXPECT_THROW(messages.send(kUserDn, "", "s", "b"), ParseError);
  EXPECT_THROW(messages.subscribe("", kUserDn), ParseError);
  EXPECT_EQ(messages.publish(kUserDn, "empty-channel", "s", "b"), 0u);
}

TEST(Messages, SurviveStoreReopen) {
  TempDir tmp;
  {
    db::Store store(tmp.path());
    MessageService messages(store);
    messages.send(kUserDn, kJobDn, "persist", "me");
  }
  db::Store store(tmp.path());
  MessageService messages(store);
  auto inbox = messages.poll(kJobDn);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].subject, "persist");
}

// End-to-end: a "user" and a NAT-ed "job" converse through the server,
// both acting purely as HTTP clients (the paper's motivation).
TEST(Messages, UserAndJobConverseOverRpc) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"message", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();

  auto connect = [&](const pki::Credential& cred) {
    client::ClientOptions options;
    options.port = server.port();
    options.credential = cred;
    options.trust = &pki.trust;
    auto c = std::make_unique<client::ClarensClient>(options);
    c->connect();
    c->authenticate();
    return c;
  };
  auto user = connect(pki.alice);
  auto job = connect(pki.bob);
  std::string alice_dn = pki.alice.certificate.subject().str();
  std::string bob_dn = pki.bob.certificate.subject().str();

  // User instructs the job; the job polls, works, replies.
  user->call("message.send",
             {rpc::Value(bob_dn), rpc::Value("control"),
              rpc::Value("dump histogram 42")});
  rpc::Value inbox = job->call("message.poll");
  ASSERT_EQ(inbox.as_array().size(), 1u);
  const rpc::Value& order = inbox.as_array()[0];
  EXPECT_EQ(order.at("from").as_string(), alice_dn);
  EXPECT_EQ(order.at("body").as_string(), "dump histogram 42");

  job->call("message.send", {rpc::Value(order.at("from").as_string()),
                             rpc::Value("re: control"),
                             rpc::Value("histogram 42 attached")});
  EXPECT_EQ(user->call("message.pending").as_int(), 1);
  rpc::Value reply = user->call("message.poll", {rpc::Value(10)});
  EXPECT_EQ(reply.as_array()[0].at("body").as_string(),
            "histogram 42 attached");

  // Channel: the job publishes monitoring data; the user subscribed.
  user->call("message.subscribe", {rpc::Value("monitor")});
  rpc::Value delivered = job->call(
      "message.publish", {rpc::Value("monitor"), rpc::Value("load"),
                          rpc::Value("cpu=0.93")});
  EXPECT_EQ(delivered.as_int(), 1);
  rpc::Value monitor = user->call("message.poll");
  EXPECT_EQ(monitor.as_array()[0].at("channel").as_string(), "monitor");
  server.stop();
}

}  // namespace
}  // namespace clarens::core
