// Tests for the mass-storage simulation and the SRM request lifecycle
// (paper §6 future work: SRM interface to dCache-like storage), plus the
// end-to-end flow: srm.prepare_to_get -> poll -> read staged copy via
// the file service -> srm.release.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "rpc/fault.hpp"
#include "storage/mass_storage.hpp"
#include "storage/srm.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::storage {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

struct StorageFixture : ::testing::Test {
  TempDir tmp;
  MassStorage storage{tmp.sub("tape"), tmp.sub("cache"),
                      /*cache_capacity=*/1000};
};

TEST_F(StorageFixture, PutExistsSizeListRemove) {
  storage.put("/run1/a.evt", "aaaa");
  storage.put("/run1/b.evt", "bbbbbbbb");
  storage.put("/run2/c.evt", "cc");
  EXPECT_TRUE(storage.exists("/run1/a.evt"));
  EXPECT_FALSE(storage.exists("/run1/ghost"));
  EXPECT_EQ(storage.size("/run1/b.evt"), 8);
  EXPECT_THROW(storage.size("/nope"), NotFoundError);
  EXPECT_EQ(storage.list("/run1"),
            (std::vector<std::string>{"/run1/a.evt", "/run1/b.evt"}));
  EXPECT_EQ(storage.list("/").size(), 3u);
  storage.remove("/run1/a.evt");
  EXPECT_FALSE(storage.exists("/run1/a.evt"));
  EXPECT_THROW(storage.remove("/run1/a.evt"), NotFoundError);
}

TEST_F(StorageFixture, PathValidation) {
  EXPECT_THROW(storage.put("relative", "x"), ParseError);
  EXPECT_THROW(storage.put("/a/../b", "x"), AccessError);
}

TEST_F(StorageFixture, StagePinPreventsEviction) {
  storage.put("/big1", std::string(400, 'x'));
  storage.put("/big2", std::string(400, 'y'));
  storage.put("/big3", std::string(400, 'z'));

  std::string c1 = storage.stage_and_pin("/big1");
  EXPECT_TRUE(storage.is_cached("/big1"));
  EXPECT_EQ(storage.cache_used(), 400);
  // Staged copy has the right content.
  std::ifstream in(c1, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, std::string(400, 'x'));

  storage.stage_and_pin("/big2");
  // Third file does not fit with both pinned.
  EXPECT_THROW(storage.stage_and_pin("/big3"), SystemError);
  // Releasing big1 lets big3 in by evicting it (LRU unpinned).
  storage.unpin("/big1");
  storage.stage_and_pin("/big3");
  EXPECT_FALSE(storage.is_cached("/big1"));
  EXPECT_EQ(storage.eviction_count(), 1u);
}

TEST_F(StorageFixture, CacheHitsCountedAndPinned) {
  storage.put("/f", "data");
  storage.stage_and_pin("/f");
  storage.stage_and_pin("/f");  // hit
  EXPECT_EQ(storage.stage_count(), 1u);
  EXPECT_EQ(storage.hit_count(), 1u);
  storage.unpin("/f");
  storage.unpin("/f");
  EXPECT_THROW(storage.unpin("/ghost"), NotFoundError);
}

TEST_F(StorageFixture, OverwriteInvalidatesCache) {
  storage.put("/f", "old");
  storage.stage_and_pin("/f");
  storage.unpin("/f");
  storage.put("/f", "new!");
  EXPECT_FALSE(storage.is_cached("/f"));
  std::string staged = storage.stage_and_pin("/f");
  std::ifstream in(staged, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "new!");
}

TEST_F(StorageFixture, FileLargerThanCacheRefused) {
  storage.put("/huge", std::string(2000, 'x'));
  EXPECT_THROW(storage.stage_and_pin("/huge"), SystemError);
}

TEST(Srm, RequestLifecycle) {
  TempDir tmp;
  MassStorage storage(tmp.sub("tape"), tmp.sub("cache"), 1 << 20);
  SrmService srm(storage);
  srm.put("/exp/events.dat", "event data");

  std::string token = srm.prepare_to_get("/exp/events.dat");
  SrmRequest done = srm.wait(token);
  EXPECT_EQ(done.state, SrmState::Ready);
  EXPECT_FALSE(done.cache_file.empty());
  EXPECT_TRUE(storage.is_cached("/exp/events.dat"));

  srm.release(token);
  EXPECT_EQ(srm.status(token).state, SrmState::Released);
  srm.release(token);  // idempotent
  // Pin dropped: the cached copy is now evictable.
  storage.put("/filler", std::string((1 << 20) - 5, 'f'));
  storage.stage_and_pin("/filler");
  EXPECT_FALSE(storage.is_cached("/exp/events.dat"));
}

TEST(Srm, MissingFileFails) {
  TempDir tmp;
  MassStorage storage(tmp.sub("tape"), tmp.sub("cache"), 1 << 20);
  SrmService srm(storage);
  std::string token = srm.prepare_to_get("/no/such/file");
  SrmRequest done = srm.wait(token);
  EXPECT_EQ(done.state, SrmState::Failed);
  EXPECT_FALSE(done.error.empty());
  EXPECT_THROW(srm.release(token), Error);
  EXPECT_THROW(srm.status("bogus-token"), NotFoundError);
}

TEST(Srm, SimulatedTapeLatencyIsAsync) {
  TempDir tmp;
  // 10 KB at 100 KB/s ≈ 100 ms staging time.
  MassStorage storage(tmp.sub("tape"), tmp.sub("cache"), 1 << 20,
                      /*stage_bytes_per_second=*/100 * 1024);
  SrmService srm(storage);
  srm.put("/slow.dat", std::string(10 * 1024, 's'));
  std::string token = srm.prepare_to_get("/slow.dat");
  // Immediately after the request the file cannot be ready yet.
  SrmState early = srm.status(token).state;
  EXPECT_TRUE(early == SrmState::Queued || early == SrmState::Staging);
  SrmRequest done = srm.wait(token, 5000);
  EXPECT_EQ(done.state, SrmState::Ready);
}

TEST(Srm, ConcurrentRequestsForSameFileShareOneStage) {
  TempDir tmp;
  MassStorage storage(tmp.sub("tape"), tmp.sub("cache"), 1 << 20);
  SrmService srm(storage, /*workers=*/4);
  srm.put("/shared.dat", "shared");
  std::vector<std::string> tokens;
  for (int i = 0; i < 6; ++i) tokens.push_back(srm.prepare_to_get("/shared.dat"));
  for (const auto& token : tokens) {
    EXPECT_EQ(srm.wait(token).state, SrmState::Ready);
  }
  // One copy staged; the rest were hits (pins stack).
  EXPECT_EQ(storage.stage_count(), 1u);
  EXPECT_EQ(storage.hit_count(), 5u);
  for (const auto& token : tokens) srm.release(token);
}

// End-to-end over RPC: stage, read the cached copy via file.read, release.
TEST(Srm, EndToEndThroughClarens) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  MassStorage storage(tmp.sub("tape"), tmp.sub("cache"), 1 << 20);
  SrmService srm(storage);
  srm.put("/exp/run9/events.dat", "EVTDATA-0123456789");

  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}, {"srm", anyone},
                                {"file", anyone}};
  core::FileAcl cache_acl;
  cache_acl.read = anyone;
  config.initial_file_acls = {{"/srmcache", cache_acl}};
  core::ClarensServer server(std::move(config));
  server.attach_storage(srm);
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.alice;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  // Namespace browse, then request staging.
  rpc::Value listing = client.call("srm.ls", {rpc::Value("/exp")});
  ASSERT_EQ(listing.as_array().size(), 1u);
  EXPECT_EQ(client.call("srm.size", {rpc::Value("/exp/run9/events.dat")}).as_int(),
            18);

  std::string token =
      client.call("srm.prepare_to_get", {rpc::Value("/exp/run9/events.dat")})
          .as_string();
  // Poll until READY (bounded).
  rpc::Value status;
  for (int i = 0; i < 200; ++i) {
    status = client.call("srm.status", {rpc::Value(token)});
    if (status.at("state").as_string() == "READY") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(status.at("state").as_string(), "READY");

  // Read the staged copy through the ordinary file service.
  std::string cache_path = status.at("cache_path").as_string();
  auto bytes = client.file_read(cache_path, 0, 100);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "EVTDATA-0123456789");

  EXPECT_TRUE(client.call("srm.release", {rpc::Value(token)}).as_bool());
  server.stop();
}

}  // namespace
}  // namespace clarens::storage
