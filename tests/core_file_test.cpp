// Unit tests for the file service: virtual roots, containment, every
// file.* operation, and ACL gating.
#include <gtest/gtest.h>

#include <fstream>

#include "core/file_service.hpp"
#include "core/vo.hpp"
#include "crypto/md5.hpp"
#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;

const char* kAliceStr = "/O=grid/CN=Alice";

pki::DistinguishedName alice() {
  return pki::DistinguishedName::parse(kAliceStr);
}

struct FileFixture : ::testing::Test {
  db::Store store;
  VoManager vo{store, {}};
  AclManager acl{store, vo, /*default_allow=*/false};
  FileService files{acl};
  TempDir tmp;
  std::string dir;

  FileFixture() : dir(tmp.sub("root")) {
    files.add_root("/data", dir);
    FileAcl open;
    open.read.allow_dns = {"*"};
    open.write.allow_dns = {"*"};
    acl.set_file_acl("/data", open);
    write_file("hello.txt", "hello world");
    std::filesystem::create_directories(dir + "/sub");
    write_file("sub/nested.bin", std::string(1000, 'x'));
  }

  void write_file(const std::string& rel, const std::string& content) {
    std::ofstream out(dir + "/" + rel, std::ios::binary);
    out << content;
  }
};

TEST_F(FileFixture, ReadWholeAndPartial) {
  auto all = files.read("/data/hello.txt", 0, 100, alice());
  EXPECT_EQ(std::string(all.begin(), all.end()), "hello world");
  auto mid = files.read("/data/hello.txt", 6, 5, alice());
  EXPECT_EQ(std::string(mid.begin(), mid.end()), "world");
  auto past_end = files.read("/data/hello.txt", 100, 10, alice());
  EXPECT_TRUE(past_end.empty());
  EXPECT_THROW(files.read("/data/hello.txt", -1, 5, alice()), ParseError);
}

TEST_F(FileFixture, ReadLengthIsClamped) {
  // The length arrives from the wire: beyond the configured chunk cap it
  // must be rejected before any allocation happens.
  files.set_max_read_chunk(64);
  EXPECT_THROW(files.read("/data/hello.txt", 0, 65, alice()), ParseError);
  auto ok = files.read("/data/hello.txt", 0, 64, alice());
  EXPECT_EQ(std::string(ok.begin(), ok.end()), "hello world");
  // Within the cap, the buffer is sized by the file, not the request:
  // a 64-byte ask on an 11-byte file returns 11 bytes.
  EXPECT_EQ(ok.size(), 11u);
}

TEST_F(FileFixture, LsSortedWithTypes) {
  auto listing = files.ls("/data", alice());
  ASSERT_EQ(listing.size(), 2u);
  EXPECT_EQ(listing[0].name, "hello.txt");
  EXPECT_FALSE(listing[0].is_directory);
  EXPECT_EQ(listing[0].size, 11);
  EXPECT_EQ(listing[1].name, "sub");
  EXPECT_TRUE(listing[1].is_directory);
  EXPECT_THROW(files.ls("/data/hello.txt", alice()), NotFoundError);
}

TEST_F(FileFixture, StatAndSize) {
  FileStat st = files.stat("/data/hello.txt", alice());
  EXPECT_EQ(st.name, "hello.txt");
  EXPECT_EQ(st.size, 11);
  EXPECT_GT(st.mtime, 0);
  EXPECT_EQ(files.size("/data/sub/nested.bin", alice()), 1000);
  EXPECT_THROW(files.stat("/data/ghost", alice()), NotFoundError);
}

TEST_F(FileFixture, Md5MatchesDirectComputation) {
  EXPECT_EQ(files.md5("/data/hello.txt", alice()),
            crypto::Md5::hex("hello world"));
}

TEST_F(FileFixture, Md5StreamsFilesLargerThanTheReadChunkCap) {
  // Regression: file.md5/file.checksum must hash in fixed-size chunks,
  // not load the file — a file bigger than max_read_chunk (which caps a
  // single file.read) has to hash fine with bounded memory.
  files.set_max_read_chunk(64 * 1024);
  std::string payload;
  payload.reserve(200 * 1024);
  for (int i = 0; i < 200 * 1024; ++i) {
    payload.push_back(static_cast<char>('a' + i % 23));
  }
  write_file("big.bin", payload);
  ASSERT_GT(static_cast<std::int64_t>(payload.size()),
            files.max_read_chunk());
  EXPECT_THROW(files.read("/data/big.bin", 0,
                          static_cast<std::int64_t>(payload.size()), alice()),
               ParseError);  // a single read stays capped...
  EXPECT_EQ(files.md5("/data/big.bin", alice()),
            crypto::Md5::hex(payload));  // ...but hashing streams past it

  FileService::FileChecksum sum = files.checksum("/data/big.bin", alice());
  EXPECT_EQ(sum.md5, crypto::Md5::hex(payload));
  EXPECT_EQ(sum.size, static_cast<std::int64_t>(payload.size()));
}

TEST_F(FileFixture, ChecksumMatchesMd5AndStat) {
  FileService::FileChecksum sum = files.checksum("/data/hello.txt", alice());
  EXPECT_EQ(sum.md5, files.md5("/data/hello.txt", alice()));
  EXPECT_EQ(sum.size, 11);
  EXPECT_THROW(files.checksum("/data/ghost", alice()), NotFoundError);
}

TEST_F(FileFixture, AppendExtendsAndCreates) {
  auto span_of = [](const std::string& s) {
    return std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  };
  std::string first = "chunk-one|", second = "chunk-two";
  files.append("/data/log.txt", span_of(first), alice());  // creates
  files.append("/data/log.txt", span_of(second), alice());
  auto back = files.read("/data/log.txt", 0, 100, alice());
  EXPECT_EQ(std::string(back.begin(), back.end()), "chunk-one|chunk-two");
}

TEST_F(FileFixture, FindByPatternAndWildcard) {
  auto hits = files.find("/data", "nested", alice());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], "/data/sub/nested.bin");
  auto all = files.find("/data", "*", alice());
  EXPECT_EQ(all.size(), 3u);  // hello.txt, sub, sub/nested.bin
}

TEST_F(FileFixture, WriteMkdirRemove) {
  files.mkdir("/data/out", alice());
  std::string content = "payload";
  files.write("/data/out/result.txt",
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(content.data()),
                  content.size()),
              alice());
  auto back = files.read("/data/out/result.txt", 0, 100, alice());
  EXPECT_EQ(std::string(back.begin(), back.end()), "payload");
  files.remove("/data/out", alice());
  EXPECT_THROW(files.stat("/data/out", alice()), NotFoundError);
}

TEST_F(FileFixture, PathEscapeRefused) {
  EXPECT_THROW(files.read("/data/../../../etc/passwd", 0, 10, alice()),
               AccessError);
  EXPECT_THROW(files.read("/data/sub/../../escape", 0, 10, alice()),
               AccessError);
  // Normalized inner dotdots that stay inside the root are fine.
  auto ok = files.read("/data/sub/../hello.txt", 0, 5, alice());
  EXPECT_EQ(std::string(ok.begin(), ok.end()), "hello");
}

TEST_F(FileFixture, RelativePathsRefused) {
  EXPECT_THROW(files.read("data/hello.txt", 0, 5, alice()), AccessError);
}

TEST_F(FileFixture, UnknownRootRefused) {
  // With read access granted, a path under no configured root is NotFound.
  FileAcl open;
  open.read.allow_dns = {"*"};
  acl.set_file_acl("/other", open);
  EXPECT_THROW(files.read("/other/x", 0, 5, alice()), NotFoundError);
  // Without any grant the ACL check fires first.
  EXPECT_THROW(files.read("/elsewhere/x", 0, 5, alice()), AccessError);
}

TEST_F(FileFixture, MultipleRootsLongestPrefixWins) {
  TempDir tmp2;
  std::string special = tmp2.sub("special");
  std::ofstream(special + "/only-here.txt") << "special";
  files.add_root("/data/special", special);
  FileAcl open;
  open.read.allow_dns = {"*"};
  acl.set_file_acl("/data/special", open);
  auto got = files.read("/data/special/only-here.txt", 0, 100, alice());
  EXPECT_EQ(std::string(got.begin(), got.end()), "special");
}

TEST_F(FileFixture, AclDeniesListedIdentityAtLowerLevel) {
  // A lower-level ACL that does not match falls through to the /data
  // grant (paper: grants at higher levels apply "unless specifically
  // denied at the lower level") — so an unmatched allow-list alone does
  // not lock Alice out...
  FileAcl unmatched;
  unmatched.read.allow_dns = {"/O=grid/CN=Someone Else"};
  acl.set_file_acl("/data/sub", unmatched);
  EXPECT_NO_THROW(files.read("/data/sub/nested.bin", 0, 5, alice()));
  // ...but a specific deny does.
  FileAcl denied;
  denied.read.deny_dns = {kAliceStr};
  acl.set_file_acl("/data/sub", denied);
  EXPECT_THROW(files.read("/data/sub/nested.bin", 0, 5, alice()), AccessError);
  // The sibling file is still covered by the /data wildcard grant.
  EXPECT_NO_THROW(files.read("/data/hello.txt", 0, 5, alice()));
}

TEST_F(FileFixture, WriteRequiresWriteAcl) {
  // Specifically deny writes below /data/sub; reads stay open.
  FileAcl read_only;
  read_only.read.allow_dns = {"*"};
  read_only.write.deny_dns = {"*"};
  acl.set_file_acl("/data/sub", read_only);
  std::string content = "x";
  EXPECT_THROW(
      files.write("/data/sub/new.txt",
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(content.data()), 1),
                  alice()),
      AccessError);
  EXPECT_NO_THROW(files.read("/data/sub/nested.bin", 0, 1, alice()));
}

TEST_F(FileFixture, ResolveForReadChecksAclFirst) {
  FileAcl closed;
  closed.read.deny_dns = {"*"};
  acl.set_file_acl("/data/sub", closed);
  EXPECT_THROW(files.resolve_for_read("/data/sub/nested.bin", alice()),
               AccessError);
  std::string real = files.resolve_for_read("/data/hello.txt", alice());
  EXPECT_TRUE(std::filesystem::exists(real));
}

}  // namespace
}  // namespace clarens::core
