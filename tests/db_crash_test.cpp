// Crash-recovery proof for the storage engine (ISSUE 7 satellite).
//
// Each test forks a child that mutates a store under load and reports
// every mutation it considers settled over a pipe, then SIGKILLs the
// child at an arbitrary point and recovers the directory in the parent:
//
//   * durable writers (put_durable / erase_durable) report after the ack
//     — every reported record MUST survive recovery, whether the kill
//     landed before a group's fsync, after it, or mid-checkpoint;
//   * async writers report only what a later sync() covered — the same
//     guarantee, at barrier granularity;
//   * the recovered store must itself be consistent: a torn trailing
//     group parses away cleanly and the store accepts new writes.
//
// Pipe writes are single writev-style ::write calls well under PIPE_BUF,
// so lines arrive atomically even though the writer dies mid-flight.
//
// A final test injects disk-full (RLIMIT_FSIZE, SIGXFSZ ignored) and
// asserts the store surfaces store-unavailable instead of acking writes
// it can no longer journal.
#include <gtest/gtest.h>

#include <limits.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "db/store.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::db {
namespace {

using clarens::testing::TempDir;

/// Report one settled mutation ("P key" or "E key") atomically.
void report(int fd, char op, const std::string& key) {
  std::string line;
  line.push_back(op);
  line.push_back(' ');
  line += key;
  line.push_back('\n');
  ASSERT_LE(line.size(), static_cast<std::size_t>(PIPE_BUF));
  (void)::write(fd, line.data(), line.size());
}

/// Drain the read side into (op, key) pairs. Later reports win.
std::map<std::string, char> drain_reports(int fd) {
  std::string all;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) all.append(buf, n);
  std::map<std::string, char> settled;
  std::istringstream in(all);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() < 3) continue;  // a torn line is impossible, but cheap
    settled[line.substr(2)] = line[0];
  }
  return settled;
}

/// Fork `child`, kill it with SIGKILL after `delay_ms`, return its
/// settled reports. The child must never exit on its own (it loops until
/// killed), so a normal exit is a test failure.
std::map<std::string, char> run_and_kill(const std::string& dir,
                                         int delay_ms,
                                         void (*child)(const std::string&,
                                                       int)) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) ADD_FAILURE() << "pipe failed";
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipe_fds[0]);
    child(dir, pipe_fds[1]);
    _exit(0);  // not reached: children loop until SIGKILLed
  }
  ::close(pipe_fds[1]);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own instead of being killed";
  auto settled = drain_reports(pipe_fds[0]);
  ::close(pipe_fds[0]);
  return settled;
}

void assert_recovered(const std::string& dir,
                      const std::map<std::string, char>& settled) {
  Store store(dir);
  for (const auto& [key, op] : settled) {
    if (op == 'P') {
      EXPECT_TRUE(store.get("t", key).has_value())
          << "durably acked put of '" << key << "' lost after crash";
    } else {
      EXPECT_FALSE(store.get("t", key).has_value())
          << "durably acked erase of '" << key << "' resurrected after crash";
    }
  }
  // The recovered store stays writable (torn tail folded away).
  store.put_durable("t", "post-recovery", "ok");
  EXPECT_EQ(store.get("t", "post-recovery"), "ok");
}

// --- children (run in the forked process; no gtest asserts that throw) --

void durable_writer_child(const std::string& dir, int fd) {
  StoreOptions options;
  options.commit_interval_us = 100;  // small groups: many fsync boundaries
  Store store(dir, options);
  std::vector<util::Thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, fd, t] {
      for (int i = 0;; ++i) {
        std::string key = "w" + std::to_string(t) + "-" + std::to_string(i);
        store.put_durable("t", key, "value-" + key);
        report(fd, 'P', key);  // acked => must survive any later kill
      }
    });
  }
  for (auto& w : writers) w.join();
}

void mixed_durable_child(const std::string& dir, int fd) {
  Store store(dir);
  for (int i = 0;; ++i) {
    std::string key = "k" + std::to_string(i % 64);
    if (i % 3 == 2) {
      if (store.erase_durable("t", key)) report(fd, 'E', key);
    } else {
      store.put_durable("t", key, "gen-" + std::to_string(i));
      report(fd, 'P', key);
    }
  }
}

void sync_barrier_child(const std::string& dir, int fd) {
  // Async puts; only keys covered by a completed sync() are reported.
  Store store(dir);
  int reported = 0;
  for (int i = 0;; ++i) {
    store.put("t", "s" + std::to_string(i), "v");
    if (i % 32 == 31) {
      store.sync();
      for (; reported <= i; ++reported) {
        report(fd, 'P', "s" + std::to_string(reported));
      }
    }
  }
}

void compaction_churn_child(const std::string& dir, int fd) {
  // Tiny compaction threshold so the journal thread checkpoints
  // constantly: kills land before fsync, after fsync, mid-rotation and
  // mid-snapshot-rename at random.
  StoreOptions options;
  options.compact_threshold = 4096;
  Store store(dir, options);
  for (int i = 0;; ++i) {
    std::string key = "c" + std::to_string(i % 128);
    store.put_durable("t", key, std::string(200, 'a' + (i % 26)));
    report(fd, 'P', key);
  }
}

// --- the suite ----------------------------------------------------------

class StoreCrash : public ::testing::TestWithParam<int> {};

TEST_P(StoreCrash, DurableAcksSurviveSigkill) {
  TempDir tmp;
  auto settled = run_and_kill(tmp.path(), GetParam(), durable_writer_child);
  EXPECT_FALSE(settled.empty()) << "child made no progress before the kill";
  assert_recovered(tmp.path(), settled);
}

TEST_P(StoreCrash, MixedPutEraseRecoversLastAckedState) {
  TempDir tmp;
  auto settled = run_and_kill(tmp.path(), GetParam(), mixed_durable_child);
  EXPECT_FALSE(settled.empty());
  // The child is single-threaded, so at most ONE op can have been acked
  // durable without its report reaching the pipe (the kill landed between
  // ack and report). That op may contradict the key's last report — an
  // unreported trailing erase removes a reported put, or vice versa. Any
  // second contradiction is a real durability violation.
  Store store(tmp.path());
  int contradictions = 0;
  std::string detail;
  for (const auto& [key, op] : settled) {
    bool present = store.get("t", key).has_value();
    if (present != (op == 'P')) {
      ++contradictions;
      detail += (op == 'P' ? "acked put of '" : "acked erase of '") + key +
                (present ? "' resurrected; " : "' lost; ");
    }
  }
  EXPECT_LE(contradictions, 1) << detail;
  store.put_durable("t", "post-recovery", "ok");
  EXPECT_EQ(store.get("t", "post-recovery"), "ok");
}

TEST_P(StoreCrash, SyncBarrierCoversEarlierAsyncPuts) {
  TempDir tmp;
  auto settled = run_and_kill(tmp.path(), GetParam(), sync_barrier_child);
  assert_recovered(tmp.path(), settled);
}

TEST_P(StoreCrash, KillDuringCompactionChurn) {
  TempDir tmp;
  auto settled = run_and_kill(tmp.path(), GetParam(), compaction_churn_child);
  EXPECT_FALSE(settled.empty());
  assert_recovered(tmp.path(), settled);
  // Recovery must also have cleaned up checkpoint intermediates.
  EXPECT_FALSE(std::filesystem::exists(tmp.path() + "/snapshot.tmp"));
  EXPECT_FALSE(std::filesystem::exists(tmp.path() + "/journal.old"));
}

// Three delays spread kills across engine states: mid-first-groups,
// steady-state batching, and deep into compaction churn.
INSTANTIATE_TEST_SUITE_P(KillPoints, StoreCrash,
                         ::testing::Values(25, 80, 200));

TEST(StoreCrashRecovery, RecoveredStoreEqualsChildView) {
  // Beyond per-key presence: a second crash immediately after recovery
  // (before any new write) must replay to the identical state — i.e.
  // recovery itself is durable (fold-on-anomaly writes a fresh
  // snapshot).
  TempDir tmp;
  auto settled = run_and_kill(tmp.path(), 120, durable_writer_child);
  std::map<std::string, std::string> first_view;
  {
    Store store(tmp.path());
    for (const auto& key : store.keys("t")) {
      first_view[key] = *store.get("t", key);
    }
  }
  std::map<std::string, std::string> second_view;
  {
    Store store(tmp.path());
    for (const auto& key : store.keys("t")) {
      second_view[key] = *store.get("t", key);
    }
  }
  EXPECT_EQ(first_view, second_view);
  for (const auto& [key, op] : settled) {
    if (op == 'P') {
      EXPECT_TRUE(first_view.count(key));
    }
  }
}

TEST(StoreDiskFull, JournalFailureSurfacesStoreUnavailable) {
  // Satellite: a full disk must not silently ack lost writes. The child
  // caps its file size with RLIMIT_FSIZE (writes past it fail with
  // EFBIG once SIGXFSZ is ignored) and verifies that (a) a durable put
  // eventually throws SystemError and (b) every later mutation throws
  // store-unavailable instead of acking, while reads keep working.
  TempDir tmp;
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::signal(SIGXFSZ, SIG_IGN);
    struct rlimit limit{4096, 4096};
    if (::setrlimit(RLIMIT_FSIZE, &limit) != 0) _exit(10);
    // The store lives inside the lambda so its destructor joins the
    // journal thread before _exit (TSan flags unjoined threads at exit).
    int code = [&]() -> int {
      try {
        Store store(tmp.path());
        bool failed = false;
        for (int i = 0; i < 4096 && !failed; ++i) {
          try {
            store.put_durable("t", "k" + std::to_string(i), std::string(64, 'x'));
          } catch (const SystemError&) {
            failed = true;
          }
        }
        if (!failed) return 11;  // the cap was never hit: test is broken
        try {
          store.put("t", "after-failure", "v");
          return 12;  // acked a write the journal cannot persist
        } catch (const SystemError&) {
        }
        try {
          store.put_durable("t", "after-failure2", "v");
          return 13;
        } catch (const SystemError&) {
        }
        // Reads still serve the memtable.
        if (!store.get("t", "k0").has_value()) return 14;
        return 0;
      } catch (...) {
        return 15;
      }
    }();
    _exit(code);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "child crashed";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child exit code " << WEXITSTATUS(status)
                                    << " (see _exit codes in the test)";
}

}  // namespace
}  // namespace clarens::db
