// The authenticated-RPC hot path is served from two write-through
// caches: decoded sessions (SessionManager) and compiled method ACLs
// (AclManager). These tests pin down the two properties the caches must
// never trade away:
//
//   1. no stale window — an ACL change or session destroy is visible to
//      the very next check once the mutating call returns;
//   2. the warm path really is store-free — a run of authenticated RPCs
//      performs zero db::Store operations (asserted via the store's
//      operation counter).
#include <gtest/gtest.h>

#include "client/client.hpp"
#include "core/acl.hpp"
#include "core/server.hpp"
#include "core/session.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens {
namespace {

using testing::TestPki;

core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::AclSpec deny_anyone() {
  core::AclSpec spec;
  spec.deny_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::ClarensConfig base_config(const TestPki& pki) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.admins = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  config.initial_method_acls = {{"system", allow_anyone()},
                                {"echo", allow_anyone()}};
  return config;
}

client::ClientOptions client_options(const TestPki& pki,
                                     const pki::Credential& who,
                                     std::uint16_t port) {
  client::ClientOptions options;
  options.port = port;
  options.credential = who;
  options.trust = &pki.trust;
  return options;
}

// ---------- manager-level -----------------------------------------------

TEST(AclCache, SetMethodAclVisibleToNextCheckNoStaleWindow) {
  db::Store store;
  core::VoManager vo(store, {});
  core::AclManager acl(store, vo);
  auto dn = pki::DistinguishedName::parse("/O=x/OU=p/CN=alice");

  acl.set_method_acl("echo", allow_anyone());
  // Warm the compiled cache thoroughly.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(acl.check_method("echo.echo", dn));

  acl.set_method_acl("echo", deny_anyone());
  // The very next check must see the new spec.
  EXPECT_FALSE(acl.check_method("echo.echo", dn));

  acl.remove_method_acl("echo");
  // Default policy is closed; removing the deny must not resurrect the
  // cached allow.
  EXPECT_FALSE(acl.check_method("echo.echo", dn));

  acl.set_method_acl("echo", allow_anyone());
  EXPECT_TRUE(acl.check_method("echo.echo", dn));
}

TEST(AclCache, HierarchyLevelsCachedIndependently) {
  db::Store store;
  core::VoManager vo(store, {});
  core::AclManager acl(store, vo);
  auto dn = pki::DistinguishedName::parse("/O=x/CN=u");

  acl.set_method_acl("a", allow_anyone());
  EXPECT_TRUE(acl.check_method("a.b.c", dn));  // resolved at the "a" level
  // A more specific deny must take precedence as soon as it is set.
  acl.set_method_acl("a.b", deny_anyone());
  EXPECT_FALSE(acl.check_method("a.b.c", dn));
  EXPECT_TRUE(acl.check_method("a.other", dn));
  acl.remove_method_acl("a.b");
  EXPECT_TRUE(acl.check_method("a.b.c", dn));
}

TEST(SessionCache, DestroyInvalidatesWarmLookup) {
  db::Store store;
  core::SessionManager sessions(store);
  core::Session s = sessions.create("/O=x/CN=a", false);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sessions.lookup(s.id).identity, s.identity);
  ASSERT_TRUE(sessions.destroy(s.id));
  EXPECT_THROW(sessions.lookup(s.id), AuthError);
  EXPECT_THROW(sessions.lookup_shared(s.id), AuthError);
}

TEST(SessionCache, WarmLookupHitsNoStoreOps) {
  db::Store store;
  core::SessionManager sessions(store);
  core::Session s = sessions.create("/O=x/CN=a", false);
  sessions.lookup(s.id);  // populate (create already did; belt and braces)
  std::uint64_t before = store.operations();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sessions.lookup_shared(s.id)->identity, "/O=x/CN=a");
  }
  EXPECT_EQ(store.operations(), before) << "warm session lookups hit the store";
}

TEST(SessionCache, ExpiredLookupIsReadOnlyReapDeletes) {
  db::Store store;
  core::SessionManager sessions(store, /*default_ttl=*/-1);  // born expired
  core::Session s = sessions.create("/O=x/CN=a", false);
  EXPECT_THROW(sessions.lookup(s.id), AuthError);
  // The store row survives a rejected lookup (lookup is const)...
  EXPECT_TRUE(store.contains("sessions", s.id));
  // ...and is reclaimed by the explicit reaper.
  EXPECT_EQ(sessions.reap_expired(), 1u);
  EXPECT_FALSE(store.contains("sessions", s.id));
}

TEST(VoCache, RootAdminChangesVisibleImmediately) {
  db::Store store;
  core::VoManager vo(store, {"/O=x/CN=root"});
  auto root = pki::DistinguishedName::parse("/O=x/CN=root");
  auto alice = pki::DistinguishedName::parse("/O=x/CN=alice");
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(vo.is_root_admin(root));
    EXPECT_FALSE(vo.is_root_admin(alice));
  }
  vo.add_admin(core::VoManager::kAdminsGroup, "/O=x/CN=alice", root);
  EXPECT_TRUE(vo.is_root_admin(alice));
  vo.remove_admin(core::VoManager::kAdminsGroup, "/O=x/CN=alice", root);
  EXPECT_FALSE(vo.is_root_admin(alice));
}

// ---------- server-level (full RPC stack over real sockets) -------------

TEST(HotPathCache, AclChangeDeniesNextRpc) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  client.authenticate();
  // Warm the hot path.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
  }
  // Flip the echo ACL to deny; the next call must fault — no stale window.
  server.acl().set_method_acl("echo", deny_anyone());
  try {
    client.call("echo.echo", {rpc::Value(99)});
    FAIL() << "expected access fault after ACL change";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAccess);
  }
  // And back.
  server.acl().set_method_acl("echo", allow_anyone());
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(7)}).as_int(), 7);
  server.stop();
}

TEST(HotPathCache, SessionDestroyInvalidatesNextRpc) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  std::string session = client.authenticate();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value(1)}).as_int(), 1);
  // Destroy server-side (as system.logout does); the cached session must
  // not keep the token alive.
  ASSERT_TRUE(server.sessions().destroy(session));
  try {
    client.call("echo.echo", {rpc::Value(2)});
    FAIL() << "expected auth fault after destroy";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAuth);
  }
  server.stop();
}

TEST(HotPathCache, WarmAuthenticatedRpcDoesZeroStoreOps) {
  const TestPki& pki = TestPki::instance();
  core::ClarensServer server(base_config(pki));
  server.start();

  client::ClarensClient client(client_options(pki, pki.bob, server.port()));
  client.connect();
  client.authenticate();
  // Warm both caches (session + every ACL level "echo.echo"/"echo").
  for (int i = 0; i < 3; ++i) client.call("echo.echo", {rpc::Value(i)});

  std::uint64_t before = server.store().operations();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.call("echo.echo", {rpc::Value(i)}).as_int(), i);
  }
  EXPECT_EQ(server.store().operations(), before)
      << "warm authenticated RPCs must not touch db::Store";
  server.stop();
}

}  // namespace
}  // namespace clarens
