// Three-node federation cluster, end-to-end (ISSUE 8 acceptance):
// one head + two storage nodes wired through a discovery fabric.
//
//   * files written through the head land on BOTH storage nodes
//     (consistent-hash placement over namespace prefixes);
//   * reading back through redirect envelopes returns the exact bytes;
//   * the HTTP GET path answers 307 with a ticket-bearing Location that
//     a plain client can follow to the owning node;
//   * killing and restarting one storage node mid-run causes ZERO failed
//     client calls — RoutedClient retries through the head until the
//     node is back.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "client/client.hpp"
#include "client/peer_pool.hpp"
#include "client/routed.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "federation/node_ticket.hpp"
#include "federation/router.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/sync.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

constexpr const char* kSecret = "federation-cluster-secret";

/// Poll until `predicate` holds or ~5 s elapse (sanitizer headroom).
template <typename F>
bool eventually(F predicate) {
  for (int i = 0; i < 250; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::ClarensConfig node_config(const TestPki& pki, const std::string& node,
                                core::NodeRole role,
                                const std::string& data_dir,
                                const std::string& head_url,
                                std::uint16_t station_port) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.admins = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  core::AclSpec anyone = allow_anyone();
  config.initial_method_acls = {{"system", anyone},
                                {"echo", anyone},
                                {"file", anyone},
                                {"replica", anyone}};
  core::FileAcl facl;
  facl.read = anyone;
  facl.write = anyone;
  config.initial_file_acls = {{"/data", facl}};
  config.farm = "fedfarm";
  config.node = node;
  config.node_role = role;
  config.node_ticket_secret = kSecret;
  config.head_url = head_url;
  config.station = {{"127.0.0.1", station_port}};
  config.publish_interval_ms = 100;
  config.federation_refresh_ms = 100;
  if (!data_dir.empty()) config.file_roots = {{"/data", data_dir}};
  return config;
}

std::size_t files_under(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

std::string as_string(const rpc::Value& value) {
  auto bytes = value.as_binary();
  return std::string(bytes.begin(), bytes.end());
}

TEST(FederationCluster, RedirectedIoAcrossNodesSurvivesNodeRestart) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;

  // Discovery fabric: one station, one aggregating discovery server.
  // Generous TTL: a node's liveness is decided by connect attempts in
  // this test, not by heartbeat lapses under sanitizer load.
  discovery::StationServer station;
  db::Store store;
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/5);
  discovery.subscribe("127.0.0.1", station.port());

  // Head: owns sessions + namespace, serves no file bytes itself.
  core::ClarensServer head(node_config(pki, "head", core::NodeRole::Head,
                                       /*data_dir=*/"", /*head_url=*/"",
                                       station.port()));
  head.attach_discovery(discovery);
  head.start();
  const std::string head_url = head.url();

  // Two storage nodes, each exporting "/data" from its own directory.
  std::string dir1 = tmp.sub("fst1");
  std::string dir2 = tmp.sub("fst2");
  auto storage1 = std::make_unique<core::ClarensServer>(node_config(
      pki, "fst1", core::NodeRole::Storage, dir1, head_url, station.port()));
  storage1->start();
  auto storage2 = std::make_unique<core::ClarensServer>(node_config(
      pki, "fst2", core::NodeRole::Storage, dir2, head_url, station.port()));
  storage2->start();
  const std::uint16_t storage2_port = storage2->port();

  ASSERT_NE(head.router(), nullptr);
  ASSERT_TRUE(eventually(
      [&] { return head.router()->storage_nodes().size() == 2; }))
      << "head never saw both storage nodes via discovery";

  // Generous retry budget: a restarting node under TSan can take a
  // couple of seconds to come back.
  client::ClientOptions base;
  base.credential = pki.alice;
  base.trust = &pki.trust;
  client::RoutedClient client(head_url, base, /*max_attempts=*/40,
                              /*retry_backoff_ms=*/100);
  client.authenticate();

  // Spread files over many placement prefixes. The ring is
  // deterministic, so with 12 prefixes on 2 nodes both get a share.
  std::map<std::string, std::string> written;
  for (int i = 0; i < 12; ++i) {
    std::string run = "/data/run" + std::to_string(i);
    std::string path = run + "/evt.bin";
    std::string payload =
        "payload-" + std::to_string(i) + "-" + std::string(64, 'x');
    client.call("file.mkdir", {rpc::Value(run)});
    EXPECT_TRUE(
        client.call("file.write", {rpc::Value(path), rpc::Value(payload)})
            .as_bool());
    written[path] = payload;
  }
  EXPECT_GT(client.redirects_followed(), 0u)
      << "calls never bounced through a storage node";
  EXPECT_GT(files_under(dir1), 0u) << "placement starved node fst1";
  EXPECT_GT(files_under(dir2), 0u) << "placement starved node fst2";

  // Redirected read == written bytes, for every file.
  for (const auto& [path, payload] : written) {
    rpc::Value bytes = client.call(
        "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                      rpc::Value(std::int64_t{1 << 20})});
    EXPECT_EQ(as_string(bytes), payload) << path;
  }

  // Fan-out listing merges both nodes' views of the one namespace.
  rpc::Value listing = client.call("file.ls", {rpc::Value("/data")});
  EXPECT_EQ(listing.as_array().size(), 12u);

  // file.find fans out likewise and merges full paths.
  rpc::Value hits = client.call(
      "file.find", {rpc::Value("/data"), rpc::Value("evt")});
  EXPECT_EQ(hits.as_array().size(), 12u);

  // Placement introspection names a live owner for each prefix.
  rpc::Value located =
      client.call("file.locate", {rpc::Value("/data/run0/evt.bin")});
  EXPECT_EQ(located.at("prefix").as_string(), "/data/run0");
  ASSERT_FALSE(located.at("owners").as_array().empty());

  // The GET path: the head answers 307 with a ticket-bearing Location;
  // following it manually on a fresh plain client yields the bytes.
  http::Response redirect = client.head().get("/data/run0/evt.bin");
  ASSERT_EQ(redirect.status, 307);
  const std::string* location = redirect.headers.find("Location");
  ASSERT_NE(location, nullptr);
  client::PeerEndpoint target = client::PeerEndpoint::parse(*location);
  std::size_t path_pos = location->find('/', location->find("://") + 3);
  ASSERT_NE(path_pos, std::string::npos);
  client::ClientOptions direct_options;
  direct_options.host = target.host;
  direct_options.port = target.port;
  client::ClarensClient direct(direct_options);
  direct.connect();
  http::Response got = direct.get(location->substr(path_pos));
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, written.at("/data/run0/evt.bin"));
  // Tickets are scoped to one placement prefix: presenting run0's
  // ticket for a run1 path is refused outright.
  std::size_t query_pos = location->find("?ticket=");
  ASSERT_NE(query_pos, std::string::npos);
  // GET-minted tickets are read-only capabilities carrying the session
  // identity: the query string is loggable, so a leaked token must
  // never authorize a mutation.
  {
    std::string token = location->substr(query_pos + 8);
    if (auto amp = token.find('&'); amp != std::string::npos) {
      token.resize(amp);
    }
    auto minted = federation::NodeTicket::verify(kSecret, token,
                                                 util::unix_now());
    ASSERT_TRUE(minted.has_value());
    EXPECT_EQ(minted->dn, "/O=testgrid.org/OU=People/CN=Alice Able");
    EXPECT_EQ(minted->scope, "/data/run0");
    EXPECT_FALSE(minted->write);
  }
  EXPECT_EQ(
      direct.get("/data/run1/evt.bin" + location->substr(query_pos)).status,
      403);

  // The Location percent-encodes the path: a file name with a space
  // survives the redirect hop as a well-formed URL and decodes back to
  // the same file on the owning node.
  std::string odd_path = "/data/run0/evt copy.bin";
  EXPECT_TRUE(client
                  .call("file.write", {rpc::Value(odd_path),
                                       rpc::Value(std::string("spacey"))})
                  .as_bool());
  http::Response odd_redirect = client.head().get("/data/run0/evt%20copy.bin");
  ASSERT_EQ(odd_redirect.status, 307);
  const std::string* odd_location = odd_redirect.headers.find("Location");
  ASSERT_NE(odd_location, nullptr);
  EXPECT_NE(odd_location->find("/data/run0/evt%20copy.bin"),
            std::string::npos)
      << *odd_location;
  std::size_t odd_path_pos =
      odd_location->find('/', odd_location->find("://") + 3);
  ASSERT_NE(odd_path_pos, std::string::npos);
  // Same placement prefix as run0's evt.bin, so `direct` already points
  // at the owning node.
  http::Response odd_got = direct.get(odd_location->substr(odd_path_pos));
  EXPECT_EQ(odd_got.status, 200);
  EXPECT_EQ(odd_got.body, "spacey");

  // Kill storage node 2 and restart it on the same port in the
  // background while the client keeps reading every file: the retry-
  // through-head loop must ride out the restart with zero failures.
  storage2->stop();
  storage2.reset();
  util::Thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    core::ClarensConfig config = node_config(
        pki, "fst2", core::NodeRole::Storage, dir2, head_url, station.port());
    config.port = storage2_port;
    storage2 = std::make_unique<core::ClarensServer>(std::move(config));
    storage2->start();
  });
  std::size_t failed = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& [path, payload] : written) {
      try {
        rpc::Value bytes = client.call(
            "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                          rpc::Value(std::int64_t{1 << 20})});
        EXPECT_EQ(as_string(bytes), payload) << path;
      } catch (const Error& e) {
        ADD_FAILURE() << "client call failed during restart: " << path
                      << ": " << e.what();
        ++failed;
      } catch (const rpc::Fault& e) {
        ADD_FAILURE() << "client call faulted during restart: " << path
                      << ": " << e.what();
        ++failed;
      }
    }
  }
  restarter.join();
  EXPECT_EQ(failed, 0u);

  // The restarted node serves its files again, first try.
  for (const auto& [path, payload] : written) {
    EXPECT_EQ(as_string(client.call(
                  "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                                rpc::Value(std::int64_t{1 << 20})})),
              payload);
  }

  storage2->stop();
  storage1->stop();
  head.stop();
}

/// Poll with an explicit budget — re-replication after a node death has
/// to wait out the discovery TTL plus the grace period, which does not
/// fit eventually()'s 5 s under sanitizers.
template <typename F>
bool eventually_for(int seconds, F predicate) {
  for (int i = 0; i < seconds * 50; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

std::string disk_bytes(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Self-healing replication, end to end (ISSUE 10 acceptance): with
// placement_replicas=2 over three storage nodes,
//   * every write is re-replicated to a second node and its checksum is
//     confirmed by the commit notification;
//   * SIGKILLing a replica-holding node mid-workload costs ZERO failed
//     client reads (suspect tracking + layout-aware read routing), and
//     the repair engine restores full replication on the survivors;
//   * flipping a bit in one replica on disk is caught by replica.fsck,
//     which repairs the copy byte-identical from the healthy replica.
TEST(FederationCluster, SelfHealingReplicationSurvivesNodeDeathAndBitRot) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;

  discovery::StationServer station;
  db::Store store;
  // Short record TTL: a dead node must drop out of the ring quickly so
  // the grace period — not discovery lag — dominates repair latency.
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/2);
  discovery.subscribe("127.0.0.1", station.port());

  core::ClarensConfig head_config =
      node_config(pki, "head", core::NodeRole::Head, /*data_dir=*/"",
                  /*head_url=*/"", station.port());
  head_config.placement_replicas = 2;
  head_config.replication_grace_ms = 500;
  head_config.replica_suspect_ttl_ms = 2000;
  head_config.replication_chunk = 64 * 1024;  // force multi-chunk copies
  core::ClarensServer head(std::move(head_config));
  head.attach_discovery(discovery);
  head.start();
  const std::string head_url = head.url();

  const std::array<const char*, 3> names = {"fst1", "fst2", "fst3"};
  std::array<std::string, 3> dirs;
  std::array<std::unique_ptr<core::ClarensServer>, 3> storages;
  for (std::size_t i = 0; i < storages.size(); ++i) {
    dirs[i] = tmp.sub(names[i]);
    storages[i] = std::make_unique<core::ClarensServer>(
        node_config(pki, names[i], core::NodeRole::Storage, dirs[i], head_url,
                    station.port()));
    storages[i]->start();
  }
  ASSERT_NE(head.router(), nullptr);
  ASSERT_NE(head.replicator(), nullptr);
  ASSERT_TRUE(eventually(
      [&] { return head.router()->storage_nodes().size() == 3; }))
      << "head never saw all three storage nodes via discovery";

  client::ClientOptions base;
  base.credential = pki.alice;
  base.trust = &pki.trust;
  client::RoutedClient client(head_url, base, /*max_attempts=*/40,
                              /*retry_backoff_ms=*/100);
  client.authenticate();

  // A workload across many placement prefixes, including one file large
  // enough that its replica copy needs several read/append hops.
  std::map<std::string, std::string> written;
  for (int i = 0; i < 10; ++i) {
    std::string run = "/data/rep" + std::to_string(i);
    std::string path = run + "/evt.bin";
    std::string payload =
        i == 0 ? std::string(150 * 1024, static_cast<char>('a' + i))
               : "payload-" + std::to_string(i) + "-" + std::string(64, 'y');
    client.call("file.mkdir", {rpc::Value(run)});
    ASSERT_TRUE(
        client.call("file.write", {rpc::Value(path), rpc::Value(payload)})
            .as_bool());
    written[path] = payload;
  }

  // Every layout converges to 2 healthy replicas with a checksum the
  // writing node itself confirmed.
  auto healthy_replicas = [&](const std::string& path) {
    std::vector<std::string> nodes;
    try {
      rpc::Value layout = client.call("file.layout", {rpc::Value(path)});
      if (!layout.at("confirmed").as_bool()) return nodes;
      for (const rpc::Value& replica : layout.at("replicas").as_array()) {
        if (replica.at("state").as_string() == "healthy") {
          nodes.push_back(replica.at("node").as_string());
        }
      }
    } catch (const std::exception&) {
    }
    return nodes;
  };
  auto fully_replicated = [&] {
    for (const auto& [path, payload] : written) {
      if (healthy_replicas(path).size() < 2) return false;
    }
    return true;
  };
  ASSERT_TRUE(eventually_for(15, fully_replicated))
      << "initial replication never converged";

  // The table and the disks agree: each file sits on exactly the two
  // nodes its layout names, byte-identical to what the client wrote.
  for (const auto& [path, payload] : written) {
    std::vector<std::string> nodes = healthy_replicas(path);
    ASSERT_EQ(nodes.size(), 2u) << path;
    std::string rel = path.substr(std::string("/data").size());
    int copies_on_disk = 0;
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      bool listed = std::find(nodes.begin(), nodes.end(),
                              std::string("fedfarm/") + names[i]) !=
                    nodes.end();
      bool on_disk = std::filesystem::exists(dirs[i] + rel);
      EXPECT_EQ(listed, on_disk) << path << " on " << names[i];
      if (on_disk) {
        ++copies_on_disk;
        EXPECT_EQ(disk_bytes(dirs[i] + rel), payload) << path;
      }
    }
    EXPECT_EQ(copies_on_disk, 2) << path;
  }

  // Control plane: the layout reports its placement, the engine its work.
  rpc::Value layout =
      client.call("file.layout", {rpc::Value("/data/rep0/evt.bin")});
  EXPECT_EQ(layout.at("replica_count").as_int(), 2);
  EXPECT_EQ(layout.at("checksum").as_string().size(), 32u);
  EXPECT_FALSE(layout.at("ring_owners").as_array().empty());
  rpc::Value listing = client.call("replica.list", {rpc::Value("/data")});
  EXPECT_EQ(listing.as_array().size(), written.size());
  rpc::Value status = client.call("replica.status", {});
  EXPECT_GE(status.at("commits").as_int(),
            static_cast<std::int64_t>(written.size()));
  EXPECT_GE(status.at("copies").as_int(),
            static_cast<std::int64_t>(written.size()));

#ifdef CLARENS_FAULT_INJECTION
  // A storage node whose disk refuses a write must surface the error to
  // the writer — and recover on the next attempt once the (one-shot)
  // fault is spent.
  util::FaultInjector::instance().arm("file.write.eio", /*times=*/1);
  EXPECT_THROW(client.call("file.write", {rpc::Value("/data/rep1/eio.bin"),
                                          rpc::Value(std::string("doomed"))}),
               std::exception);
  EXPECT_EQ(util::FaultInjector::instance().fired("file.write.eio"), 1u);
  util::FaultInjector::instance().reset();
  ASSERT_TRUE(client
                  .call("file.write", {rpc::Value("/data/rep1/eio.bin"),
                                       rpc::Value(std::string("recovered"))})
                  .as_bool());
  written["/data/rep1/eio.bin"] = "recovered";
  ASSERT_TRUE(eventually_for(15, fully_replicated));
#endif

  // Kill a replica-holding node for good. The client keeps reading the
  // whole workload: reads may bounce once to the dead node, but the
  // retry-through-head loop plus suspect tracking must deliver every
  // byte with zero caller-visible failures.
  std::size_t victim = 2;
  while (victim > 0 && files_under(dirs[victim]) == 0) --victim;
  ASSERT_GT(files_under(dirs[victim]), 0u);
  std::string victim_id = std::string("fedfarm/") + names[victim];
  storages[victim]->stop();
  storages[victim].reset();

  std::size_t failed = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& [path, payload] : written) {
      try {
        rpc::Value bytes = client.call(
            "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                          rpc::Value(std::int64_t{1 << 20})});
        EXPECT_EQ(as_string(bytes), payload) << path;
      } catch (const std::exception& e) {
        ADD_FAILURE() << "read failed while " << victim_id
                      << " was dead: " << path << ": " << e.what();
        ++failed;
      }
    }
  }
  EXPECT_EQ(failed, 0u);

  // The repair engine re-replicates everything onto the survivors once
  // the node is past discovery TTL + grace.
  auto survivors_hold_everything = [&] {
    for (const auto& [path, payload] : written) {
      std::vector<std::string> nodes = healthy_replicas(path);
      if (nodes.size() < 2) return false;
      for (const std::string& node : nodes) {
        if (node == victim_id) return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(eventually_for(30, survivors_hold_everything))
      << "re-replication after node death never converged";
  for (const auto& [path, payload] : written) {
    std::string rel = path.substr(std::string("/data").size());
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      if (i == victim) continue;
      EXPECT_EQ(disk_bytes(dirs[i] + rel), payload)
          << path << " on survivor " << names[i];
    }
  }

  // Bit rot: flip one bit in one replica on disk (mtime preserved — a
  // rotted sector announces nothing). The scrub must catch the replica
  // whose hash diverges from the confirmed layout checksum and repair it
  // from the healthy copy, byte-identical.
  const std::string rot_path = "/data/rep3/evt.bin";
  const std::string rot_rel = rot_path.substr(std::string("/data").size());
  std::size_t rotten = victim == 0 ? 1 : 0;
  ASSERT_TRUE(std::filesystem::exists(dirs[rotten] + rot_rel));
  ASSERT_TRUE(
      util::FaultInjector::bit_flip(dirs[rotten] + rot_rel, 4, 0x10));
  ASSERT_NE(disk_bytes(dirs[rotten] + rot_rel), written.at(rot_path));

  rpc::Value fsck = client.call("replica.fsck", {rpc::Value("/data")});
  EXPECT_GE(fsck.at("mismatched").as_int(), 1);
  EXPECT_GE(fsck.at("repaired").as_int(), 1);
  EXPECT_EQ(fsck.at("failed").as_int(), 0);
  EXPECT_EQ(fsck.at("under_replicated").as_int(), 0);
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    if (i == victim) continue;
    EXPECT_EQ(disk_bytes(dirs[i] + rot_rel), written.at(rot_path))
        << "replica on " << names[i] << " not repaired byte-identical";
  }
  EXPECT_EQ(as_string(client.call(
                "file.read", {rpc::Value(rot_path), rpc::Value(std::int64_t{0}),
                              rpc::Value(std::int64_t{1 << 20})})),
            written.at(rot_path));

  for (auto& storage : storages) {
    if (storage) storage->stop();
  }
  head.stop();
}

// A node ticket is a scoped file *capability*, not a blanket identity:
// the storage node must refuse anything the ticket does not literally
// cover — wrong subtree, mutation on a read-only ticket, or a non-file
// method (the REVIEW finding: a read ticket for /data/run1 must not
// authorize file.rm anywhere as the embedded DN).
TEST(FederationCluster, StorageEnforcesTicketScopeAndVerb) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  discovery::StationServer station;
  std::string dir = tmp.sub("fst");
  core::ClarensServer storage(
      node_config(pki, "fst", core::NodeRole::Storage, dir,
                  "http://127.0.0.1:1/clarens", station.port()));
  storage.start();
  std::filesystem::create_directories(dir + "/run1");
  { std::ofstream(dir + "/run1/evt.bin") << "payload"; }

  auto ticket_for = [&](const std::string& scope, bool write) {
    federation::NodeTicket ticket;
    ticket.dn = "/O=testgrid.org/OU=People/CN=Alice Able";
    ticket.scope = scope;
    ticket.write = write;
    ticket.expires = util::unix_now() + 60;
    return ticket.mint(kSecret);
  };
  auto read_call = [](const std::string& path) {
    return std::vector<rpc::Value>{rpc::Value(path),
                                   rpc::Value(std::int64_t{0}),
                                   rpc::Value(std::int64_t{1 << 20})};
  };

  client::ClientOptions options;
  options.port = storage.port();
  client::ClarensClient client(options);
  client.connect();

  // Read ticket scoped to /data/run1: reads inside the scope work...
  client.set_header("X-Clarens-Node-Ticket",
                    ticket_for("/data/run1", /*write=*/false));
  EXPECT_EQ(as_string(client.call("file.read", read_call("/data/run1/evt.bin"))),
            "payload");
  EXPECT_FALSE(
      client.call("file.stat", {rpc::Value("/data/run1/evt.bin")})
          .at("is_directory")
          .as_bool());
  // ...but no mutations (read-only verb), nothing outside the scope
  // (read or write), and no non-file methods at all.
  EXPECT_THROW(client.call("file.write", {rpc::Value("/data/run1/new.bin"),
                                          rpc::Value(std::string("x"))}),
               rpc::Fault);
  EXPECT_THROW(client.call("file.read", read_call("/data/run2/evt.bin")),
               rpc::Fault);
  EXPECT_THROW(client.call("file.rm", {rpc::Value("/data/run2/evt.bin")}),
               rpc::Fault);
  EXPECT_THROW(client.call("file.mkdir", {rpc::Value("/data/run2")}),
               rpc::Fault);
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{1})}),
               rpc::Fault);

  // Write ticket: mutations inside the scope only.
  client.set_header("X-Clarens-Node-Ticket",
                    ticket_for("/data/run1", /*write=*/true));
  EXPECT_TRUE(client
                  .call("file.write", {rpc::Value("/data/run1/new.bin"),
                                       rpc::Value(std::string("fresh"))})
                  .as_bool());
  EXPECT_EQ(as_string(client.call("file.read", read_call("/data/run1/new.bin"))),
            "fresh");
  EXPECT_THROW(client.call("file.rm", {rpc::Value("/data/run2/evt.bin")}),
               rpc::Fault);

  storage.stop();
}

}  // namespace
}  // namespace clarens
