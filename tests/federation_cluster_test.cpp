// Three-node federation cluster, end-to-end (ISSUE 8 acceptance):
// one head + two storage nodes wired through a discovery fabric.
//
//   * files written through the head land on BOTH storage nodes
//     (consistent-hash placement over namespace prefixes);
//   * reading back through redirect envelopes returns the exact bytes;
//   * the HTTP GET path answers 307 with a ticket-bearing Location that
//     a plain client can follow to the owning node;
//   * killing and restarting one storage node mid-run causes ZERO failed
//     client calls — RoutedClient retries through the head until the
//     node is back.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "client/client.hpp"
#include "client/peer_pool.hpp"
#include "client/routed.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "federation/node_ticket.hpp"
#include "federation/router.hpp"
#include "rpc/fault.hpp"
#include "test_fixtures.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

constexpr const char* kSecret = "federation-cluster-secret";

/// Poll until `predicate` holds or ~5 s elapse (sanitizer headroom).
template <typename F>
bool eventually(F predicate) {
  for (int i = 0; i < 250; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate();
}

core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

core::ClarensConfig node_config(const TestPki& pki, const std::string& node,
                                core::NodeRole role,
                                const std::string& data_dir,
                                const std::string& head_url,
                                std::uint16_t station_port) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.admins = {"/O=testgrid.org/OU=People/CN=Alice Able"};
  core::AclSpec anyone = allow_anyone();
  config.initial_method_acls = {
      {"system", anyone}, {"echo", anyone}, {"file", anyone}};
  core::FileAcl facl;
  facl.read = anyone;
  facl.write = anyone;
  config.initial_file_acls = {{"/data", facl}};
  config.farm = "fedfarm";
  config.node = node;
  config.node_role = role;
  config.node_ticket_secret = kSecret;
  config.head_url = head_url;
  config.station = {{"127.0.0.1", station_port}};
  config.publish_interval_ms = 100;
  config.federation_refresh_ms = 100;
  if (!data_dir.empty()) config.file_roots = {{"/data", data_dir}};
  return config;
}

std::size_t files_under(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

std::string as_string(const rpc::Value& value) {
  auto bytes = value.as_binary();
  return std::string(bytes.begin(), bytes.end());
}

TEST(FederationCluster, RedirectedIoAcrossNodesSurvivesNodeRestart) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;

  // Discovery fabric: one station, one aggregating discovery server.
  // Generous TTL: a node's liveness is decided by connect attempts in
  // this test, not by heartbeat lapses under sanitizer load.
  discovery::StationServer station;
  db::Store store;
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/5);
  discovery.subscribe("127.0.0.1", station.port());

  // Head: owns sessions + namespace, serves no file bytes itself.
  core::ClarensServer head(node_config(pki, "head", core::NodeRole::Head,
                                       /*data_dir=*/"", /*head_url=*/"",
                                       station.port()));
  head.attach_discovery(discovery);
  head.start();
  const std::string head_url = head.url();

  // Two storage nodes, each exporting "/data" from its own directory.
  std::string dir1 = tmp.sub("fst1");
  std::string dir2 = tmp.sub("fst2");
  auto storage1 = std::make_unique<core::ClarensServer>(node_config(
      pki, "fst1", core::NodeRole::Storage, dir1, head_url, station.port()));
  storage1->start();
  auto storage2 = std::make_unique<core::ClarensServer>(node_config(
      pki, "fst2", core::NodeRole::Storage, dir2, head_url, station.port()));
  storage2->start();
  const std::uint16_t storage2_port = storage2->port();

  ASSERT_NE(head.router(), nullptr);
  ASSERT_TRUE(eventually(
      [&] { return head.router()->storage_nodes().size() == 2; }))
      << "head never saw both storage nodes via discovery";

  // Generous retry budget: a restarting node under TSan can take a
  // couple of seconds to come back.
  client::ClientOptions base;
  base.credential = pki.alice;
  base.trust = &pki.trust;
  client::RoutedClient client(head_url, base, /*max_attempts=*/40,
                              /*retry_backoff_ms=*/100);
  client.authenticate();

  // Spread files over many placement prefixes. The ring is
  // deterministic, so with 12 prefixes on 2 nodes both get a share.
  std::map<std::string, std::string> written;
  for (int i = 0; i < 12; ++i) {
    std::string run = "/data/run" + std::to_string(i);
    std::string path = run + "/evt.bin";
    std::string payload =
        "payload-" + std::to_string(i) + "-" + std::string(64, 'x');
    client.call("file.mkdir", {rpc::Value(run)});
    EXPECT_TRUE(
        client.call("file.write", {rpc::Value(path), rpc::Value(payload)})
            .as_bool());
    written[path] = payload;
  }
  EXPECT_GT(client.redirects_followed(), 0u)
      << "calls never bounced through a storage node";
  EXPECT_GT(files_under(dir1), 0u) << "placement starved node fst1";
  EXPECT_GT(files_under(dir2), 0u) << "placement starved node fst2";

  // Redirected read == written bytes, for every file.
  for (const auto& [path, payload] : written) {
    rpc::Value bytes = client.call(
        "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                      rpc::Value(std::int64_t{1 << 20})});
    EXPECT_EQ(as_string(bytes), payload) << path;
  }

  // Fan-out listing merges both nodes' views of the one namespace.
  rpc::Value listing = client.call("file.ls", {rpc::Value("/data")});
  EXPECT_EQ(listing.as_array().size(), 12u);

  // file.find fans out likewise and merges full paths.
  rpc::Value hits = client.call(
      "file.find", {rpc::Value("/data"), rpc::Value("evt")});
  EXPECT_EQ(hits.as_array().size(), 12u);

  // Placement introspection names a live owner for each prefix.
  rpc::Value located =
      client.call("file.locate", {rpc::Value("/data/run0/evt.bin")});
  EXPECT_EQ(located.at("prefix").as_string(), "/data/run0");
  ASSERT_FALSE(located.at("owners").as_array().empty());

  // The GET path: the head answers 307 with a ticket-bearing Location;
  // following it manually on a fresh plain client yields the bytes.
  http::Response redirect = client.head().get("/data/run0/evt.bin");
  ASSERT_EQ(redirect.status, 307);
  const std::string* location = redirect.headers.find("Location");
  ASSERT_NE(location, nullptr);
  client::PeerEndpoint target = client::PeerEndpoint::parse(*location);
  std::size_t path_pos = location->find('/', location->find("://") + 3);
  ASSERT_NE(path_pos, std::string::npos);
  client::ClientOptions direct_options;
  direct_options.host = target.host;
  direct_options.port = target.port;
  client::ClarensClient direct(direct_options);
  direct.connect();
  http::Response got = direct.get(location->substr(path_pos));
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, written.at("/data/run0/evt.bin"));
  // Tickets are scoped to one placement prefix: presenting run0's
  // ticket for a run1 path is refused outright.
  std::size_t query_pos = location->find("?ticket=");
  ASSERT_NE(query_pos, std::string::npos);
  // GET-minted tickets are read-only capabilities carrying the session
  // identity: the query string is loggable, so a leaked token must
  // never authorize a mutation.
  {
    std::string token = location->substr(query_pos + 8);
    if (auto amp = token.find('&'); amp != std::string::npos) {
      token.resize(amp);
    }
    auto minted = federation::NodeTicket::verify(kSecret, token,
                                                 util::unix_now());
    ASSERT_TRUE(minted.has_value());
    EXPECT_EQ(minted->dn, "/O=testgrid.org/OU=People/CN=Alice Able");
    EXPECT_EQ(minted->scope, "/data/run0");
    EXPECT_FALSE(minted->write);
  }
  EXPECT_EQ(
      direct.get("/data/run1/evt.bin" + location->substr(query_pos)).status,
      403);

  // The Location percent-encodes the path: a file name with a space
  // survives the redirect hop as a well-formed URL and decodes back to
  // the same file on the owning node.
  std::string odd_path = "/data/run0/evt copy.bin";
  EXPECT_TRUE(client
                  .call("file.write", {rpc::Value(odd_path),
                                       rpc::Value(std::string("spacey"))})
                  .as_bool());
  http::Response odd_redirect = client.head().get("/data/run0/evt%20copy.bin");
  ASSERT_EQ(odd_redirect.status, 307);
  const std::string* odd_location = odd_redirect.headers.find("Location");
  ASSERT_NE(odd_location, nullptr);
  EXPECT_NE(odd_location->find("/data/run0/evt%20copy.bin"),
            std::string::npos)
      << *odd_location;
  std::size_t odd_path_pos =
      odd_location->find('/', odd_location->find("://") + 3);
  ASSERT_NE(odd_path_pos, std::string::npos);
  // Same placement prefix as run0's evt.bin, so `direct` already points
  // at the owning node.
  http::Response odd_got = direct.get(odd_location->substr(odd_path_pos));
  EXPECT_EQ(odd_got.status, 200);
  EXPECT_EQ(odd_got.body, "spacey");

  // Kill storage node 2 and restart it on the same port in the
  // background while the client keeps reading every file: the retry-
  // through-head loop must ride out the restart with zero failures.
  storage2->stop();
  storage2.reset();
  util::Thread restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    core::ClarensConfig config = node_config(
        pki, "fst2", core::NodeRole::Storage, dir2, head_url, station.port());
    config.port = storage2_port;
    storage2 = std::make_unique<core::ClarensServer>(std::move(config));
    storage2->start();
  });
  std::size_t failed = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& [path, payload] : written) {
      try {
        rpc::Value bytes = client.call(
            "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                          rpc::Value(std::int64_t{1 << 20})});
        EXPECT_EQ(as_string(bytes), payload) << path;
      } catch (const Error& e) {
        ADD_FAILURE() << "client call failed during restart: " << path
                      << ": " << e.what();
        ++failed;
      } catch (const rpc::Fault& e) {
        ADD_FAILURE() << "client call faulted during restart: " << path
                      << ": " << e.what();
        ++failed;
      }
    }
  }
  restarter.join();
  EXPECT_EQ(failed, 0u);

  // The restarted node serves its files again, first try.
  for (const auto& [path, payload] : written) {
    EXPECT_EQ(as_string(client.call(
                  "file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                                rpc::Value(std::int64_t{1 << 20})})),
              payload);
  }

  storage2->stop();
  storage1->stop();
  head.stop();
}

// A node ticket is a scoped file *capability*, not a blanket identity:
// the storage node must refuse anything the ticket does not literally
// cover — wrong subtree, mutation on a read-only ticket, or a non-file
// method (the REVIEW finding: a read ticket for /data/run1 must not
// authorize file.rm anywhere as the embedded DN).
TEST(FederationCluster, StorageEnforcesTicketScopeAndVerb) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  discovery::StationServer station;
  std::string dir = tmp.sub("fst");
  core::ClarensServer storage(
      node_config(pki, "fst", core::NodeRole::Storage, dir,
                  "http://127.0.0.1:1/clarens", station.port()));
  storage.start();
  std::filesystem::create_directories(dir + "/run1");
  { std::ofstream(dir + "/run1/evt.bin") << "payload"; }

  auto ticket_for = [&](const std::string& scope, bool write) {
    federation::NodeTicket ticket;
    ticket.dn = "/O=testgrid.org/OU=People/CN=Alice Able";
    ticket.scope = scope;
    ticket.write = write;
    ticket.expires = util::unix_now() + 60;
    return ticket.mint(kSecret);
  };
  auto read_call = [](const std::string& path) {
    return std::vector<rpc::Value>{rpc::Value(path),
                                   rpc::Value(std::int64_t{0}),
                                   rpc::Value(std::int64_t{1 << 20})};
  };

  client::ClientOptions options;
  options.port = storage.port();
  client::ClarensClient client(options);
  client.connect();

  // Read ticket scoped to /data/run1: reads inside the scope work...
  client.set_header("X-Clarens-Node-Ticket",
                    ticket_for("/data/run1", /*write=*/false));
  EXPECT_EQ(as_string(client.call("file.read", read_call("/data/run1/evt.bin"))),
            "payload");
  EXPECT_FALSE(
      client.call("file.stat", {rpc::Value("/data/run1/evt.bin")})
          .at("is_directory")
          .as_bool());
  // ...but no mutations (read-only verb), nothing outside the scope
  // (read or write), and no non-file methods at all.
  EXPECT_THROW(client.call("file.write", {rpc::Value("/data/run1/new.bin"),
                                          rpc::Value(std::string("x"))}),
               rpc::Fault);
  EXPECT_THROW(client.call("file.read", read_call("/data/run2/evt.bin")),
               rpc::Fault);
  EXPECT_THROW(client.call("file.rm", {rpc::Value("/data/run2/evt.bin")}),
               rpc::Fault);
  EXPECT_THROW(client.call("file.mkdir", {rpc::Value("/data/run2")}),
               rpc::Fault);
  EXPECT_THROW(client.call("echo.echo", {rpc::Value(std::int64_t{1})}),
               rpc::Fault);

  // Write ticket: mutations inside the scope only.
  client.set_header("X-Clarens-Node-Ticket",
                    ticket_for("/data/run1", /*write=*/true));
  EXPECT_TRUE(client
                  .call("file.write", {rpc::Value("/data/run1/new.bin"),
                                       rpc::Value(std::string("fresh"))})
                  .as_bool());
  EXPECT_EQ(as_string(client.call("file.read", read_call("/data/run1/new.bin"))),
            "fresh");
  EXPECT_THROW(client.call("file.rm", {rpc::Value("/data/run2/evt.bin")}),
               rpc::Fault);

  storage.stop();
}

}  // namespace
}  // namespace clarens
