// Unit tests for the self-healing replication layer (ISSUE 10):
// FileLayout encode/decode, the LayoutTable over db::Store, the
// FaultInjector switchboard, the client RetryPolicy schedule, and the
// Replicator's event intake / suspect tracking without its worker
// thread (cluster behavior is covered by federation_cluster_test).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "client/routed.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "federation/layout.hpp"
#include "federation/replicator.hpp"
#include "federation/router.hpp"
#include "util/fault.hpp"

namespace clarens {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// FileLayout value format

TEST(FileLayout, EncodeDecodeRoundtrip) {
  federation::FileLayout layout;
  layout.path = "/data/run1/evt.bin";
  layout.replica_count = 3;
  layout.checksum = "d41d8cd98f00b204e9800998ecf8427e";
  layout.confirmed = true;
  layout.size = 4096;
  layout.updated_at = 1754700000;
  layout.dn = "/O=testgrid.org/OU=People/CN=Alice Able";  // embedded spaces
  layout.via_proxy = true;
  layout.proxy_serial = "0123ABCD";
  layout.replicas = {{"fedfarm/fst1", federation::ReplicaState::Healthy},
                     {"fedfarm/fst two", federation::ReplicaState::Pending},
                     {"fedfarm/fst3", federation::ReplicaState::Stale},
                     {"fedfarm/fst4", federation::ReplicaState::Missing}};

  auto decoded =
      federation::FileLayout::decode(layout.path, layout.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->path, layout.path);
  EXPECT_EQ(decoded->replica_count, 3);
  EXPECT_EQ(decoded->checksum, layout.checksum);
  EXPECT_TRUE(decoded->confirmed);
  EXPECT_EQ(decoded->size, 4096);
  EXPECT_EQ(decoded->updated_at, 1754700000);
  EXPECT_EQ(decoded->dn, layout.dn);
  EXPECT_TRUE(decoded->via_proxy);
  EXPECT_EQ(decoded->proxy_serial, "0123ABCD");
  ASSERT_EQ(decoded->replicas.size(), 4u);
  EXPECT_EQ(decoded->replicas[1].node_id, "fedfarm/fst two");
  EXPECT_EQ(decoded->replicas[1].state, federation::ReplicaState::Pending);
  EXPECT_EQ(decoded->replicas[3].state, federation::ReplicaState::Missing);
}

TEST(FileLayout, AdoptedChecksumRoundtripsAsUnconfirmed) {
  federation::FileLayout layout;
  layout.path = "/d/f";
  layout.checksum = "abc123";
  layout.confirmed = false;
  auto decoded = federation::FileLayout::decode("/d/f", layout.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->checksum, "abc123");
  EXPECT_FALSE(decoded->confirmed);
}

TEST(FileLayout, DecodeSkipsUnknownLinesAndBadReplicas) {
  // Forward compatibility: a layout written by a newer build with extra
  // keys must still load; malformed replica lines are dropped, not fatal.
  std::string value =
      "v1\n"
      "replica_count 2\n"
      "erasure_profile rs-6-3\n"  // future key
      "size 10\n"
      "replica healthy fedfarm/fst1\n"
      "replica warp-speed fedfarm/fst2\n"  // unknown state
      "replica healthy\n";                 // no node id
  auto decoded = federation::FileLayout::decode("/d/f", value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->replica_count, 2);
  EXPECT_EQ(decoded->size, 10);
  ASSERT_EQ(decoded->replicas.size(), 1u);
  EXPECT_EQ(decoded->replicas[0].node_id, "fedfarm/fst1");
}

TEST(FileLayout, DecodeRejectsUnknownVersion) {
  EXPECT_FALSE(federation::FileLayout::decode("/d/f", "v999\nsize 1\n"));
  EXPECT_FALSE(federation::FileLayout::decode("/d/f", ""));
}

TEST(FileLayout, MarkAndCount) {
  federation::FileLayout layout;
  layout.mark("a", federation::ReplicaState::Pending);
  layout.mark("b", federation::ReplicaState::Healthy);
  layout.mark("a", federation::ReplicaState::Healthy);  // update, not append
  ASSERT_EQ(layout.replicas.size(), 2u);
  EXPECT_EQ(layout.count(federation::ReplicaState::Healthy), 2);
  EXPECT_EQ(layout.count(federation::ReplicaState::Pending), 0);
  ASSERT_NE(layout.find("b"), nullptr);
  EXPECT_EQ(layout.find("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// LayoutTable persistence

TEST(LayoutTable, PutGetUpdateEraseAndPrefixScan) {
  db::Store store;
  federation::LayoutTable table(store);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.get("/data/run1/a").has_value());

  federation::FileLayout layout;
  layout.path = "/data/run1/a";
  layout.replica_count = 2;
  layout.mark("fedfarm/fst1", federation::ReplicaState::Pending);
  table.put(layout);
  layout.path = "/data/run2/b";
  table.put(layout);
  layout.path = "/other/c";
  table.put(layout);
  EXPECT_EQ(table.size(), 3u);

  auto loaded = table.get("/data/run1/a");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->replica_count, 2);
  EXPECT_GT(loaded->updated_at, 0);  // put() stamps the write time
  ASSERT_EQ(loaded->replicas.size(), 1u);
  EXPECT_EQ(loaded->replicas[0].state, federation::ReplicaState::Pending);

  // Atomic read-modify-write: fn sees the stored copy, its edit persists.
  table.update("/data/run1/a", [](federation::FileLayout& l) {
    l.mark("fedfarm/fst1", federation::ReplicaState::Healthy);
    l.checksum = "feed";
    l.confirmed = true;
    return true;
  });
  loaded = table.get("/data/run1/a");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->confirmed);
  EXPECT_EQ(loaded->replicas[0].state, federation::ReplicaState::Healthy);

  // Returning false leaves the row untouched.
  table.update("/data/run1/a", [](federation::FileLayout& l) {
    l.checksum = "discarded";
    return false;
  });
  EXPECT_EQ(table.get("/data/run1/a")->checksum, "feed");

  // update() on an absent path hands fn a fresh layout with path set.
  table.update("/new/file", [](federation::FileLayout& l) {
    EXPECT_EQ(l.path, "/new/file");
    EXPECT_TRUE(l.replicas.empty());
    return true;
  });
  EXPECT_TRUE(table.get("/new/file").has_value());

  std::vector<std::string> under_data = table.paths("/data");
  ASSERT_EQ(under_data.size(), 2u);
  EXPECT_EQ(under_data[0], "/data/run1/a");  // sorted
  EXPECT_EQ(under_data[1], "/data/run2/b");
  EXPECT_EQ(table.paths("").size(), 4u);

  table.erase("/other/c");
  EXPECT_FALSE(table.get("/other/c").has_value());
  EXPECT_EQ(table.size(), 3u);
}

// ---------------------------------------------------------------------------
// FaultInjector

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { util::FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, UnarmedNeverFires) {
  EXPECT_FALSE(util::FaultInjector::fire("file.write.eio", "/any"));
  EXPECT_EQ(util::FaultInjector::instance().fired("file.write.eio"), 0u);
}

TEST_F(FaultInjectorTest, DetailSubstringGatesTheFault) {
  auto& faults = util::FaultInjector::instance();
  faults.arm("file.write.eio", /*times=*/-1, "/fst2");
  EXPECT_FALSE(util::FaultInjector::fire("file.write.eio", "/data/fst1/x"));
  EXPECT_TRUE(util::FaultInjector::fire("file.write.eio", "/data/fst2/x"));
  EXPECT_FALSE(util::FaultInjector::fire("net.connect", "/data/fst2/x"));
  EXPECT_EQ(faults.fired("file.write.eio"), 1u);
  faults.disarm("file.write.eio");
  EXPECT_FALSE(util::FaultInjector::fire("file.write.eio", "/data/fst2/x"));
}

TEST_F(FaultInjectorTest, CountedArmExhaustsItsBudget) {
  auto& faults = util::FaultInjector::instance();
  faults.arm("net.connect", /*times=*/2);
  EXPECT_TRUE(util::FaultInjector::fire("net.connect", "a:1"));
  EXPECT_TRUE(util::FaultInjector::fire("net.connect", "b:2"));
  EXPECT_FALSE(util::FaultInjector::fire("net.connect", "c:3"));
  EXPECT_EQ(faults.fired("net.connect"), 2u);
}

TEST_F(FaultInjectorTest, ArmFromSpecParsesEntries) {
  auto& faults = util::FaultInjector::instance();
  faults.arm_from_spec("file.write.eio@/fst2=1;net.connect");
  EXPECT_FALSE(util::FaultInjector::fire("file.write.eio", "/fst1/x"));
  EXPECT_TRUE(util::FaultInjector::fire("file.write.eio", "/fst2/x"));
  EXPECT_FALSE(util::FaultInjector::fire("file.write.eio", "/fst2/x"));
  EXPECT_TRUE(util::FaultInjector::fire("net.connect", "anything"));
  EXPECT_TRUE(util::FaultInjector::fire("net.connect", ""));
}

TEST_F(FaultInjectorTest, BitFlipCorruptsOneBitAndPreservesMtime) {
  fs::path dir = fs::temp_directory_path() / "clarens_fault_test";
  fs::create_directories(dir);
  fs::path file = dir / "replica.bin";
  {
    std::ofstream out(file, std::ios::binary);
    out << "hello replica";
  }
  fs::file_time_type before = fs::last_write_time(file);
  // A rotted sector does not update timestamps; bit_flip must not either.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(util::FaultInjector::bit_flip(file.string(), 1, 0x40));
  EXPECT_EQ(fs::last_write_time(file), before);
  std::ifstream in(file, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "h%llo replica");  // 'e' ^ 0x40 == '%'
  EXPECT_EQ(content.size(), 13u);

  EXPECT_FALSE(util::FaultInjector::bit_flip(file.string(), 9999));
  EXPECT_FALSE(util::FaultInjector::bit_flip((dir / "absent").string(), 0));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// RetryPolicy (client-side backoff schedule)

TEST(RetryPolicy, JitterlessScheduleIsExactCappedExponential) {
  client::RetryPolicy policy;
  policy.base_ms = 100;
  policy.max_ms = 5000;
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  std::uint64_t state = policy.seed;
  std::vector<int> schedule;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    schedule.push_back(policy.delay_ms(attempt, state));
  }
  EXPECT_EQ(schedule, (std::vector<int>{100, 200, 400, 800, 1600, 3200, 5000,
                                        5000}));
  EXPECT_EQ(policy.delay_ms(0, state), 0);  // first attempt never waits
}

TEST(RetryPolicy, SameSeedSameSchedule) {
  client::RetryPolicy policy;  // defaults: jitter 0.25, seeded PRNG
  std::uint64_t a = policy.seed;
  std::uint64_t b = policy.seed;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(policy.delay_ms(attempt, a), policy.delay_ms(attempt, b))
        << "attempt " << attempt;
  }
  EXPECT_EQ(a, b);
}

TEST(RetryPolicy, JitterStaysWithinTheConfiguredBand) {
  client::RetryPolicy policy;
  policy.base_ms = 1000;
  policy.max_ms = 1000;  // flat, so the band is easy to state
  policy.jitter = 0.25;
  std::uint64_t state = policy.seed;
  bool saw_spread = false;
  for (int attempt = 1; attempt <= 50; ++attempt) {
    int delay = policy.delay_ms(attempt, state);
    EXPECT_GE(delay, 750);
    EXPECT_LE(delay, 1250);
    if (delay != 1000) saw_spread = true;
  }
  EXPECT_TRUE(saw_spread);  // jitter actually does something
}

TEST(RetryPolicy, TogglingJitterDoesNotShiftLaterDelays) {
  // The PRNG advances even at jitter=0, so two policies differing only
  // in jitter consume randomness identically.
  client::RetryPolicy flat;
  flat.jitter = 0.0;
  client::RetryPolicy jittered = flat;
  jittered.jitter = 0.25;
  std::uint64_t a = flat.seed;
  std::uint64_t b = jittered.seed;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    flat.delay_ms(attempt, a);
    jittered.delay_ms(attempt, b);
  }
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Replicator event intake (no worker thread, empty ring)

class ReplicatorTest : public ::testing::Test {
 protected:
  ReplicatorTest()
      : discovery_(store_, /*record_ttl=*/60),
        router_(discovery_, make_router_options()),
        layouts_(store_) {}

  static federation::RouterOptions make_router_options() {
    federation::RouterOptions options;
    options.secret = "replication-test-secret";
    options.refresh_ms = 0;
    return options;
  }

  federation::Replicator make_replicator(int replicas = 2) {
    federation::ReplicatorOptions options;
    options.replicas = replicas;
    options.suspect_ttl_ms = 60000;
    return federation::Replicator(router_, layouts_, std::move(options));
  }

  db::Store store_;
  discovery::DiscoveryServer discovery_;
  federation::Router router_;
  federation::LayoutTable layouts_;
  federation::WriterIdentity alice_{"/O=testgrid.org/CN=Alice", false, ""};
};

TEST_F(ReplicatorTest, NoteWriteRecordsPendingPrimaryAndWriter) {
  federation::Replicator replicator = make_replicator(/*replicas=*/2);
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);

  auto layout = layouts_.get("/data/run1/a");
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->replica_count, 2);  // stamped from options
  EXPECT_TRUE(layout->checksum.empty());
  EXPECT_FALSE(layout->confirmed);
  EXPECT_EQ(layout->dn, alice_.dn);
  ASSERT_EQ(layout->replicas.size(), 1u);
  EXPECT_EQ(layout->replicas[0].node_id, "fedfarm/fst1");
  EXPECT_EQ(layout->replicas[0].state, federation::ReplicaState::Pending);
  EXPECT_EQ(replicator.stats().enqueued, 1u);
  EXPECT_EQ(replicator.stats().queue_depth, 1u);  // worker never started
}

TEST_F(ReplicatorTest, CommitConfirmsChecksumAndPromotesThePrimary) {
  federation::Replicator replicator = make_replicator();
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
  replicator.note_commit("/data/run1/a", "fedfarm/fst1", "cafe1234", 42,
                         alice_);

  auto layout = layouts_.get("/data/run1/a");
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->checksum, "cafe1234");
  EXPECT_TRUE(layout->confirmed);
  EXPECT_EQ(layout->size, 42);
  EXPECT_EQ(layout->replicas[0].state, federation::ReplicaState::Healthy);
  EXPECT_EQ(replicator.stats().commits, 1u);
}

TEST_F(ReplicatorTest, RewriteDemotesSurvivingHealthyReplicas) {
  federation::Replicator replicator = make_replicator();
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
  replicator.note_commit("/data/run1/a", "fedfarm/fst1", "v1hash", 10, alice_);
  // Second replica caught up, then the file is overwritten via fst2.
  layouts_.update("/data/run1/a", [](federation::FileLayout& l) {
    l.mark("fedfarm/fst2", federation::ReplicaState::Healthy);
    return true;
  });
  replicator.note_write("/data/run1/a", "fedfarm/fst2", alice_);

  auto layout = layouts_.get("/data/run1/a");
  ASSERT_TRUE(layout.has_value());
  EXPECT_TRUE(layout->checksum.empty());  // unknown until the next commit
  EXPECT_FALSE(layout->confirmed);
  // New primary first and pending; the old copy is stale, never served.
  ASSERT_EQ(layout->replicas.size(), 2u);
  EXPECT_EQ(layout->replicas[0].node_id, "fedfarm/fst2");
  EXPECT_EQ(layout->replicas[0].state, federation::ReplicaState::Pending);
  ASSERT_NE(layout->find("fedfarm/fst1"), nullptr);
  EXPECT_EQ(layout->find("fedfarm/fst1")->state,
            federation::ReplicaState::Stale);
}

TEST_F(ReplicatorTest, CommitWithoutRedirectAdoptsTheFile) {
  // A client that wrote straight to a storage node with a ticket: the
  // head only learns of the file from the commit notification.
  federation::Replicator replicator = make_replicator();
  replicator.note_commit("/data/direct", "fedfarm/fst3", "beef", 7, alice_);
  auto layout = layouts_.get("/data/direct");
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->replica_count, 2);
  EXPECT_EQ(layout->dn, alice_.dn);
  EXPECT_TRUE(layout->confirmed);
  EXPECT_EQ(layout->replicas[0].node_id, "fedfarm/fst3");
}

TEST_F(ReplicatorTest, NoteRemoveHonorsComponentBoundaries) {
  federation::Replicator replicator = make_replicator();
  replicator.note_write("/data/run1", "fedfarm/fst1", alice_);
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
  replicator.note_write("/data/run10/b", "fedfarm/fst1", alice_);
  std::uint64_t before = replicator.stats().enqueued;
  // Tree remove of /data/run1 must purge itself and its child, but NOT
  // /data/run10/b (prefix string match would).
  replicator.note_remove("/data/run1");
  EXPECT_EQ(replicator.stats().enqueued - before, 2u);
}

TEST_F(ReplicatorTest, PickReadNodeIsEmptyOnAnEmptyRing) {
  federation::Replicator replicator = make_replicator();
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
  EXPECT_FALSE(replicator.pick_read_node("/data/run1/a").has_value());
  EXPECT_FALSE(replicator.pick_read_node("/unmanaged").has_value());
}

TEST_F(ReplicatorTest, ReportedFailuresMarkSuspectsByUrl) {
  federation::Replicator replicator = make_replicator();
  federation::NodeInfo node;
  node.id = "fedfarm/fst1";
  node.url = "http://127.0.0.1:9001/clarens";
  EXPECT_FALSE(replicator.is_suspect(node));
  replicator.report_failure(node.url);
  EXPECT_TRUE(replicator.is_suspect(node));
  EXPECT_EQ(replicator.stats().read_failures_reported, 1u);

  federation::NodeInfo other;
  other.id = "fedfarm/fst2";
  other.url = "http://127.0.0.1:9002/clarens";
  EXPECT_FALSE(replicator.is_suspect(other));
}

TEST_F(ReplicatorTest, DrainEnqueuesEveryFileTouchingTheNode) {
  federation::Replicator replicator = make_replicator();
  replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
  replicator.note_write("/data/run2/b", "fedfarm/fst2", alice_);
  replicator.note_write("/data/run3/c", "fedfarm/fst1", alice_);
  EXPECT_EQ(replicator.drain("fedfarm/fst1"), 2u);
  EXPECT_EQ(replicator.stats().draining, 1u);
  EXPECT_EQ(replicator.drain("fedfarm/absent"), 0u);
}

TEST_F(ReplicatorTest, StartStopIdempotentAndStopWithoutStartIsSafe) {
  {
    federation::Replicator replicator = make_replicator();
    replicator.stop();  // never started
  }
  {
    federation::Replicator replicator = make_replicator();
    replicator.start();
    replicator.start();  // second start is a no-op
    replicator.note_write("/data/run1/a", "fedfarm/fst1", alice_);
    replicator.stop();
    replicator.stop();
  }  // destructor after stop must not hang
}

}  // namespace
}  // namespace clarens
