// Randomized property tests, seeded (deterministic) via the DRBG:
//  * arbitrary Value trees survive every wire codec;
//  * DN parse/render is idempotent;
//  * BigInt arithmetic satisfies ring identities;
//  * codecs (hex/base64/XML escaping) round-trip arbitrary bytes/text.
#include <gtest/gtest.h>

#include <cstring>

#include "crypto/bigint.hpp"
#include "crypto/random.hpp"
#include "pki/dn.hpp"
#include "rpc/binrpc.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/soap.hpp"
#include "rpc/xml.hpp"
#include "rpc/xmlrpc.hpp"
#include "util/hex.hpp"

namespace clarens {
namespace {

using crypto::Drbg;

// ---------- random Value generator ----------

std::string random_text(Drbg& rng, std::size_t max_len) {
  // Printable ASCII plus the XML/JSON special characters and some UTF-8.
  static const char* alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 <>&\"'{}[]\\/\n\t.,;:!?-_";
  std::size_t len = rng.uniform(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng.uniform(std::strlen(alphabet))]);
  }
  return out;
}

rpc::Value random_value(Drbg& rng, int depth) {
  // Containers get rarer with depth; leaves dominate at the bottom.
  std::uint64_t kind = rng.uniform(depth > 0 ? 9 : 7);
  switch (kind) {
    case 0: return rpc::Value();
    case 1: return rpc::Value(rng.uniform(2) == 1);
    case 2: return rpc::Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3: {
      // Doubles from a bit pattern constrained to finite values.
      double d = static_cast<double>(static_cast<std::int64_t>(rng.next_u64())) /
                 1048576.0;
      return rpc::Value(d);
    }
    case 4: return rpc::Value(random_text(rng, 40));
    case 5: return rpc::Value(rng.bytes(rng.uniform(64)));
    case 6:
      return rpc::Value(rpc::DateTime{
          static_cast<std::int64_t>(rng.uniform(4102444800ull))});
    case 7: {
      rpc::Value array = rpc::Value::array();
      std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        array.push(random_value(rng, depth - 1));
      }
      return array;
    }
    default: {
      rpc::Value object = rpc::Value::struct_();
      std::uint64_t n = rng.uniform(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        // Unique-ish keys; struct keys must be non-clashing for equality.
        object.set("k" + std::to_string(i) + random_text(rng, 6),
                   random_value(rng, depth - 1));
      }
      return object;
    }
  }
}

class ValueRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ValueRoundTrip, SurvivesEveryCodec) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam())});
  for (int trial = 0; trial < 20; ++trial) {
    rpc::Value original = random_value(rng, 3);
    rpc::Response response = rpc::Response::success(original);

    rpc::Response via_xml =
        rpc::xmlrpc::parse_response(rpc::xmlrpc::serialize_response(response));
    EXPECT_EQ(via_xml.result, original) << "xmlrpc trial " << trial;

    rpc::Response via_json = rpc::jsonrpc::parse_response(
        rpc::jsonrpc::serialize_response(response));
    EXPECT_EQ(via_json.result, original) << "jsonrpc trial " << trial;

    rpc::Response via_soap =
        rpc::soap::parse_response(rpc::soap::serialize_response(response));
    EXPECT_EQ(via_soap.result, original) << "soap trial " << trial;

    rpc::Response via_bin =
        rpc::binrpc::parse_response(rpc::binrpc::serialize_response(response));
    EXPECT_EQ(via_bin.result, original) << "binrpc trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTrip, ::testing::Range(0, 8));

// Cross-codec transitivity: xml -> value -> json -> value -> binary -> value.
TEST(ValueRoundTrip, CrossCodecChain) {
  Drbg rng(std::vector<std::uint8_t>{42});
  for (int trial = 0; trial < 20; ++trial) {
    rpc::Value original = random_value(rng, 3);
    rpc::Response r = rpc::Response::success(original);
    r = rpc::jsonrpc::parse_response(rpc::jsonrpc::serialize_response(r));
    r = rpc::xmlrpc::parse_response(rpc::xmlrpc::serialize_response(r));
    r = rpc::binrpc::parse_response(rpc::binrpc::serialize_response(r));
    r = rpc::soap::parse_response(rpc::soap::serialize_response(r));
    EXPECT_EQ(r.result, original) << "trial " << trial;
  }
}

// ---------- DN properties ----------

class DnProperties : public ::testing::TestWithParam<int> {};

TEST_P(DnProperties, ParseRenderIdempotent) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 1});
  static const char* keys[] = {"C", "ST", "L", "O", "OU", "CN", "DC"};
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<pki::DistinguishedName::Attribute> attributes;
    std::uint64_t n = 1 + rng.uniform(6);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Values: alnum + spaces + dots (no '=' — DN values exclude it).
      std::string value;
      std::size_t len = 1 + rng.uniform(12);
      static const char* value_alphabet =
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .";
      for (std::size_t j = 0; j < len; ++j) {
        value.push_back(value_alphabet[rng.uniform(std::strlen(value_alphabet))]);
      }
      // Trim-stable values only (parse trims whitespace at edges).
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      while (!value.empty() && value.back() == ' ') value.pop_back();
      if (value.empty()) value = "x";
      attributes.emplace_back(keys[rng.uniform(7)], value);
    }
    pki::DistinguishedName dn(attributes);
    pki::DistinguishedName reparsed = pki::DistinguishedName::parse(dn.str());
    EXPECT_EQ(reparsed, dn) << dn.str();
    // Prefix reflexivity and anti-symmetry with a strict prefix.
    EXPECT_TRUE(dn.is_prefix_of(dn));
    if (dn.size() > 1) {
      pki::DistinguishedName shorter(
          {attributes.begin(), attributes.end() - 1});
      EXPECT_TRUE(shorter.is_prefix_of(dn));
      EXPECT_FALSE(dn.is_prefix_of(shorter));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnProperties, ::testing::Range(0, 4));

// ---------- BigInt ring identities ----------

class BigIntProperties : public ::testing::TestWithParam<int> {};

TEST_P(BigIntProperties, RingIdentities) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 2});
  using crypto::BigInt;
  for (int trial = 0; trial < 10; ++trial) {
    BigInt a = BigInt::random_bits(1 + rng.uniform(192), rng);
    BigInt b = BigInt::random_bits(1 + rng.uniform(192), rng);
    BigInt c = BigInt::random_bits(1 + rng.uniform(64), rng);

    // Commutativity and associativity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    // Distributivity.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Subtraction inverts addition.
    EXPECT_EQ((a + b) - b, a);
    // Division identity.
    auto [q, r] = (a * b + c).divmod(b);
    EXPECT_EQ(q * b + r, a * b + c);
    EXPECT_TRUE(r < b);
    // Shifts are multiplication/division by powers of two.
    EXPECT_EQ(a << 17, a * (BigInt(1) << 17));
    EXPECT_EQ((a << 17) >> 17, a);
    // Bytes and hex round-trips.
    EXPECT_EQ(BigInt::from_bytes(a.to_bytes()), a);
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
  }
}

TEST_P(BigIntProperties, ModExpHomomorphism) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 3});
  using crypto::BigInt;
  for (int trial = 0; trial < 5; ++trial) {
    BigInt n = BigInt::random_bits(128, rng);
    if (!n.is_odd()) n = n + BigInt(1);  // Montgomery path
    BigInt a = BigInt::random_below(n, rng);
    BigInt b = BigInt::random_below(n, rng);
    BigInt e = BigInt::random_bits(24, rng);
    // (a*b)^e == a^e * b^e (mod n)
    EXPECT_EQ((a * b).modexp(e, n), (a.modexp(e, n) * b.modexp(e, n)) % n);
    // a^(e+1) == a^e * a (mod n)
    EXPECT_EQ(a.modexp(e + BigInt(1), n), (a.modexp(e, n) * a) % n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperties, ::testing::Range(0, 4));

// ---------- codec round-trips over random bytes/text ----------

class CodecProperties : public ::testing::TestWithParam<int> {};

TEST_P(CodecProperties, BytesAndTextRoundTrips) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 4});
  for (int trial = 0; trial < 50; ++trial) {
    auto blob = rng.bytes(rng.uniform(200));
    EXPECT_EQ(util::hex_decode(util::hex_encode(blob)), blob);
    EXPECT_EQ(util::base64_decode(util::base64_encode(blob)), blob);

    std::string text = random_text(rng, 120);
    rpc::XmlNode node = rpc::xml_parse("<r>" + rpc::xml_escape(text) + "</r>");
    EXPECT_EQ(node.text, text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperties, ::testing::Range(0, 4));

}  // namespace
}  // namespace clarens
