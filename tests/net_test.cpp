// Unit tests for sockets and the epoll reactor.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace clarens::net {
namespace {

TEST(Tcp, ListenerPicksEphemeralPort) {
  TcpListener listener = TcpListener::listen(0);
  EXPECT_GT(listener.local_port(), 0);
}

TEST(Tcp, EchoRoundTrip) {
  TcpListener listener = TcpListener::listen(0);
  util::Thread server([&listener] {
    TcpConnection conn = listener.accept();
    std::array<std::uint8_t, 64> buf;
    std::size_t n = conn.read(buf);
    conn.write_all(std::span<const std::uint8_t>(buf.data(), n));
  });

  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  client.write_all(std::string_view("hello"));
  std::array<std::uint8_t, 64> buf;
  std::size_t n = client.read(buf);
  EXPECT_EQ(std::string(buf.begin(), buf.begin() + n), "hello");
  server.join();
}

TEST(Tcp, ReadReturnsZeroOnPeerClose) {
  TcpListener listener = TcpListener::listen(0);
  util::Thread server([&listener] {
    TcpConnection conn = listener.accept();
    conn.close();
  });
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  std::array<std::uint8_t, 8> buf;
  EXPECT_EQ(client.read(buf), 0u);
  server.join();
}

TEST(Tcp, ConnectToClosedPortThrows) {
  TcpListener listener = TcpListener::listen(0);
  std::uint16_t dead_port = listener.local_port();
  listener.close();
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port), SystemError);
}

TEST(Tcp, InvalidAddressThrows) {
  EXPECT_THROW(TcpConnection::connect("not-an-ip", 80), SystemError);
}

TEST(Tcp, NonblockingReadReturnsNulloptWhenEmpty) {
  TcpListener listener = TcpListener::listen(0);
  util::Thread server([&listener] {
    TcpConnection conn = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    conn.write_all(std::string_view("x"));
    // Hold the connection briefly so the client can read.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  client.set_nonblocking(true);
  std::array<std::uint8_t, 8> buf;
  EXPECT_EQ(client.read_some(buf), std::nullopt);  // nothing yet
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto n = client.read_some(buf);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1u);
  server.join();
}

TEST(Udp, DatagramRoundTrip) {
  UdpSocket receiver = UdpSocket::bind(0);
  UdpSocket sender = UdpSocket::bind(0);
  sender.send_to("127.0.0.1", receiver.local_port(), std::string_view("ping"));
  auto got = receiver.recv(1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "ping");
}

TEST(Udp, RecvTimesOut) {
  UdpSocket receiver = UdpSocket::bind(0);
  EXPECT_EQ(receiver.recv(50), std::nullopt);
}

TEST(Reactor, DispatchesReadEvents) {
  TcpListener listener = TcpListener::listen(0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  TcpConnection served = listener.accept();
  served.set_nonblocking(true);

  Reactor reactor;
  std::atomic<int> events{0};
  reactor.add(served.fd(), Reactor::kRead, [&](std::uint32_t ready) {
    EXPECT_TRUE(ready & Reactor::kRead);
    std::array<std::uint8_t, 16> buf;
    served.read_some(buf);
    events.fetch_add(1);
  });
  EXPECT_TRUE(reactor.watching(served.fd()));

  client.write_all(std::string_view("a"));
  int handled = 0;
  for (int i = 0; i < 50 && events.load() == 0; ++i) {
    handled += reactor.poll(20);
  }
  EXPECT_EQ(events.load(), 1);
  EXPECT_GE(handled, 1);

  reactor.remove(served.fd());
  EXPECT_FALSE(reactor.watching(served.fd()));
}

TEST(Reactor, CallbackMayRemoveItself) {
  TcpListener listener = TcpListener::listen(0);
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  TcpConnection served = listener.accept();

  Reactor reactor;
  reactor.add(served.fd(), Reactor::kRead, [&](std::uint32_t) {
    reactor.remove(served.fd());
  });
  client.write_all(std::string_view("x"));
  for (int i = 0; i < 50 && reactor.watched() > 0; ++i) reactor.poll(20);
  EXPECT_EQ(reactor.watched(), 0u);
}

TEST(Reactor, StopInterruptsRun) {
  Reactor reactor;
  util::Thread runner([&reactor] { reactor.run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  reactor.stop();
  runner.join();  // must return promptly
  SUCCEED();
}

TEST(Sendfile, TransfersFileRegion) {
  // Write a temp file, serve a slice of it via sendfile.
  std::string path = "/tmp/clarens_sendfile_test.bin";
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("0123456789abcdef", f);
    fclose(f);
  }
  TcpListener listener = TcpListener::listen(0);
  util::Thread server([&listener, &path] {
    TcpConnection conn = listener.accept();
    FILE* f = fopen(path.c_str(), "rb");
    conn.sendfile(fileno(f), 4, 8);
    fclose(f);
  });
  TcpConnection client = TcpConnection::connect("127.0.0.1", listener.local_port());
  std::string got;
  std::array<std::uint8_t, 64> buf;
  for (;;) {
    std::size_t n = client.read(buf);
    if (n == 0) break;
    got.append(buf.begin(), buf.begin() + n);
    if (got.size() >= 8) break;
  }
  EXPECT_EQ(got, "456789ab");
  server.join();
  remove(path.c_str());
}

}  // namespace
}  // namespace clarens::net
