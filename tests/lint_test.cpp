// clarens_lint rule engine: every rule exercised with in-memory fixture
// sources, one passing and one failing case per rule, plus the allow()
// escape hatch and the lexer's literal/comment handling.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace clarens::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Violation>& violations) {
  std::vector<std::string> out;
  for (const auto& violation : violations) out.push_back(violation.rule);
  return out;
}

bool has_rule(const std::vector<Violation>& violations,
              const std::string& rule) {
  return std::any_of(
      violations.begin(), violations.end(),
      [&](const Violation& violation) { return violation.rule == rule; });
}

// --- raw-sync ---------------------------------------------------------

TEST(LintRawSync, FlagsRawPrimitives) {
  auto found = lint_content("src/core/x.cpp",
                            "std::mutex m;\n"
                            "std::condition_variable cv;\n"
                            "std::shared_mutex sm;\n"
                            "std::lock_guard<std::mutex> g(m);\n"
                            "std::thread t;\n");
  // lock_guard line carries two tokens (lock_guard + mutex).
  EXPECT_EQ(found.size(), 6u);
  for (const auto& violation : found) EXPECT_EQ(violation.rule, "raw-sync");
}

TEST(LintRawSync, WrapperAndNestedTypesPass) {
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           "util::Mutex m{util::LockLevel::kCoreJob};\n"
                           "util::Thread t;\n"
                           "std::thread::id tid;\n"
                           "std::thread::hardware_concurrency();\n")
                  .empty());
}

TEST(LintRawSync, SyncHeaderIsExempt) {
  EXPECT_TRUE(
      lint_content("src/util/sync.hpp", "std::mutex impl_;\n").empty());
  // ...but only that file, not the rest of util/ (the thread pool's
  // legacy exemption is gone — it uses the wrappers now).
  EXPECT_TRUE(has_rule(lint_content("src/util/other.hpp", "std::mutex m;\n"),
                       "raw-sync"));
  EXPECT_TRUE(has_rule(
      lint_content("src/util/thread_pool.hpp", "std::thread t;\n"),
      "raw-sync"));
}

TEST(LintRawSync, IgnoresStringsAndComments) {
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           "const char* s = \"std::mutex\";\n"
                           "// std::mutex in prose\n"
                           "/* std::thread t; */\n")
                  .empty());
}

// --- detach -----------------------------------------------------------

TEST(LintDetach, FlagsDetachCalls) {
  EXPECT_TRUE(has_rule(lint_content("src/a.cpp", "t.detach();\n"), "detach"));
  EXPECT_TRUE(
      has_rule(lint_content("src/a.cpp", "worker->detach ();\n"), "detach"));
}

TEST(LintDetach, PlainIdentifierPasses) {
  EXPECT_TRUE(lint_content("src/a.cpp", "bool detach = false;\n").empty());
}

// --- net-blocking -----------------------------------------------------

TEST(LintNetBlocking, FlagsSleepsInNet) {
  auto found = lint_content(
      "src/net/reactor.cpp",
      "std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "usleep(100);\n"
      "sleep(1);\n");
  // Every sleep in src/net/ also counts as a blocking wait, so each line
  // carries the net-blocking and reactor-blocking pair.
  EXPECT_EQ(rules_of(found),
            (std::vector<std::string>{"net-blocking", "reactor-blocking",
                                      "net-blocking", "reactor-blocking",
                                      "net-blocking", "reactor-blocking"}));
}

TEST(LintNetBlocking, OutsideNetPasses) {
  EXPECT_TRUE(lint_content("src/storage/mass_storage.cpp",
                           "std::this_thread::sleep_for(ms);\n")
                  .empty());
}

TEST(LintNetBlocking, NonBlockingNetCodePasses) {
  EXPECT_TRUE(lint_content("src/net/reactor.cpp",
                           "int n = epoll_wait(fd, events, 64, timeout);\n")
                  .empty());
}

// --- reactor-blocking -------------------------------------------------

TEST(LintReactorBlocking, FlagsWaitsInTransportLayers) {
  EXPECT_TRUE(has_rule(
      lint_content("src/net/socket.cpp", "wait_writable(-1);\n"),
      "reactor-blocking"));
  EXPECT_TRUE(has_rule(
      lint_content("src/http/server.cpp", "reactor_thread_.join();\n"),
      "reactor-blocking"));
  EXPECT_TRUE(has_rule(
      lint_content("src/tls/channel.cpp", "done_.wait(lock);\n"),
      "reactor-blocking"));
  EXPECT_TRUE(has_rule(
      lint_content("src/http/server.cpp", "pool_->wait_idle();\n"),
      "reactor-blocking"));
}

TEST(LintReactorBlocking, BoundariesAndScopeRespected) {
  // epoll_wait / joinable share substrings with the tokens but are the
  // reactor's bread and butter; identifier boundaries keep them legal.
  EXPECT_TRUE(lint_content("src/net/reactor.cpp",
                           "int n = epoll_wait(fd, events, 64, t);\n"
                           "if (thread_.joinable()) mark();\n")
                  .empty());
  // Outside src/net, src/http, src/tls the rule does not apply: workers
  // and control threads may block.
  EXPECT_TRUE(lint_content("src/core/server.cpp", "reaper_.join();\n")
                  .empty());
}

TEST(LintReactorBlocking, AllowNamesTheBlessedThread) {
  EXPECT_TRUE(
      lint_content("src/net/socket.cpp",
                   "// clarens-lint: allow(reactor-blocking): worker-side "
                   "blocking write.\n"
                   "wait_writable(-1);\n")
          .empty());
}

// --- layering ---------------------------------------------------------

TEST(LintLayering, RpcAndUtilMustNotReachUp) {
  EXPECT_TRUE(has_rule(
      lint_content("src/rpc/x.cpp", "#include \"core/server.hpp\"\n"),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_content("src/util/x.cpp", "#include \"http/server.hpp\"\n"),
      "layering"));
}

TEST(LintLayering, FederationMustNotReachIntoCore) {
  EXPECT_TRUE(has_rule(
      lint_content("src/federation/router.cpp",
                   "#include \"core/server.hpp\"\n"),
      "layering"));
  // Its sanctioned dependencies pass.
  EXPECT_TRUE(lint_content("src/federation/router.cpp",
                           "#include \"client/peer_pool.hpp\"\n"
                           "#include \"discovery/discovery_server.hpp\"\n"
                           "#include \"rpc/value.hpp\"\n")
                  .empty());
}

TEST(LintLayering, DownwardAndExternalIncludesPass) {
  EXPECT_TRUE(lint_content("src/rpc/x.cpp",
                           "#include \"util/buffer.hpp\"\n"
                           "#include <string>\n")
                  .empty());
  // core/ may include anything.
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           "#include \"http/server.hpp\"\n"
                           "#include \"core/acl.hpp\"\n")
                  .empty());
}

// --- raw-new ----------------------------------------------------------

TEST(LintRawNew, FlagsNewAndDelete) {
  EXPECT_TRUE(
      has_rule(lint_content("src/a.cpp", "auto* p = new Foo();\n"), "raw-new"));
  EXPECT_TRUE(has_rule(lint_content("src/a.cpp", "delete p;\n"), "raw-new"));
}

TEST(LintRawNew, PlacementDeletedAndOperatorPass) {
  EXPECT_TRUE(lint_content("src/a.cpp",
                           "new (arena) Foo();\n"
                           "Foo(const Foo&) = delete;\n"
                           "void* operator new(std::size_t);\n"
                           "void operator delete(void*) noexcept;\n"
                           "sessions_.renew(id, extra);\n")
                  .empty());
}

// --- lock-order -------------------------------------------------------

TEST(LintLockOrder, DeclaredEdgePasses) {
  EXPECT_TRUE(
      lint_content("src/core/x.cpp", "// lock-order: core.job -> db.store.shard\n")
          .empty());
}

TEST(LintLockOrder, InvertedEdgeFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.cpp", "// lock-order: db.store.shard -> core.job\n"),
      "lock-order"));
}

TEST(LintLockOrder, SameRankFlagged) {
  // Two level-20 locks: neither may nest inside the other.
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.cpp",
                   "// lock-order: core.job -> core.transfer\n"),
      "lock-order"));
}

TEST(LintLockOrder, UnknownLevelFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.cpp", "// lock-order: core.job -> bogus\n"),
      "lock-order"));
}

TEST(LintLockOrder, MalformedFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/core/x.cpp",
                                    "// lock-order: core.job db.store.shard\n"),
                       "lock-order"));
}

TEST(LintLockOrder, ProseMentionIgnored) {
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           "// checked against `// lock-order:` comments\n")
                  .empty());
}

// --- allow escape hatch -----------------------------------------------

TEST(LintAllow, SuppressesOnOwnAndNextLine) {
  EXPECT_TRUE(lint_content("src/a.cpp",
                           "// clarens-lint: allow(raw-new): ctor private.\n"
                           "auto* p = new Foo();\n")
                  .empty());
  EXPECT_TRUE(lint_content("src/a.cpp",
                           "auto* p = new Foo();  "
                           "// clarens-lint: allow(raw-new): ctor private.\n")
                  .empty());
}

TEST(LintAllow, DoesNotLeakPastNextLine) {
  auto found = lint_content("src/a.cpp",
                            "// clarens-lint: allow(raw-new): reason.\n"
                            "int x = 0;\n"
                            "auto* p = new Foo();\n");
  EXPECT_TRUE(has_rule(found, "raw-new"));
}

TEST(LintAllow, OnlyNamedRuleSuppressed) {
  auto found = lint_content("src/a.cpp",
                            "// clarens-lint: allow(raw-new): reason.\n"
                            "std::mutex m;\n");
  EXPECT_TRUE(has_rule(found, "raw-sync"));
}

TEST(LintAllow, MissingJustificationFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/a.cpp", "// clarens-lint: allow(raw-new)\n"),
      "bad-allow"));
}

TEST(LintAllow, UnknownRuleFlagged) {
  EXPECT_TRUE(has_rule(
      lint_content("src/a.cpp", "// clarens-lint: allow(nonsense): x.\n"),
      "bad-allow"));
}

// --- output format ----------------------------------------------------

TEST(LintFormat, FileLineRuleMessage) {
  Violation violation{"src/a.cpp", 12, "raw-new", "bare new"};
  EXPECT_EQ(format(violation), "src/a.cpp:12: raw-new: bare new");
}

TEST(LintHierarchy, JournalIsInnermostDbLock) {
  // The commit-queue lock nests under the memtable shard locks (enqueue
  // runs with the shard write lock held), which in turn nest under every
  // service lock that wraps store calls.
  int shard_rank = -1;
  int journal_rank = -1;
  for (const auto& [level, rank] : lock_hierarchy()) {
    if (level == "db.store.shard") shard_rank = rank;
    if (level == "db.store.journal") journal_rank = rank;
  }
  ASSERT_GE(shard_rank, 0);
  ASSERT_GE(journal_rank, 0);
  EXPECT_LT(shard_rank, journal_rank);
  for (const auto& [level, rank] : lock_hierarchy()) {
    if (level.rfind("db.", 0) != 0 && level.rfind("core.", 0) != 0) continue;
    EXPECT_LE(rank, journal_rank) << level << " outranks db.store.journal";
  }
  // Logging is the one global innermost level: loggable under any lock.
  int logging_rank = -1;
  for (const auto& [level, rank] : lock_hierarchy()) {
    if (level == "util.logging") logging_rank = rank;
  }
  ASSERT_GE(logging_rank, 0);
  for (const auto& [level, rank] : lock_hierarchy()) {
    EXPECT_LE(rank, logging_rank) << level << " outranks util.logging";
  }
}

TEST(LintLockOrder, ShardToJournalEdgePasses) {
  EXPECT_TRUE(lint_content("src/db/x.cpp",
                           "// lock-order: db.store.shard -> db.store.journal\n")
                  .empty());
}

TEST(LintLockOrder, SameRankTagAcceptedWhenRanksMatch) {
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           "// lock-order: core.vo.write -> "
                           "core.vo.root_cache (same-rank)\n")
                  .empty());
  // ...and rejected when they differ.
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.cpp",
                   "// lock-order: core.job -> db.store.shard (same-rank)\n"),
      "lock-order"));
}

// --- undeclared-mutex -------------------------------------------------

TEST(LintUndeclaredMutex, FlagsLevellessDeclarations) {
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.hpp", "util::Mutex mutex_;\n"),
      "undeclared-mutex"));
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.hpp", "mutable util::SharedMutex mutex_{};\n"),
      "undeclared-mutex"));
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.hpp",
                   "util::Mutex m{util::LockLevel::kBogusLevel};\n"),
      "undeclared-mutex"));
}

TEST(LintUndeclaredMutex, RankedDeclarationAndReferencesPass) {
  EXPECT_TRUE(lint_content("src/core/x.hpp",
                           "util::Mutex m{util::LockLevel::kCoreJob};\n"
                           "mutable util::SharedMutex sm{\n"
                           "    util::LockLevel::kDbStoreShard};\n"
                           "void take(util::Mutex& m);\n"
                           "explicit Guard(util::SharedMutex* m);\n")
                  .empty());
}

// --- derived lock-order edges (nested guard scopes) -------------------

namespace {
constexpr const char* kTwoLevelDecls =
    "util::Mutex job_{util::LockLevel::kCoreJob};\n"
    "util::Mutex shard_{util::LockLevel::kDbStoreShard};\n"
    "util::Mutex transfer_{util::LockLevel::kCoreTransfer};\n";
}  // namespace

TEST(LintDerivedEdges, DownwardNestingPasses) {
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           std::string(kTwoLevelDecls) +
                               "void f() {\n"
                               "  util::LockGuard a(job_);\n"
                               "  util::LockGuard b(shard_);\n"
                               "}\n")
                  .empty());
}

TEST(LintDerivedEdges, InvertedNestingFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/core/x.cpp",
                                    std::string(kTwoLevelDecls) +
                                        "void f() {\n"
                                        "  util::LockGuard a(shard_);\n"
                                        "  util::LockGuard b(job_);\n"
                                        "}\n"),
                       "lock-order"));
}

TEST(LintDerivedEdges, SameRankNeedsToken) {
  EXPECT_TRUE(has_rule(lint_content("src/core/x.cpp",
                                    std::string(kTwoLevelDecls) +
                                        "void f() {\n"
                                        "  util::LockGuard a(job_);\n"
                                        "  util::LockGuard b(transfer_);\n"
                                        "}\n"),
                       "lock-order"));
  EXPECT_TRUE(
      lint_content("src/core/x.cpp",
                   std::string(kTwoLevelDecls) +
                       "void f() {\n"
                       "  util::LockGuard a(job_);\n"
                       "  util::LockGuard b(transfer_,\n"
                       "                    util::SameRankToken{\"why\"});\n"
                       "}\n")
          .empty());
}

TEST(LintDerivedEdges, GuardScopeEndsAtBrace) {
  // Sequential guards in sibling scopes are not nested.
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           std::string(kTwoLevelDecls) +
                               "void f() {\n"
                               "  { util::LockGuard a(shard_); }\n"
                               "  { util::LockGuard b(job_); }\n"
                               "}\n")
                  .empty());
}

TEST(LintDerivedEdges, RequiresBodyCountsAsGuardScope) {
  // A CLARENS_REQUIRES function body holds the listed lock throughout,
  // so a guard inside it derives an edge...
  EXPECT_TRUE(has_rule(
      lint_content("src/core/x.cpp",
                   std::string(kTwoLevelDecls) +
                       "void f() CLARENS_REQUIRES(shard_) {\n"
                       "  util::LockGuard b(job_);\n"
                       "}\n"),
      "lock-order"));
  // ...but a prototype holds nothing.
  EXPECT_TRUE(lint_content("src/core/x.cpp",
                           std::string(kTwoLevelDecls) +
                               "void f() CLARENS_REQUIRES(shard_);\n"
                               "void g() { util::LockGuard b(job_); }\n")
                  .empty());
}

TEST(LintDerivedEdges, ResolvesThroughPairedHeader) {
  // Declarations live in the header, guards in the matching .cpp.
  std::vector<SourceFile> files = {
      {"src/core/x.hpp", kTwoLevelDecls},
      {"src/core/x.cpp",
       "void f() {\n"
       "  util::LockGuard a(shard_);\n"
       "  util::LockGuard b(job_);\n"
       "}\n"},
  };
  EXPECT_TRUE(has_rule(lint_sources(files), "lock-order"));
}

// --- held-over-call ---------------------------------------------------

TEST(LintHeldOverCall, BlockingCallUnderGuardFlagged) {
  EXPECT_TRUE(has_rule(lint_content("src/db/x.cpp",
                                    std::string(kTwoLevelDecls) +
                                        "void f() {\n"
                                        "  util::LockGuard g(job_);\n"
                                        "  ::fdatasync(fd_);\n"
                                        "}\n"),
                       "held-over-call"));
  EXPECT_TRUE(has_rule(lint_content("src/client/x.cpp",
                                    std::string(kTwoLevelDecls) +
                                        "void f() {\n"
                                        "  util::LockGuard g(job_);\n"
                                        "  auto r = client.roundtrip(req);\n"
                                        "}\n"),
                       "held-over-call"));
}

TEST(LintHeldOverCall, AfterGuardScopeEndsPasses) {
  EXPECT_TRUE(lint_content("src/db/x.cpp",
                           std::string(kTwoLevelDecls) +
                               "void f() {\n"
                               "  { util::LockGuard g(job_); note(); }\n"
                               "  ::fdatasync(fd_);\n"
                               "}\n")
                  .empty());
}

TEST(LintHeldOverCall, AllowSuppresses) {
  EXPECT_TRUE(
      lint_content("src/db/x.cpp",
                   std::string(kTwoLevelDecls) +
                       "void f() {\n"
                       "  util::LockGuard g(job_);\n"
                       "  // clarens-lint: allow(held-over-call): cold "
                       "shutdown path, no concurrent acquirers\n"
                       "  ::fdatasync(fd_);\n"
                       "}\n")
          .empty());
}

// --- lock-cycle (tree-wide merged graph) ------------------------------

TEST(LintLockCycle, TwoNodeTokenedCycleAcrossFiles) {
  // Each edge carries a SameRankToken, so no per-edge rule fires — but
  // the two files together close a cycle only the global graph sees.
  std::vector<SourceFile> files = {
      {"src/core/a.cpp",
       std::string(kTwoLevelDecls) +
           "void a() {\n"
           "  util::LockGuard g1(job_);\n"
           "  util::LockGuard g2(transfer_, util::SameRankToken{\"a\"});\n"
           "}\n"},
      {"src/core/b.cpp",
       "void b() {\n"
       "  util::LockGuard g1(transfer_);\n"
       "  util::LockGuard g2(job_, util::SameRankToken{\"b\"});\n"
       "}\n"},
  };
  auto found = lint_sources(files);
  EXPECT_TRUE(has_rule(found, "lock-cycle"));
  EXPECT_FALSE(has_rule(found, "lock-order"));
}

TEST(LintLockCycle, ThreeNodeCommentCycleAcrossFiles) {
  // Three declared same-rank edges, each individually legal, that only
  // deadlock in combination.
  std::vector<SourceFile> files = {
      {"src/core/a.cpp",
       "// lock-order: core.job -> core.transfer (same-rank)\n"},
      {"src/core/b.cpp",
       "// lock-order: core.transfer -> core.message (same-rank)\n"},
      {"src/core/c.cpp",
       "// lock-order: core.message -> core.job (same-rank)\n"},
  };
  auto found = lint_sources(files);
  ASSERT_TRUE(has_rule(found, "lock-cycle"));
  for (const auto& violation : found) {
    if (violation.rule != "lock-cycle") continue;
    // The report names the full chain with one site per edge.
    EXPECT_NE(violation.message.find("core.job"), std::string::npos);
    EXPECT_NE(violation.message.find("core.transfer"), std::string::npos);
    EXPECT_NE(violation.message.find("core.message"), std::string::npos);
    EXPECT_NE(violation.message.find("src/core/a.cpp:1"), std::string::npos);
  }
}

TEST(LintLockCycle, AcyclicGraphPasses) {
  std::vector<SourceFile> files = {
      {"src/core/a.cpp", "// lock-order: core.job -> db.store.shard\n"},
      {"src/core/b.cpp",
       "// lock-order: db.store.shard -> db.store.journal\n"},
  };
  EXPECT_FALSE(has_rule(lint_sources(files), "lock-cycle"));
}

}  // namespace
}  // namespace clarens::lint
