// Shared test fixtures: a lazily-created PKI (one CA, a few users, a
// server credential) reused across test binaries to keep RSA keygen off
// the per-test path, plus temp-directory helpers.
#pragma once

#include <filesystem>
#include <string>

#include "crypto/random.hpp"
#include "pki/authority.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"

namespace clarens::testing {

struct TestPki {
  pki::CertificateAuthority ca;
  pki::Credential server;
  pki::Credential alice;  // /O=testgrid.org/OU=People/CN=Alice Able
  pki::Credential bob;    // /O=testgrid.org/OU=People/CN=Bob Baker
  pki::Credential carol;  // /O=othergrid.net/OU=People/CN=Carol Cole
  pki::TrustStore trust;

  static const TestPki& instance() {
    static TestPki* pki = [] {
      // clarens-lint: allow(raw-new): deliberately leaked process-lifetime singleton
      auto* p = new TestPki{
          pki::CertificateAuthority::create(
              pki::DistinguishedName::parse("/O=testgrid.org/CN=Test CA"), 512),
          {}, {}, {}, {}, {}};
      p->server = p->ca.issue_server(pki::DistinguishedName::parse(
          "/O=testgrid.org/OU=Services/CN=host/test.example.org"));
      p->alice = p->ca.issue_user(pki::DistinguishedName::parse(
          "/O=testgrid.org/OU=People/CN=Alice Able"));
      p->bob = p->ca.issue_user(pki::DistinguishedName::parse(
          "/O=testgrid.org/OU=People/CN=Bob Baker"));
      p->carol = p->ca.issue_user(pki::DistinguishedName::parse(
          "/O=othergrid.net/OU=People/CN=Carol Cole"));
      p->trust.add_authority(p->ca.certificate());
      return p;
    }();
    return *pki;
  }
};

/// Unique temp directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    path_ = (std::filesystem::temp_directory_path() /
             ("clarens_test_" + crypto::random_token(8)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string sub(const std::string& name) const {
    std::string p = path_ + "/" + name;
    std::filesystem::create_directories(p);
    return p;
  }

 private:
  std::string path_;
};

}  // namespace clarens::testing
