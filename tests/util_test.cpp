// Unit tests for clarens::util — strings, codecs, config, buffer, clock,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "util/buffer.hpp"
#include "util/clock.hpp"
#include "util/config.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace clarens::util {
namespace {

// ---------- strings ----------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitTrimmedDropsEmptyAndTrims) {
  EXPECT_EQ(split_trimmed(" a, b ,, c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_trimmed("  ,  ", ',').empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(Strings, PrefixSuffix) {
  EXPECT_TRUE(starts_with("file.read", "file."));
  EXPECT_FALSE(starts_with("file", "file."));
  EXPECT_TRUE(ends_with("data.bin", ".bin"));
  EXPECT_FALSE(ends_with("bin", "data.bin"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "/"), "a/b/c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
}

TEST(Strings, ParseIntValid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("9223372036854775807"), INT64_MAX);
}

TEST(Strings, ParseIntInvalid) {
  EXPECT_THROW(parse_int(""), ParseError);
  EXPECT_THROW(parse_int("12x"), ParseError);
  EXPECT_THROW(parse_int("x12"), ParseError);
  EXPECT_THROW(parse_int("99999999999999999999999"), ParseError);
}

TEST(Strings, ParseUintRejectsNegative) {
  EXPECT_EQ(parse_uint("123"), 123u);
  EXPECT_THROW(parse_uint("-1"), ParseError);
}

// ---------- hex / base64 ----------

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "0001abff7f");
  EXPECT_EQ(hex_decode(hex), data);
  EXPECT_EQ(hex_decode("0001ABFF7F"), data);  // uppercase accepted
}

TEST(Hex, Invalid) {
  EXPECT_THROW(hex_decode("abc"), ParseError);   // odd length
  EXPECT_THROW(hex_decode("zz"), ParseError);    // non-hex
}

TEST(Base64, KnownVectors) {
  auto enc = [](std::string_view s) {
    return base64_encode(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  };
  // RFC 4648 vectors.
  EXPECT_EQ(enc(""), "");
  EXPECT_EQ(enc("f"), "Zg==");
  EXPECT_EQ(enc("fo"), "Zm8=");
  EXPECT_EQ(enc("foo"), "Zm9v");
  EXPECT_EQ(enc("foob"), "Zm9vYg==");
  EXPECT_EQ(enc("fooba"), "Zm9vYmE=");
  EXPECT_EQ(enc("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeIgnoresWhitespace) {
  auto out = base64_decode("Zm9v\nYmFy");
  EXPECT_EQ(std::string(out.begin(), out.end()), "foobar");
}

TEST(Base64, DecodeRejectsGarbage) {
  EXPECT_THROW(base64_decode("!!!!"), ParseError);
  EXPECT_THROW(base64_decode("Zg==Zg"), ParseError);  // data after padding
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, RandomBlobs) {
  std::vector<std::uint8_t> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i * 131 + 7) & 0xff);
  }
  EXPECT_EQ(base64_decode(base64_encode(data)), data);
  EXPECT_EQ(hex_decode(hex_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 255,
                                           256, 1000, 4096));

// ---------- config ----------

TEST(Config, ParseBasics) {
  Config config = Config::parse(
      "# a comment\n"
      "port 8080\n"
      "host  grid.example.org\n"
      "\n"
      "admin /O=x/CN=a\n"
      "admin /O=x/CN=b\n");
  EXPECT_EQ(config.get_int_or("port", 0), 8080);
  EXPECT_EQ(config.get_or("host", ""), "grid.example.org");
  EXPECT_EQ(config.get_all("admin").size(), 2u);
  EXPECT_FALSE(config.get("missing").has_value());
  EXPECT_EQ(config.get_or("missing", "dflt"), "dflt");
}

TEST(Config, ValuesMayContainSpaces) {
  Config config = Config::parse("banner Welcome to the grid\n");
  EXPECT_EQ(config.get_or("banner", ""), "Welcome to the grid");
}

TEST(Config, MissingValueIsError) {
  EXPECT_THROW(Config::parse("orphankey\n"), clarens::ParseError);
}

TEST(Config, Booleans) {
  Config config = Config::parse("a yes\nb off\nc 1\nd false\n");
  EXPECT_TRUE(config.get_bool_or("a", false));
  EXPECT_FALSE(config.get_bool_or("b", true));
  EXPECT_TRUE(config.get_bool_or("c", false));
  EXPECT_FALSE(config.get_bool_or("d", true));
  EXPECT_TRUE(config.get_bool_or("missing", true));
  Config bad = Config::parse("x maybe\n");
  EXPECT_THROW(bad.get_bool_or("x", false), clarens::ParseError);
}

TEST(Config, SetReplacesAddAccumulates) {
  Config config;
  config.add("k", "1");
  config.add("k", "2");
  EXPECT_EQ(config.get_all("k").size(), 2u);
  config.set("k", "3");
  EXPECT_EQ(config.get_all("k"), (std::vector<std::string>{"3"}));
}

TEST(Strings, CaseInsensitiveFind) {
  EXPECT_TRUE(icontains("Application/SOAP+xml", "soap"));
  EXPECT_TRUE(icontains("text/XML; charset=utf-8", "xml"));
  EXPECT_FALSE(icontains("application/json", "xml"));
  EXPECT_EQ(ifind("Content-TYPE", "type"), 8u);
  EXPECT_EQ(ifind("abc", "abcd"), std::string_view::npos);
  EXPECT_EQ(ifind("anything", ""), 0u);
}

// ---------- buffer ----------

TEST(Buffer, WriteReadIntegers) {
  Buffer buffer;
  buffer.write_u8(0xab);
  buffer.write_u16(0x1234);
  buffer.write_u32(0xdeadbeef);
  buffer.write_u64(0x0102030405060708ull);
  EXPECT_EQ(buffer.readable(), 15u);
  EXPECT_EQ(buffer.read_u8(), 0xab);
  EXPECT_EQ(buffer.read_u16(), 0x1234);
  EXPECT_EQ(buffer.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(buffer.read_u64(), 0x0102030405060708ull);
  EXPECT_TRUE(buffer.empty());
}

TEST(Buffer, UnderrunThrows) {
  Buffer buffer;
  buffer.write_u8(1);
  EXPECT_THROW(buffer.read_u16(), clarens::ParseError);
}

TEST(Buffer, ConsumeAndCompact) {
  Buffer buffer;
  buffer.write(std::string_view("hello world"));
  buffer.consume(6);
  EXPECT_EQ(buffer.peek_view(), "world");
  buffer.compact();
  EXPECT_EQ(buffer.peek_view(), "world");
  EXPECT_EQ(buffer.read_string(5), "world");
  EXPECT_TRUE(buffer.empty());
}

TEST(Buffer, WriteReserveCommit) {
  Buffer buffer;
  buffer.write(std::string_view("n="));
  auto span = buffer.write_reserve(24);
  ASSERT_GE(span.size(), 24u);
  std::memcpy(span.data(), "12345", 5);
  buffer.commit(5);
  EXPECT_EQ(buffer.peek_view(), "n=12345");
  // Committing more than was reserved is a bug in the caller.
  buffer.write_reserve(4);
  EXPECT_THROW(buffer.commit(5), clarens::ParseError);
}

TEST(Buffer, AppendNumericFormatting) {
  Buffer buffer;
  append_int(buffer, -42);
  buffer.write_u8(' ');
  append_uint(buffer, 18446744073709551615ull);
  buffer.write_u8(' ');
  append_double(buffer, 0.25);
  EXPECT_EQ(buffer.peek_view(), "-42 18446744073709551615 0.25");
}

TEST(Buffer, CompactShrinksOvergrownCapacity) {
  Buffer buffer;
  std::string big(1 << 20, 'x');  // 1 MiB grows capacity well past the floor
  buffer.write(big);
  buffer.read_string(big.size() - 16);  // leave a small tail
  std::size_t grown = buffer.capacity();
  ASSERT_GT(grown, 64u * 1024);
  buffer.compact();
  EXPECT_EQ(buffer.peek_view(), std::string_view(big).substr(big.size() - 16));
  EXPECT_LT(buffer.capacity(), grown);
}

// ---------- clock ----------

TEST(Clock, Iso8601RoundTrip) {
  std::int64_t t = 1120000000;  // 2005-06-28, the Clarens era
  std::string text = iso8601(t);
  EXPECT_EQ(text, "20050628T23:06:40");
  EXPECT_EQ(parse_iso8601(text), t);
}

TEST(Clock, Iso8601Invalid) {
  EXPECT_THROW(parse_iso8601("not-a-date"), clarens::ParseError);
  EXPECT_THROW(parse_iso8601("20051350T00:00:00"), clarens::ParseError);
}

class Iso8601RoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Iso8601RoundTrip, Identity) {
  EXPECT_EQ(parse_iso8601(iso8601(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Times, Iso8601RoundTrip,
                         ::testing::Values(0, 1, 86399, 86400, 1120000000,
                                           1751932800, 2147483647));

// ---------- thread pool ----------

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace clarens::util
