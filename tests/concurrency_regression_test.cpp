// Regression tests for concurrency bugs surfaced while annotating the
// tree with the thread-safety capability layer (src/util/sync.hpp).
//
// Two bugs are pinned here:
//   * Registry rebind vs. concurrent dispatch: the method table used to
//     hand out metadata while a writer replaced the entry. The registry
//     now uses a reader/writer lock with immutable shared_ptr<const
//     Method> entries, so a dispatch either sees the old binding or the
//     new one, never a torn record.
//   * HeavyGridServer spawned *detached* per-connection threads and
//     tracked them with a bare counter: stop() could return while a
//     connection thread was still touching server state, and the thread
//     then raced the destructor. Connection threads are now joined.
//
// Session destroy-vs-miss (the generation counter) gets a thrashing test
// too: the invariant is that a destroyed session never resurrects into
// the cache. Run under TSan these tests double as data-race probes.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "baseline/heavygrid.hpp"
#include "core/session.hpp"
#include "db/store.hpp"
#include "pki/certificate.hpp"
#include "rpc/registry.hpp"
#include "rpc/value.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "test_fixtures.hpp"

namespace clarens {
namespace {

TEST(RegistryRebind, DispatchNeverSeesTornMetadata) {
  rpc::Registry registry;
  const std::string name = "bench.echo";
  registry.add(
      name,
      [](const rpc::CallContext&, const std::vector<rpc::Value>&) {
        return rpc::Value(1);
      },
      "generation 0", "int ()");

  std::atomic<bool> stop{false};

  // The writer rebinds for as long as the readers run, so every reader
  // iteration races a potential rebind.
  util::Thread writer([&] {
    std::int64_t generation = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      std::int64_t g = generation++;
      registry.add(
          name,
          [g](const rpc::CallContext&, const std::vector<rpc::Value>&) {
            return rpc::Value(g);
          },
          "generation " + std::to_string(g), "int ()");
    }
  });

  std::vector<util::Thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      for (int it = 0; it < 2000; ++it) {
        auto method = registry.find(name);
        ASSERT_TRUE(method);
        // help + signature come from one immutable record: both must
        // belong to the same generation (never "gen N" help with a
        // detached default signature).
        EXPECT_FALSE(method->info.name.empty());
        EXPECT_FALSE(method->info.help.empty());
        EXPECT_FALSE(method->info.signature.empty());
        auto result = method->handler(rpc::CallContext{},
                                      std::vector<rpc::Value>{});
        EXPECT_EQ(result.type(), rpc::Value::Type::Int);
        // list() walks the whole table while the writer churns it.
        EXPECT_GE(registry.list().size(), 1u);
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  auto final = registry.find(name);
  ASSERT_TRUE(final);
  EXPECT_EQ(final->info.help.rfind("generation ", 0), 0u);
}

TEST(SessionDestroy, ConcurrentMissNeverResurrectsDestroyedSession) {
  db::Store store;  // in-memory
  core::SessionManager sessions(store, /*default_ttl=*/3600);

  for (int round = 0; round < 50; ++round) {
    core::Session session = sessions.create("/O=Test/CN=race", false);
    std::atomic<bool> destroyed{false};
    util::Thread destroyer([&] {
      sessions.destroy(session.id);
      destroyed.store(true);
    });
    // Hammer lookups through the destroy; after destroy() returns the
    // token must stay invalid forever (no cache resurrection).
    while (!destroyed.load()) {
      try {
        sessions.lookup(session.id);
      } catch (const AuthError&) {
      }
    }
    destroyer.join();
    EXPECT_THROW(sessions.lookup(session.id), AuthError) << "round " << round;
  }
}

TEST(HeavyGridTeardown, StopJoinsEveryConnectionThread) {
  const testing::TestPki& pki = testing::TestPki::instance();
  baseline::HeavyGridOptions options;
  options.credential = pki.server;
  options.trust = pki.trust;
  options.gridmap = {{pki.alice.certificate.subject().str(), "alice"}};
  baseline::HeavyGridServer server(std::move(options));
  server.start();

  std::atomic<bool> stop{false};
  std::atomic<int> calls{0};
  std::vector<util::Thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      const testing::TestPki& fixture = testing::TestPki::instance();
      baseline::HeavyGridClient client("127.0.0.1", server.port(),
                                       fixture.alice, fixture.trust);
      while (!stop.load()) {
        try {
          client.call("echo", {rpc::Value(std::string("x"))});
          calls.fetch_add(1);
        } catch (const Error&) {
          // Server may be stopping under us; that is the point.
        }
      }
    });
  }
  while (calls.load() < 5) {
  }
  // Stop with calls in flight. Before the fix the per-connection threads
  // were detached: stop() returned while they still used server state,
  // and the destructor raced them (TSan flags it; ASan sees use-after-
  // free on unlucky schedules).
  server.stop();
  stop.store(true);
  for (auto& client : clients) client.join();
  EXPECT_GE(server.calls_served(), 5u);
}

}  // namespace
}  // namespace clarens
