// End-to-end tests of the command-line tools: clarens_keygen produces a
// usable PKI, clarensd boots from a config file, and clarens_call talks
// to it — the full deployment path a site operator follows.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include "client/client.hpp"
#include "pki/certificate.hpp"
#include "pki/verify.hpp"
#include "test_fixtures.hpp"
#include "util/clock.hpp"

namespace clarens {
namespace {

namespace fs = std::filesystem;
using testing::TempDir;

/// Directory holding the tool binaries: <build>/tools next to our own
/// <build>/tests.
fs::path tools_dir() {
  return fs::canonical("/proc/self/exe").parent_path().parent_path() / "tools";
}

/// Run a tool synchronously; returns its exit code.
int run_tool(const std::vector<std::string>& argv) {
  std::string command;
  for (const auto& arg : argv) {
    command += "'" + arg + "' ";
  }
  command += "> /dev/null 2>&1";
  int rc = std::system(command.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

TEST(Tools, KeygenProducesVerifiablePki) {
  TempDir tmp;
  fs::path keygen = tools_dir() / "clarens_keygen";
  ASSERT_TRUE(fs::exists(keygen)) << keygen;

  std::string ca_cred = tmp.path() + "/ca.cred";
  std::string user_cred = tmp.path() + "/user.cred";
  std::string server_cred = tmp.path() + "/server.cred";
  std::string proxy_cred = tmp.path() + "/proxy.cred";
  std::string ca_cert = tmp.path() + "/ca.cert";

  ASSERT_EQ(run_tool({keygen.string(), "ca", "/O=tools.org/CN=Tool CA",
                      ca_cred}),
            0);
  ASSERT_EQ(run_tool({keygen.string(), "user", ca_cred,
                      "/O=tools.org/OU=People/CN=Toolsmith", user_cred}),
            0);
  ASSERT_EQ(run_tool({keygen.string(), "server", ca_cred,
                      "/O=tools.org/OU=Services/CN=host/t.org", server_cred}),
            0);
  ASSERT_EQ(run_tool({keygen.string(), "proxy", user_cred, proxy_cred, "6"}),
            0);
  ASSERT_EQ(run_tool({keygen.string(), "export-cert", ca_cred, ca_cert}), 0);
  ASSERT_EQ(run_tool({keygen.string(), "show", user_cred}), 0);

  // The generated material verifies as a coherent PKI.
  pki::Credential ca = pki::Credential::decode(read_file(ca_cred));
  pki::Credential user = pki::Credential::decode(read_file(user_cred));
  pki::Credential proxy = pki::Credential::decode(read_file(proxy_cred));
  pki::Certificate exported = pki::Certificate::decode(read_file(ca_cert));
  EXPECT_EQ(exported, ca.certificate);
  // The exported certificate must not leak the private key.
  EXPECT_EQ(read_file(ca_cert).find("private-key:"), std::string::npos);

  pki::TrustStore trust;
  trust.add_authority(ca.certificate);
  EXPECT_TRUE(trust.verify({user.certificate}, util::unix_now()).ok);
  auto delegated = trust.verify({proxy.certificate, user.certificate},
                                util::unix_now());
  EXPECT_TRUE(delegated.ok);
  EXPECT_TRUE(delegated.via_proxy);

  // Invalid invocations fail with a usage error, not a crash.
  EXPECT_NE(run_tool({keygen.string(), "ca"}), 0);
  EXPECT_NE(run_tool({keygen.string(), "bogus", "x", "y"}), 0);
}

TEST(Tools, DaemonBootsAndServesCalls) {
  TempDir tmp;
  fs::path keygen = tools_dir() / "clarens_keygen";
  fs::path daemon = tools_dir() / "clarensd";
  fs::path call = tools_dir() / "clarens_call";
  ASSERT_TRUE(fs::exists(daemon));
  ASSERT_TRUE(fs::exists(call));

  std::string ca_cred = tmp.path() + "/ca.cred";
  std::string user_cred = tmp.path() + "/user.cred";
  std::string ca_cert = tmp.path() + "/ca.cert";
  ASSERT_EQ(run_tool({keygen.string(), "ca", "/O=d.org/CN=CA", ca_cred}), 0);
  ASSERT_EQ(run_tool({keygen.string(), "user", ca_cred,
                      "/O=d.org/OU=People/CN=Op", user_cred}),
            0);
  ASSERT_EQ(run_tool({keygen.string(), "export-cert", ca_cred, ca_cert}), 0);

  // Pick a port deterministically-ish from the pid to avoid collisions.
  int port = 20000 + (getpid() % 20000);
  std::string conf = tmp.path() + "/clarens.conf";
  {
    std::ofstream out(conf);
    out << "port " << port << "\n"
        << "trust_file " << ca_cert << "\n"
        << "allow system *\n"
        << "allow echo *\n";
  }

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    execl(daemon.c_str(), "clarensd", conf.c_str(), nullptr);
    _exit(127);
  }

  // Wait for the daemon to come up, then exercise it with the C++ client.
  pki::Credential ca = pki::Credential::decode(read_file(ca_cred));
  pki::Credential user = pki::Credential::decode(read_file(user_cred));
  pki::TrustStore trust;
  trust.add_authority(ca.certificate);

  client::ClientOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.credential = user;
  options.trust = &trust;
  bool connected = false;
  for (int i = 0; i < 100 && !connected; ++i) {
    try {
      client::ClarensClient probe(options);
      probe.connect();
      probe.authenticate();
      rpc::Value who = probe.call("system.whoami");
      EXPECT_EQ(who.at("dn").as_string(), "/O=d.org/OU=People/CN=Op");
      connected = true;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(connected);

  // The CLI client works against the daemon too.
  if (connected) {
    std::string cli = "'" + call.string() + "' --port " + std::to_string(port) +
                      " --ca '" + ca_cert + "' --credential '" + user_cred +
                      "' echo.echo '[\"cli works\"]' > " + tmp.path() +
                      "/cli.out 2>/dev/null";
    EXPECT_EQ(WEXITSTATUS(std::system(cli.c_str())), 0);
    EXPECT_NE(read_file(tmp.path() + "/cli.out").find("cli works"),
              std::string::npos);
  }

  kill(child, SIGTERM);
  int status = 0;
  waitpid(child, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);  // clean shutdown on SIGTERM
}

}  // namespace
}  // namespace clarens
