// Deterministic malformed-input corpus for the wire decoders.
//
// Every case must fail *cleanly*: a clarens::ParseError (surfaced to the
// client as a fault), never a crash, hang, stack overflow, or multi-GB
// allocation. The corpus covers the attack shapes the decoders guard
// against: truncated envelopes, nesting bombs, bad base64, and overlong
// declared lengths.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/binrpc.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/xml.hpp"
#include "rpc/xmlrpc.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens {
namespace {

// --- helpers ----------------------------------------------------------

void drain(rpc::XmlPullParser& parser) {
  while (parser.next() != rpc::XmlPullParser::Event::Eof) {
  }
}

std::string be32(std::uint32_t v) {
  std::string out(4, '\0');
  out[0] = static_cast<char>(v >> 24);
  out[1] = static_cast<char>(v >> 16);
  out[2] = static_cast<char>(v >> 8);
  out[3] = static_cast<char>(v);
  return out;
}

const std::string kFrameReq = std::string("CRPC") + '\x01' + '\x01';

// --- XmlPullParser: truncated envelopes -------------------------------

TEST(MalformedXml, TruncatedEnvelopes) {
  const char* corpus[] = {
      "<",
      "<methodCall",
      "<methodCall>",
      "<methodCall><methodName>echo",
      "<methodCall><methodName>echo</methodName>",
      "<a b=",
      "<a b=\"unterminated",
      "<a><![CDATA[no terminator",
      "<a>text<!-- unterminated comment",
      "<?xml version=\"1.0\"?>",  // prolog only, no root
  };
  for (const char* doc : corpus) {
    rpc::XmlPullParser parser{std::string_view(doc)};
    EXPECT_THROW(drain(parser), ParseError) << doc;
  }
}

TEST(MalformedXml, StructuralErrors) {
  const char* corpus[] = {
      "<a></b>",                    // mismatched close
      "<a/><b/>",                   // two roots
      "<a></a>trailing",            // trailing chardata
      "text before<a/>",            // chardata outside root
      "</a>",                       // close without open
      "<a>&bogus;</a>",             // unknown entity
      "<a>&#xZZ;</a>",              // bad numeric reference
      "<a>&#;</a>",                 // empty numeric reference
  };
  for (const char* doc : corpus) {
    rpc::XmlPullParser parser{std::string_view(doc)};
    EXPECT_THROW(
        {
          while (parser.next() != rpc::XmlPullParser::Event::Eof) {
            if (parser.next() == rpc::XmlPullParser::Event::Text) {
              parser.text();  // force entity decoding
            }
          }
        },
        ParseError)
        << doc;
  }
}

// --- XmlPullParser: nesting bombs --------------------------------------

TEST(MalformedXml, NestingBombThrowsInsteadOfOverflowing) {
  // 200k open tags: without the depth cap the tree builders would
  // recurse once per level and smash the stack.
  std::string bomb;
  for (int i = 0; i < 200000; ++i) bomb += "<a>";
  rpc::XmlPullParser parser{bomb};
  EXPECT_THROW(drain(parser), ParseError);
  EXPECT_THROW(rpc::xml_parse(bomb), ParseError);
  EXPECT_THROW(rpc::xml_parse_slices(bomb), ParseError);
}

TEST(MalformedXml, DepthJustUnderTheCapStillParses) {
  std::string doc;
  std::size_t depth = rpc::XmlPullParser::kMaxDepth - 1;
  for (std::size_t i = 0; i < depth; ++i) doc += "<a>";
  doc += "x";
  for (std::size_t i = 0; i < depth; ++i) doc += "</a>";
  rpc::XmlNode root = rpc::xml_parse(doc);
  EXPECT_EQ(root.tag, "a");
}

TEST(MalformedXml, XmlRpcNestedArrayBomb) {
  std::string bomb = "<methodCall><methodName>m</methodName><params><param>";
  for (int i = 0; i < 100000; ++i) bomb += "<value><array><data>";
  bomb += "<value><int>1</int></value>";
  for (int i = 0; i < 100000; ++i) bomb += "</data></array></value>";
  bomb += "</param></params></methodCall>";
  EXPECT_THROW(rpc::xmlrpc::parse_request(bomb), ParseError);
}

// --- XML-RPC: bad base64 ----------------------------------------------

TEST(MalformedXml, BadBase64Params) {
  const char* corpus[] = {
      "!!!!",        // invalid alphabet
      "QUJ#RA==",    // invalid char mid-stream
      "QQ==QQ==",    // data after padding
      "QR==",        // nonzero trailing bits
  };
  for (const char* b64 : corpus) {
    std::string request =
        "<methodCall><methodName>m</methodName><params><param>"
        "<value><base64>" +
        std::string(b64) +
        "</base64></value>"
        "</param></params></methodCall>";
    EXPECT_THROW(rpc::xmlrpc::parse_request(request), ParseError) << b64;
  }
  // Direct decoder corpus, including whitespace tolerance on the happy
  // path so the negative cases above fail for the right reason.
  EXPECT_EQ(util::base64_decode("QUJD").size(), 3u);
  EXPECT_EQ(util::base64_decode("QU\nJD").size(), 3u);
  EXPECT_THROW(util::base64_decode("Q$JD"), ParseError);
}

// --- binrpc: truncated frames -----------------------------------------

TEST(MalformedBinrpc, TruncatedFrames) {
  std::vector<std::string> corpus = {
      "",
      "C",
      "CRP",
      "CRPC",
      std::string("CRPC") + '\x01',           // no kind
      kFrameReq,                               // no method value
      kFrameReq + '\x04',                      // string tag, no length
      kFrameReq + '\x04' + be32(4) + "ab",     // string short 2 bytes
      kFrameReq + '\x02' + "\x00\x01",         // int, 2 of 8 bytes
  };
  for (const std::string& frame : corpus) {
    EXPECT_THROW(rpc::binrpc::parse_request(frame), ParseError);
  }
}

TEST(MalformedBinrpc, BadMagicVersionKind) {
  EXPECT_THROW(rpc::binrpc::parse_request(std::string("XRPC") + '\x01' + '\x01'),
               ParseError);
  EXPECT_THROW(rpc::binrpc::parse_request(std::string("CRPC") + '\x07' + '\x01'),
               ParseError);
  // Response frame handed to the request parser.
  EXPECT_THROW(rpc::binrpc::parse_request(std::string("CRPC") + '\x01' + '\x02'),
               ParseError);
  // Unknown value tag.
  EXPECT_THROW(rpc::binrpc::parse_value(std::string(1, '\x2a')), ParseError);
}

// --- binrpc: overlong declared lengths --------------------------------

TEST(MalformedBinrpc, OverlongLengthsRejectedWithoutAllocating) {
  // Declared sizes near 4 GiB with a few bytes of payload: the decoder
  // must reject on the declared length, not try to allocate or read it.
  std::string huge_string = std::string(1, '\x04') + be32(0xFFFFFFFFu) + "x";
  EXPECT_THROW(rpc::binrpc::parse_value(huge_string), ParseError);

  std::string huge_blob = std::string(1, '\x05') + be32(0xFFFFFF00u) + "x";
  EXPECT_THROW(rpc::binrpc::parse_value(huge_blob), ParseError);

  std::string huge_array = std::string(1, '\x07') + be32(0xFFFFFFFFu);
  EXPECT_THROW(rpc::binrpc::parse_value(huge_array), ParseError);

  std::string huge_struct = std::string(1, '\x08') + be32(0xFFFFFFFFu);
  EXPECT_THROW(rpc::binrpc::parse_value(huge_struct), ParseError);
}

// --- binrpc: nesting bomb ---------------------------------------------

TEST(MalformedBinrpc, NestedArrayBomb) {
  // 10k arrays of one element each: [[[[...]]]].
  std::string bomb;
  for (int i = 0; i < 10000; ++i) bomb += std::string(1, '\x07') + be32(1);
  bomb += '\x00';  // innermost nil
  EXPECT_THROW(rpc::binrpc::parse_value(bomb), ParseError);
}

TEST(MalformedBinrpc, RoundTripStillWorksAtSaneDepth) {
  rpc::Value value = rpc::Value::array();
  for (int i = 0; i < 16; ++i) {
    rpc::Value wrap = rpc::Value::array();
    wrap.push(std::move(value));
    value = std::move(wrap);
  }
  rpc::Value decoded = rpc::binrpc::parse_value(
      rpc::binrpc::serialize_value(value));
  EXPECT_EQ(decoded.type(), rpc::Value::Type::Array);
}

// --- JSON-RPC: nesting bomb + truncation ------------------------------

TEST(MalformedJson, NestingBombAndTruncation) {
  std::string bomb(200000, '[');
  EXPECT_THROW(rpc::jsonrpc::parse_value(bomb), ParseError);
  std::string obj_bomb;
  for (int i = 0; i < 100000; ++i) obj_bomb += "{\"a\":";
  EXPECT_THROW(rpc::jsonrpc::parse_value(obj_bomb), ParseError);
  EXPECT_THROW(rpc::jsonrpc::parse_value("{\"a\": [1, 2"), ParseError);
  EXPECT_THROW(rpc::jsonrpc::parse_value("\"unterminated"), ParseError);
}

TEST(MalformedJson, SaneDepthStillParses) {
  std::string doc(64, '[');
  doc += "1";
  doc.append(64, ']');
  rpc::Value v = rpc::jsonrpc::parse_value(doc);
  EXPECT_EQ(v.type(), rpc::Value::Type::Array);
}

}  // namespace
}  // namespace clarens
