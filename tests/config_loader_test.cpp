// Tests for the configuration loader: every key, file references, and a
// daemon-style boot from a generated config.
#include <gtest/gtest.h>

#include <fstream>

#include "client/client.hpp"
#include "core/config_loader.hpp"
#include "core/server.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

using clarens::testing::TempDir;
using clarens::testing::TestPki;

TEST(ConfigLoader, ParsesScalarsAndLists) {
  util::Config config = util::Config::parse(
      "host 0.0.0.0\n"
      "port 8443\n"
      "data_dir /var/lib/clarens\n"
      "admin /O=a/CN=one\n"
      "admin /O=a/CN=two\n"
      "default_allow false\n"
      "session_ttl 3600\n"
      "sandbox_base /tmp/sb\n"
      "farm caltech\n"
      "node c01\n"
      "max_connections 64\n");
  ClarensConfig out = config_from(config);
  EXPECT_EQ(out.host, "0.0.0.0");
  EXPECT_EQ(out.port, 8443);
  EXPECT_EQ(out.data_dir, "/var/lib/clarens");
  EXPECT_EQ(out.admins.size(), 2u);
  EXPECT_EQ(out.session_ttl, 3600);
  EXPECT_EQ(out.sandbox_base, "/tmp/sb");
  EXPECT_EQ(out.farm, "caltech");
  EXPECT_EQ(out.max_connections, 64u);
}

TEST(ConfigLoader, FileRootsAndAcls) {
  util::Config config = util::Config::parse(
      "file_root /data /srv/data\n"
      "file_root /scratch /srv/scratch\n"
      "allow system *\n"
      "allow system group:ops\n"
      "allow file /O=grid/OU=People\n"
      "file_allow /data *\n"
      "file_allow_read /scratch /O=grid\n"
      "file_allow_write /scratch group:writers\n");
  ClarensConfig out = config_from(config);
  EXPECT_EQ(out.file_roots.size(), 2u);
  EXPECT_EQ(out.file_roots.at("/data"), "/srv/data");

  ASSERT_EQ(out.initial_method_acls.size(), 2u);  // "file" and "system"
  const auto& system_acl = out.initial_method_acls[1];
  EXPECT_EQ(system_acl.first, "system");
  EXPECT_EQ(system_acl.second.allow_dns, (std::vector<std::string>{"*"}));
  EXPECT_EQ(system_acl.second.allow_groups, (std::vector<std::string>{"ops"}));

  ASSERT_EQ(out.initial_file_acls.size(), 2u);
  const auto& scratch = out.initial_file_acls[1];
  EXPECT_EQ(scratch.first, "/scratch");
  EXPECT_EQ(scratch.second.read.allow_dns, (std::vector<std::string>{"/O=grid"}));
  EXPECT_EQ(scratch.second.write.allow_groups,
            (std::vector<std::string>{"writers"}));
}

TEST(ConfigLoader, StationEndpoint) {
  ClarensConfig out = config_from(util::Config::parse("station 10.0.0.1:9999\n"));
  ASSERT_TRUE(out.station.has_value());
  EXPECT_EQ(out.station->first, "10.0.0.1");
  EXPECT_EQ(out.station->second, 9999);
}

TEST(ConfigLoader, MalformedEntriesThrow) {
  EXPECT_THROW(config_from(util::Config::parse("file_root /only-one\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("allow justpath\n")), ParseError);
  EXPECT_THROW(config_from(util::Config::parse("station nocolon\n")), ParseError);
  EXPECT_THROW(config_from(util::Config::parse("use_tls true\n")), ParseError);
  EXPECT_THROW(config_from(util::Config::parse("credential_file /no/file\n")),
               SystemError);
  // The binary blob framing length is a u32: chunk limits past 4 GiB - 1
  // (or non-positive) would desynchronize sendfile frames.
  EXPECT_THROW(config_from(util::Config::parse("max_read_chunk 4294967296\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("max_read_chunk 0\n")),
               ParseError);
  EXPECT_NO_THROW(config_from(util::Config::parse("max_read_chunk 4294967295\n")));
}

TEST(ConfigLoader, StorageEngineKnobs) {
  ClarensConfig out = config_from(util::Config::parse(
      "store_shards 64\n"
      "store_group_commit false\n"
      "store_commit_interval_us 500\n"
      "store_commit_batch_max 1024\n"
      "store_compact_threshold 1048576\n"
      "session_durable_writes true\n"));
  EXPECT_EQ(out.store_shards, 64u);
  EXPECT_FALSE(out.store_group_commit);
  EXPECT_EQ(out.store_commit_interval_us, 500);
  EXPECT_EQ(out.store_commit_batch_max, 1024u);
  EXPECT_EQ(out.store_compact_threshold, 1048576);
  EXPECT_TRUE(out.session_durable_writes);

  // Defaults when unset.
  ClarensConfig defaults = config_from(util::Config::parse("host x\n"));
  EXPECT_EQ(defaults.store_shards, 16u);
  EXPECT_TRUE(defaults.store_group_commit);
  EXPECT_FALSE(defaults.session_durable_writes);
}

TEST(ConfigLoader, StorageEngineKnobValidation) {
  EXPECT_THROW(config_from(util::Config::parse("store_shards 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("store_shards 2048\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("store_commit_interval_us -1\n")),
      ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("store_commit_interval_us 2000000\n")),
      ParseError);
  EXPECT_THROW(config_from(util::Config::parse("store_commit_batch_max 0\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("store_commit_batch_max 100000\n")),
      ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("store_compact_threshold 1024\n")),
      ParseError);
}

TEST(ConfigLoader, FederationKnobs) {
  ClarensConfig head = config_from(util::Config::parse(
      "node_role head\n"
      "node_ticket_secret 0123456789abcdef\n"
      "placement_replicas 2\n"
      "node_capacity 2.5\n"
      "federation_refresh_ms 250\n"
      "node_ticket_ttl_s 60\n"
      "placement_prefix_depth 3\n"));
  EXPECT_EQ(head.node_role, NodeRole::Head);
  EXPECT_EQ(head.node_ticket_secret, "0123456789abcdef");
  EXPECT_EQ(head.placement_replicas, 2);
  EXPECT_DOUBLE_EQ(head.node_capacity, 2.5);
  EXPECT_EQ(head.federation_refresh_ms, 250);
  EXPECT_EQ(head.node_ticket_ttl_s, 60);
  EXPECT_EQ(head.placement_prefix_depth, 3);

  ClarensConfig storage = config_from(util::Config::parse(
      "node_role storage\n"
      "head_url http://head.example.org:8080/clarens\n"
      "node_ticket_secret 0123456789abcdef\n"));
  EXPECT_EQ(storage.node_role, NodeRole::Storage);
  EXPECT_EQ(storage.head_url, "http://head.example.org:8080/clarens");

  // Defaults: standalone, no secret required, single replica.
  ClarensConfig defaults = config_from(util::Config::parse("host x\n"));
  EXPECT_EQ(defaults.node_role, NodeRole::Standalone);
  EXPECT_TRUE(defaults.node_ticket_secret.empty());
  EXPECT_EQ(defaults.placement_replicas, 1);
  EXPECT_DOUBLE_EQ(defaults.node_capacity, 1.0);
  EXPECT_EQ(defaults.placement_prefix_depth, 2);
}

TEST(ConfigLoader, FederationKnobValidation) {
  // Unknown role.
  EXPECT_THROW(config_from(util::Config::parse("node_role primary\n")),
               ParseError);
  // head/storage roles demand a meaningful shared secret…
  EXPECT_THROW(config_from(util::Config::parse(
                   "node_role head\nnode_ticket_secret short\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_role head\n")),
               ParseError);
  // …and a storage node must know its head.
  EXPECT_THROW(config_from(util::Config::parse(
                   "node_role storage\nnode_ticket_secret 0123456789abcdef\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("head_url gopher://x:1\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("placement_replicas 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("placement_replicas 9\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_capacity nan-ish\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_capacity 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_capacity -1\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("federation_refresh_ms -1\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("federation_refresh_ms 60001\n")),
      ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_ticket_ttl_s 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("node_ticket_ttl_s 86401\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("placement_prefix_depth 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("placement_prefix_depth 9\n")),
               ParseError);
}

TEST(ConfigLoader, ReplicationKnobs) {
  ClarensConfig head = config_from(util::Config::parse(
      "node_role head\n"
      "node_ticket_secret 0123456789abcdef\n"
      "replication_grace_ms 1500\n"
      "replication_retry_max 4\n"
      "replication_retry_base_ms 50\n"
      "replication_retry_max_ms 2000\n"
      "replication_chunk 65536\n"
      "fsck_interval_ms 30000\n"
      "replica_suspect_ttl_ms 1000\n"));
  EXPECT_EQ(head.replication_grace_ms, 1500);
  EXPECT_EQ(head.replication_retry_max, 4);
  EXPECT_EQ(head.replication_retry_base_ms, 50);
  EXPECT_EQ(head.replication_retry_max_ms, 2000);
  EXPECT_EQ(head.replication_chunk, 65536);
  EXPECT_EQ(head.fsck_interval_ms, 30000);
  EXPECT_EQ(head.replica_suspect_ttl_ms, 1000);

  ClarensConfig defaults = config_from(util::Config::parse("host x\n"));
  EXPECT_EQ(defaults.replication_grace_ms, 5000);
  EXPECT_EQ(defaults.replication_retry_max, 8);
  EXPECT_EQ(defaults.fsck_interval_ms, 0);  // scrub on demand only
}

TEST(ConfigLoader, ReplicationKnobValidation) {
  EXPECT_THROW(config_from(util::Config::parse("replication_grace_ms 99\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("replication_grace_ms 600001\n")),
      ParseError);
  EXPECT_THROW(config_from(util::Config::parse("replication_retry_max 0\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("replication_retry_max 65\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("replication_retry_base_ms 0\n")),
      ParseError);
  // The cap may not undercut the base.
  EXPECT_THROW(config_from(util::Config::parse(
                   "replication_retry_base_ms 500\n"
                   "replication_retry_max_ms 100\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("replication_chunk 4095\n")),
               ParseError);
  // The copy chunk rides over file.read/file.append, so it is bounded
  // by what a storage node will serve in one call.
  EXPECT_THROW(config_from(util::Config::parse("max_read_chunk 65536\n"
                                               "replication_chunk 65537\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("fsck_interval_ms -1\n")),
               ParseError);
  EXPECT_THROW(config_from(util::Config::parse("fsck_interval_ms 86400001\n")),
               ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("replica_suspect_ttl_ms -1\n")),
      ParseError);
  EXPECT_THROW(
      config_from(util::Config::parse("replica_suspect_ttl_ms 600001\n")),
      ParseError);
}

TEST(ConfigLoader, LoadsCredentialTrustAndUserMapFiles) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string cred_path = tmp.path() + "/server.cred";
  std::string ca_path = tmp.path() + "/ca.cert";
  std::string map_path = tmp.path() + "/user_map";
  std::ofstream(cred_path) << pki.server.encode();
  std::ofstream(ca_path) << pki.ca.certificate().encode();
  std::ofstream(map_path) << "joe ; /O=testgrid.org/OU=People ; ;\n";

  util::Config config = util::Config::parse(
      "use_tls true\n"
      "credential_file " + cred_path + "\n" +
      "trust_file " + ca_path + "\n" +
      "user_map_file " + map_path + "\n");
  ClarensConfig out = config_from(config);
  ASSERT_TRUE(out.credential.has_value());
  EXPECT_EQ(out.credential->certificate.subject(),
            pki.server.certificate.subject());
  EXPECT_EQ(out.trust.size(), 1u);
  ASSERT_EQ(out.user_map.size(), 1u);
  EXPECT_EQ(out.user_map[0].system_user, "joe");
}

// Boot a full server from a config file and make one authenticated call.
TEST(ConfigLoader, BootsAServer) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string ca_path = tmp.path() + "/ca.cert";
  std::ofstream(ca_path) << pki.ca.certificate().encode();
  std::string conf_path = tmp.path() + "/clarens.conf";
  std::ofstream(conf_path) << "port 0\n"
                           << "trust_file " << ca_path << "\n"
                           << "allow system *\n"
                           << "allow echo *\n";

  ClarensServer server(load_config_file(conf_path));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.alice;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();
  EXPECT_EQ(client.call("echo.echo", {rpc::Value("booted")}).as_string(),
            "booted");
  server.stop();
}

}  // namespace
}  // namespace clarens::core
