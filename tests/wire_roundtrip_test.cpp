// Wire-pipeline property tests for the zero-copy codec rewrite:
//  * randomized Value trees — deep nesting, every scalar type,
//    entity-laden and embedded-NUL strings, >64KiB binary blobs —
//    round-trip through all four protocols (request and response
//    envelopes) with structural equality;
//  * re-serializing the parsed result is byte-identical (the serializers
//    are deterministic, so parse must lose nothing);
//  * the Buffer-appending serializer overloads produce exactly the bytes
//    of the string forms;
//  * malformed envelopes throw ParseError rather than crash — of
//    particular interest under the ASan/TSan presets, since the parsers
//    now slice string_views out of the input instead of copying.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/random.hpp"
#include "rpc/binrpc.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/protocol.hpp"
#include "rpc/soap.hpp"
#include "rpc/xml.hpp"
#include "rpc/xmlrpc.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"

namespace clarens {
namespace {

using crypto::Drbg;
using rpc::Protocol;

constexpr Protocol kProtocols[] = {Protocol::XmlRpc, Protocol::JsonRpc,
                                   Protocol::Soap, Protocol::Binary};

// Strings that stress the escapers: XML entities, JSON escapes, CDATA
// terminators, embedded NULs, control bytes, multi-byte UTF-8.
std::string random_nasty_text(Drbg& rng, std::size_t max_len) {
  static const char* alphabet =
      "ab<>&\"'{}[]\\/\n\r\t;:!?-_ ]]>%&#x41;&amp;\x01\x1f";
  std::size_t len = rng.uniform(max_len + 1);
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    std::uint64_t pick = rng.uniform(std::strlen(alphabet) + 3);
    if (pick == 0) {
      out.push_back('\0');  // embedded NUL
    } else if (pick == 1) {
      out += "\xc3\xa9";  // é
    } else if (pick == 2) {
      out += "\xe2\x82\xac";  // €
    } else {
      out.push_back(alphabet[pick - 3]);
    }
  }
  return out;
}

rpc::Value random_value(Drbg& rng, int depth) {
  std::uint64_t kind = rng.uniform(depth > 0 ? 9 : 7);
  switch (kind) {
    case 0: return rpc::Value();
    case 1: return rpc::Value(rng.uniform(2) == 1);
    case 2: return rpc::Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3: {
      double d =
          static_cast<double>(static_cast<std::int64_t>(rng.next_u64())) /
          1048576.0;
      return rpc::Value(d);
    }
    case 4: return rpc::Value(random_nasty_text(rng, 48));
    case 5: return rpc::Value(rng.bytes(rng.uniform(96)));
    case 6:
      return rpc::Value(rpc::DateTime{
          static_cast<std::int64_t>(rng.uniform(4102444800ull))});
    case 7: {
      rpc::Value array = rpc::Value::array();
      std::uint64_t n = rng.uniform(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        array.push(random_value(rng, depth - 1));
      }
      return array;
    }
    default: {
      rpc::Value object = rpc::Value::struct_();
      std::uint64_t n = rng.uniform(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        object.set("k" + std::to_string(i) + random_nasty_text(rng, 5),
                   random_value(rng, depth - 1));
      }
      return object;
    }
  }
}

class WireRoundTrip : public ::testing::TestWithParam<int> {};

// Response envelope: parse(serialize(x)) == x, and the second
// serialization is byte-identical to the first.
TEST_P(WireRoundTrip, ResponseStableAndByteIdentical) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 7});
  for (int trial = 0; trial < 15; ++trial) {
    rpc::Response response = rpc::Response::success(random_value(rng, 5));
    response.id = rpc::Value(static_cast<std::int64_t>(trial));
    for (Protocol protocol : kProtocols) {
      std::string wire = rpc::serialize_response(protocol, response);
      rpc::Response parsed = rpc::parse_response(protocol, wire);
      ASSERT_EQ(parsed.result, response.result)
          << rpc::to_string(protocol) << " trial " << trial;
      // Deterministic serializers: nothing may be lost in the round trip.
      std::string rewire = rpc::serialize_response(protocol, parsed);
      ASSERT_EQ(rewire, wire)
          << rpc::to_string(protocol) << " trial " << trial;
    }
  }
}

// Request envelope (method + params list).
TEST_P(WireRoundTrip, RequestStableAndByteIdentical) {
  Drbg rng(std::vector<std::uint8_t>{static_cast<std::uint8_t>(GetParam()), 8});
  for (int trial = 0; trial < 15; ++trial) {
    rpc::Request request;
    request.method = "echo.file_" + std::to_string(trial);
    request.id = rpc::Value(static_cast<std::int64_t>(trial));
    std::uint64_t n = rng.uniform(4);
    for (std::uint64_t i = 0; i < n; ++i) {
      request.params.push_back(random_value(rng, 4));
    }
    for (Protocol protocol : kProtocols) {
      std::string wire = rpc::serialize_request(protocol, request);
      rpc::Request parsed = rpc::parse_request(protocol, wire);
      ASSERT_EQ(parsed.method, request.method) << rpc::to_string(protocol);
      ASSERT_EQ(parsed.params.size(), request.params.size())
          << rpc::to_string(protocol);
      for (std::size_t i = 0; i < request.params.size(); ++i) {
        ASSERT_EQ(parsed.params[i], request.params[i])
            << rpc::to_string(protocol) << " param " << i;
      }
      std::string rewire = rpc::serialize_request(protocol, parsed);
      ASSERT_EQ(rewire, wire) << rpc::to_string(protocol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(0, 6));

// The Buffer-appending overloads must emit exactly the string forms —
// they are the same serializer, but verify the dispatch plumbing.
TEST(WireRoundTrip, BufferOverloadsMatchStringForms) {
  Drbg rng(std::vector<std::uint8_t>{99});
  rpc::Response response = rpc::Response::success(random_value(rng, 4));
  rpc::Request request;
  request.method = "system.ping";
  request.params.push_back(random_value(rng, 3));
  for (Protocol protocol : kProtocols) {
    util::Buffer arena;
    rpc::serialize_response(protocol, response, arena);
    EXPECT_EQ(arena.peek_view(), rpc::serialize_response(protocol, response))
        << rpc::to_string(protocol);
    arena.clear();
    rpc::serialize_request(protocol, request, arena);
    EXPECT_EQ(arena.peek_view(), rpc::serialize_request(protocol, request))
        << rpc::to_string(protocol);
  }
}

// Giant binary payloads cross the Buffer's shrink floor and the base64
// streaming-append path.
TEST(WireRoundTrip, LargeBinaryPayload) {
  Drbg rng(std::vector<std::uint8_t>{17});
  std::vector<std::uint8_t> blob = rng.bytes(96 * 1024);  // > 64 KiB
  rpc::Response response =
      rpc::Response::success(rpc::Value(std::move(blob)));
  for (Protocol protocol : kProtocols) {
    std::string wire = rpc::serialize_response(protocol, response);
    rpc::Response parsed = rpc::parse_response(protocol, wire);
    ASSERT_EQ(parsed.result, response.result) << rpc::to_string(protocol);
    ASSERT_EQ(rpc::serialize_response(protocol, parsed), wire)
        << rpc::to_string(protocol);
  }
}

// Deeply nested single-chain values exercise the pull parser's stack
// handling without the random generator's branching factor limits.
TEST(WireRoundTrip, DeepNesting) {
  rpc::Value v("bottom");
  for (int i = 0; i < 40; ++i) {
    rpc::Value array = rpc::Value::array();
    array.push(std::move(v));
    v = std::move(array);
  }
  rpc::Response response = rpc::Response::success(std::move(v));
  for (Protocol protocol : kProtocols) {
    std::string wire = rpc::serialize_response(protocol, response);
    rpc::Response parsed = rpc::parse_response(protocol, wire);
    ASSERT_EQ(parsed.result, response.result) << rpc::to_string(protocol);
  }
}

// Malformed envelopes must throw ParseError (never crash or hang) —
// slicing parsers are prone to out-of-bounds reads on truncated input,
// which the sanitizer presets would catch here.
TEST(WireRoundTrip, MalformedEnvelopesThrow) {
  const char* xml_bad[] = {
      "",
      "<methodCall>",
      "<methodCall></methodCall>",
      "<methodCall><methodName>m</methodName></methodCall><x/>",
      "<methodResponse><params><param><value><int>7</int></value>",
      "<methodCall><methodName>m</methodName><params><param>"
      "<value><int>zz</int></value></param></params></methodCall>",
      "<methodCall><methodName>m</methodName><params><param>"
      "<value>&bogus;</value></param></params></methodCall>",
      "<methodCall><methodName>m</methodName><params><param>"
      "<value><int>1</value></int></param></params></methodCall>",
  };
  for (const char* body : xml_bad) {
    EXPECT_THROW(rpc::xmlrpc::parse_request(body), ParseError) << body;
  }

  const char* json_bad[] = {
      "", "{", "{\"method\":", "[1,2", "{\"method\":\"m\",\"params\":3}",
      "{\"method\":\"m\"} trailing", "{\"method\":\"m\",\"params\":[\"\\u12\"]}",
  };
  for (const char* body : json_bad) {
    EXPECT_THROW(rpc::jsonrpc::parse_request(body), ParseError) << body;
  }

  const char* soap_bad[] = {
      "", "<Envelope/>", "<Envelope><Body/></Envelope><x/>",
      "<Envelope><Body><m><param></param></m></Body></Envelope>",
  };
  for (const char* body : soap_bad) {
    EXPECT_THROW(rpc::soap::parse_request(body), ParseError) << body;
  }

  // Truncations at every prefix of a valid binary frame.
  std::string bin = rpc::binrpc::serialize_request([] {
    rpc::Request r;
    r.method = "m";
    r.params.push_back(rpc::Value(std::string("payload")));
    return r;
  }());
  for (std::size_t len = 0; len < bin.size(); ++len) {
    EXPECT_THROW(rpc::binrpc::parse_request(bin.substr(0, len)), ParseError)
        << "truncated at " << len;
  }
  std::string corrupt = bin;
  corrupt[0] = 'X';
  EXPECT_THROW(rpc::binrpc::parse_request(corrupt), ParseError);
}

// The slice tree keeps views into the caller's buffer; decoded access
// must copy, view access must alias.
TEST(WireRoundTrip, SliceLifetimesAndDecode) {
  std::string doc = "<root attr=\"a&amp;b\"><clean>plain text</clean>"
                    "<coded>x &lt;&gt; y</coded>"
                    "<cd><![CDATA[<raw&stuff>]]></cd></root>";
  rpc::XmlSlice root = rpc::xml_parse_slices(doc);
  ASSERT_EQ(root.children.size(), 3u);
  const rpc::XmlSlice& clean = root.children[0];
  EXPECT_TRUE(clean.text_is_view());
  // The view aliases the document storage — zero-copy.
  EXPECT_GE(clean.text_view().data(), doc.data());
  EXPECT_LT(clean.text_view().data(), doc.data() + doc.size());
  EXPECT_EQ(clean.text_view(), "plain text");
  const rpc::XmlSlice& coded = root.children[1];
  EXPECT_FALSE(coded.text_is_view());
  EXPECT_EQ(coded.text(), "x <> y");
  EXPECT_EQ(root.children[2].text(), "<raw&stuff>");
  EXPECT_EQ(root.attribute("attr"), "a&b");
}

}  // namespace
}  // namespace clarens
