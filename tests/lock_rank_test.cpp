// Runtime lock-rank detector (src/util/sync.cpp): a deliberate rank
// inversion must abort with both lock names, and legal chains must stay
// silent. The detector only exists under CLARENS_LOCK_RANK_CHECK (debug
// / asan / tsan / lockrank presets); in release builds these tests skip.

#include "util/sync.hpp"

#include <gtest/gtest.h>

namespace clarens::util {
namespace {

#if defined(CLARENS_LOCK_RANK_CHECK) && CLARENS_LOCK_RANK_CHECK

TEST(LockRankDeathTest, AbortsOnInvertedAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex inner{LockLevel::kDbStoreJournal};
        Mutex outer{LockLevel::kCoreJob};
        LockGuard hold(inner);
        // clarens-lint: allow(lock-order): deliberate inversion under EXPECT_DEATH
        LockGuard up(outer);  // rank 20 while holding rank 50
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, AbortsOnSameRankWithoutToken) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{LockLevel::kCoreJob};
        Mutex b{LockLevel::kCoreTransfer};  // also rank 20
        LockGuard ga(a);
        // clarens-lint: allow(lock-order): deliberate inversion under EXPECT_DEATH
        LockGuard gb(b);  // sideways without a SameRankToken
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, AbortsOnRecursiveAcquisition) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m{LockLevel::kCoreJob};
        LockGuard first(m);
        // clarens-lint: allow(lock-order): deliberate inversion under EXPECT_DEATH
        LockGuard second(m);  // self-deadlock caught before blocking
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SharedLockRanksLikeExclusive) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SharedMutex shard{LockLevel::kDbStoreShard};
        Mutex job{LockLevel::kCoreJob};
        ReadLock read(shard);
        // clarens-lint: allow(lock-order): deliberate inversion under EXPECT_DEATH
        LockGuard up(job);  // upward from a shared hold still aborts
      },
      "lock-rank violation");
}

TEST(LockRank, LegalDownwardChainIsSilent) {
  Mutex job{LockLevel::kCoreJob};
  SharedMutex shard{LockLevel::kDbStoreShard};
  Mutex journal{LockLevel::kDbStoreJournal};
  {
    LockGuard g1(job);
    WriteLock g2(shard);
    UniqueLock g3(journal);
    EXPECT_EQ(rank_check::held_count(), 3);
  }
  EXPECT_EQ(rank_check::held_count(), 0);
}

TEST(LockRank, SameRankTokenPermitsSidewaysNesting) {
  Mutex write{LockLevel::kCoreVoWrite};
  Mutex cache{LockLevel::kCoreVoRootCache};
  LockGuard outer(write);
  LockGuard inner(cache, SameRankToken{"core.vo.write -> root_cache"});
  EXPECT_EQ(rank_check::held_count(), 2);
}

TEST(LockRank, OutOfOrderReleaseKeepsStackConsistent) {
  Mutex job{LockLevel::kCoreJob};
  Mutex journal{LockLevel::kDbStoreJournal};
  Mutex logging{LockLevel::kUtilLogging};
  job.lock();
  journal.lock();
  job.unlock();  // release the *outer* lock first
  EXPECT_EQ(rank_check::held_count(), 1);
  logging.lock();  // still legal downward from journal
  EXPECT_EQ(rank_check::held_count(), 2);
  logging.unlock();
  journal.unlock();
  EXPECT_EQ(rank_check::held_count(), 0);
  // With nothing held, acquiring the low-rank lock again is legal.
  LockGuard again(job);
  EXPECT_EQ(rank_check::held_count(), 1);
}

#else  // !CLARENS_LOCK_RANK_CHECK

TEST(LockRank, DetectorCompiledOut) {
  GTEST_SKIP() << "CLARENS_LOCK_RANK_CHECK is off in this build; the "
                  "detector runs in the debug/asan/tsan/lockrank presets";
}

#endif

}  // namespace
}  // namespace clarens::util
