// Unit tests for the HTTP layer: message model, URL codec, incremental
// parsers (byte-split invariance, chunked bodies), and the server
// end-to-end over real sockets including keep-alive and sendfile GETs.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <thread>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "http/server.hpp"
#include "net/socket.hpp"
#include "test_fixtures.hpp"
#include "util/error.hpp"

namespace clarens::http {
namespace {

using clarens::testing::TempDir;

// ---------- message model ----------

TEST(Headers, CaseInsensitiveLookupOrderPreserving) {
  Headers headers;
  headers.add("Content-Type", "text/xml");
  headers.add("X-One", "1");
  EXPECT_EQ(headers.get("content-type"), "text/xml");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/xml");
  EXPECT_FALSE(headers.get("missing").has_value());
  headers.set("x-one", "2");
  EXPECT_EQ(headers.get("X-One"), "2");
  EXPECT_EQ(headers.all().size(), 2u);
}

TEST(Request, PathAndQueryDecoding) {
  Request request;
  request.target = "/data/my%20file.bin?offset=10&length=4&flag";
  EXPECT_EQ(request.path(), "/data/my file.bin");
  auto query = request.query();
  EXPECT_EQ(query["offset"], "10");
  EXPECT_EQ(query["length"], "4");
  EXPECT_EQ(query["flag"], "");
}

TEST(Request, KeepAliveSemantics) {
  Request r11;
  r11.version = "HTTP/1.1";
  EXPECT_TRUE(r11.keep_alive());
  r11.headers.set("Connection", "close");
  EXPECT_FALSE(r11.keep_alive());
  Request r10;
  r10.version = "HTTP/1.0";
  EXPECT_FALSE(r10.keep_alive());
  r10.headers.set("Connection", "keep-alive");
  EXPECT_TRUE(r10.keep_alive());
}

TEST(Url, EncodeDecodeRoundTrip) {
  std::string nasty = "a b+c/%25?&=#\x7f";
  EXPECT_EQ(url_decode(url_encode(nasty)), nasty);
  EXPECT_THROW(url_decode("%zz"), ParseError);
  EXPECT_THROW(url_decode("%1"), ParseError);
}

TEST(Response, SerializeSetsContentLength) {
  Response response = Response::make(200, "body12");
  std::string wire = response.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nbody12"), std::string::npos);
}

// ---------- request parser ----------

TEST(RequestParser, SimplePost) {
  RequestParser parser;
  parser.feed("POST /clarens HTTP/1.1\r\nContent-Length: 5\r\n"
              "Content-Type: text/xml\r\n\r\nhello");
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/clarens");
  EXPECT_EQ(request->body, "hello");
  EXPECT_FALSE(parser.next().has_value());
}

TEST(RequestParser, GetWithoutBody) {
  RequestParser parser;
  parser.feed("GET /x HTTP/1.1\r\nHost: h\r\n\r\n");
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "GET");
  EXPECT_TRUE(request->body.empty());
}

TEST(RequestParser, PipelinedRequests) {
  RequestParser parser;
  parser.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  auto a = parser.next();
  auto b = parser.next();
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->target, "/a");
  EXPECT_EQ(b->target, "/b");
}

TEST(RequestParser, ChunkedBody) {
  RequestParser parser;
  parser.feed("POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
              "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "hello world");
}

TEST(RequestParser, ChunkedWithExtensionAndTrailer) {
  RequestParser parser;
  parser.feed("POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
              "4;ext=1\r\nwxyz\r\n0\r\nX-Trailer: v\r\n\r\n");
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "wxyz");
}

TEST(RequestParser, MalformedInputsThrow) {
  {
    RequestParser parser;
    parser.feed("NOT A REQUEST\r\n\r\n");
    EXPECT_THROW(parser.next(), ParseError);
  }
  {
    RequestParser parser;
    parser.feed("GET /x HTTP/9.9\r\n\r\n");
    EXPECT_THROW(parser.next(), ParseError);
  }
  {
    RequestParser parser;
    parser.feed("GET /x HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n");
    EXPECT_THROW(parser.next(), ParseError);
  }
  {
    RequestParser parser;
    parser.feed("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                "zz\r\n");
    EXPECT_THROW(parser.next(), ParseError);
  }
}

// Byte-split invariance: any split of the wire bytes yields the same
// parse. This is the property parsers get wrong most often.
class SplitInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitInvariance, RequestParsesIdenticallyAtEverySplit) {
  const std::string wire =
      "POST /clarens HTTP/1.1\r\nContent-Length: 11\r\n"
      "X-Clarens-Session: abc123\r\n\r\nhello world";
  std::size_t split = GetParam() % wire.size();
  RequestParser parser;
  parser.feed(std::string_view(wire).substr(0, split));
  EXPECT_FALSE(parser.next().has_value() && split < wire.size() - 11);
  parser.feed(std::string_view(wire).substr(split));
  auto request = parser.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "hello world");
  EXPECT_EQ(request->headers.get("X-Clarens-Session"), "abc123");
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitInvariance,
                         ::testing::Range<std::size_t>(1, 90, 7));

// ---------- response parser ----------

TEST(ResponseParser, StatusLineAndBody) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nnop");
  auto response = parser.next();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
  EXPECT_EQ(response->reason, "Not Found");
  EXPECT_EQ(response->body, "nop");
}

TEST(ResponseParser, ChunkedResponse) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
              "3\r\nabc\r\n0\r\n\r\n");
  auto response = parser.next();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "abc");
}

// ---------- server end-to-end ----------

/// Send raw bytes, read until one complete response parses, and return
/// a "status reason\nheaders...\nbody" flattened form for substring
/// assertions.
std::string raw_roundtrip(std::uint16_t port, const std::string& wire) {
  net::TcpConnection conn = net::TcpConnection::connect("127.0.0.1", port);
  conn.write_all(wire);
  ResponseParser parser;
  std::array<std::uint8_t, 8192> buf;
  for (;;) {
    if (auto response = parser.next()) {
      std::string flat = "HTTP/1.1 " + std::to_string(response->status) + " " +
                         response->reason + "\r\n";
      for (const auto& [name, value] : response->headers.all()) {
        flat += name + ": " + value + "\r\n";
      }
      flat += "\r\n" + response->body;
      return flat;
    }
    std::size_t n = conn.read(buf);
    if (n == 0) return "";
    parser.feed(std::span<const std::uint8_t>(buf.data(), n));
  }
}

TEST(Server, ServesHandlerResponses) {
  Server server({}, [](const Request& request, const Peer&) {
    return Response::make(200, "echo:" + request.body);
  });
  server.start();
  std::string reply = raw_roundtrip(
      server.port(), "POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("echo:hi"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

TEST(Server, KeepAliveServesMultipleRequests) {
  Server server({}, [](const Request&, const Peer&) {
    return Response::make(200, "ok");
  });
  server.start();
  net::TcpConnection conn = net::TcpConnection::connect("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    conn.write_all(std::string_view("GET / HTTP/1.1\r\n\r\n"));
    std::string got;
    std::array<std::uint8_t, 1024> buf;
    while (got.find("ok") == std::string::npos) {
      std::size_t n = conn.read(buf);
      ASSERT_GT(n, 0u);
      got.append(buf.begin(), buf.begin() + n);
    }
  }
  EXPECT_EQ(server.requests_served(), 3u);
  server.stop();
}

TEST(Server, HandlerExceptionBecomes500) {
  Server server({}, [](const Request&, const Peer&) -> Response {
    throw clarens::Error("handler exploded");
  });
  server.start();
  std::string reply =
      raw_roundtrip(server.port(), "GET / HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("500"), std::string::npos);
  EXPECT_NE(reply.find("handler exploded"), std::string::npos);
  server.stop();
}

TEST(Server, MalformedRequestGets400) {
  Server server({}, [](const Request&, const Peer&) {
    return Response::make(200, "ok");
  });
  server.start();
  std::string reply = raw_roundtrip(server.port(), "GARBAGE\r\n\r\n");
  EXPECT_NE(reply.find("400"), std::string::npos);
  server.stop();
}

TEST(Server, SendfileServesFileRegion) {
  TempDir tmp;
  std::string path = tmp.path() + "/payload.bin";
  {
    std::ofstream out(path, std::ios::binary);
    for (int i = 0; i < 1000; ++i) out.put(static_cast<char>('A' + i % 26));
  }
  Server server({}, [&path](const Request&, const Peer&) {
    Response response = Response::make(200, "", "application/octet-stream");
    response.file = Response::FileRegion{path, 2, 10};
    return response;
  });
  server.start();
  std::string reply =
      raw_roundtrip(server.port(), "GET /f HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("Content-Length: 10"), std::string::npos);
  EXPECT_NE(reply.find("CDEFGHIJKL"), std::string::npos);
  server.stop();
}

TEST(Server, MissingFileRegionIs404) {
  Server server({}, [](const Request&, const Peer&) {
    Response response;
    response.file = Response::FileRegion{"/no/such/file", 0, -1};
    return response;
  });
  server.start();
  std::string reply =
      raw_roundtrip(server.port(), "GET /f HTTP/1.1\r\n\r\n");
  EXPECT_NE(reply.find("404"), std::string::npos);
  server.stop();
}

TEST(Server, StopIsIdempotentAndPrompt) {
  Server server({}, [](const Request&, const Peer&) {
    return Response::make(200, "ok");
  });
  server.start();
  server.stop();
  server.stop();
  SUCCEED();
}

}  // namespace
}  // namespace clarens::http
