// Unit tests for ACL management: Apache-order evaluation within one
// spec, lowest-level-first walking across the hierarchy, group- and
// DN-prefix matching, and the file read/write split.
#include <gtest/gtest.h>

#include "core/acl.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "util/error.hpp"

namespace clarens::core {
namespace {

const char* kRoot = "/O=grid/CN=Root";
const char* kAliceStr = "/O=grid/OU=People/CN=Alice";
const char* kBobStr = "/O=grid/OU=People/CN=Bob";
const char* kEveStr = "/O=evil/OU=People/CN=Eve";

pki::DistinguishedName dn(const char* s) {
  return pki::DistinguishedName::parse(s);
}

struct AclFixture : ::testing::Test {
  db::Store store;
  VoManager vo{store, {kRoot}};
  AclManager acl{store, vo, /*default_allow=*/false};

  AclFixture() {
    vo.create_group("cms", dn(kRoot));
    vo.create_group("cms.admins", dn(kRoot));
    vo.add_member("cms", kAliceStr, dn(kRoot));
    vo.add_member("cms.admins", kBobStr, dn(kRoot));
  }
};

// ---------- evaluate_spec: Apache order semantics ----------

TEST_F(AclFixture, AllowDenyOrderDenyOverrides) {
  AclSpec spec;
  spec.order = AclSpec::Order::AllowDeny;
  spec.allow_dns = {"/O=grid"};
  spec.deny_dns = {kAliceStr};
  // Alice matches both lists: with allow,deny the deny wins.
  EXPECT_EQ(evaluate_spec(spec, dn(kAliceStr), vo), AclDecision::Deny);
  EXPECT_EQ(evaluate_spec(spec, dn(kBobStr), vo), AclDecision::Allow);
  EXPECT_EQ(evaluate_spec(spec, dn(kEveStr), vo), AclDecision::Unspecified);
}

TEST_F(AclFixture, DenyAllowOrderAllowOverrides) {
  AclSpec spec;
  spec.order = AclSpec::Order::DenyAllow;
  spec.deny_dns = {"/O=grid"};
  spec.allow_dns = {kAliceStr};
  // Alice matches both: with deny,allow the allow wins.
  EXPECT_EQ(evaluate_spec(spec, dn(kAliceStr), vo), AclDecision::Allow);
  EXPECT_EQ(evaluate_spec(spec, dn(kBobStr), vo), AclDecision::Deny);
}

TEST_F(AclFixture, GroupListsResolveThroughVo) {
  AclSpec spec;
  spec.allow_groups = {"cms"};
  EXPECT_EQ(evaluate_spec(spec, dn(kAliceStr), vo), AclDecision::Allow);
  EXPECT_EQ(evaluate_spec(spec, dn(kEveStr), vo), AclDecision::Unspecified);
  AclSpec deny;
  deny.deny_groups = {"cms.admins"};
  EXPECT_EQ(evaluate_spec(deny, dn(kBobStr), vo), AclDecision::Deny);
}

TEST_F(AclFixture, WildcardMatchesAnyone) {
  AclSpec spec;
  spec.allow_dns = {AclSpec::kAnyone};
  EXPECT_EQ(evaluate_spec(spec, dn(kEveStr), vo), AclDecision::Allow);
}

TEST_F(AclFixture, SpecEncodingRoundTrips) {
  AclSpec spec;
  spec.order = AclSpec::Order::DenyAllow;
  spec.allow_dns = {"/O=a", "*"};
  spec.allow_groups = {"g1", "g2"};
  spec.deny_dns = {"/O=b"};
  spec.deny_groups = {"g3"};
  AclSpec decoded = decode_spec(encode_spec(spec));
  EXPECT_EQ(decoded.order, spec.order);
  EXPECT_EQ(decoded.allow_dns, spec.allow_dns);
  EXPECT_EQ(decoded.allow_groups, spec.allow_groups);
  EXPECT_EQ(decoded.deny_dns, spec.deny_dns);
  EXPECT_EQ(decoded.deny_groups, spec.deny_groups);
}

// ---------- hierarchical method ACLs ----------

TEST_F(AclFixture, HigherLevelGrantCoversLowerMethods) {
  AclSpec spec;
  spec.allow_dns = {kAliceStr};
  acl.set_method_acl("file", spec);
  EXPECT_TRUE(acl.check_method("file.read", dn(kAliceStr)));
  EXPECT_TRUE(acl.check_method("file.sub.deep", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_method("file.read", dn(kBobStr)));
  EXPECT_FALSE(acl.check_method("shell.cmd", dn(kAliceStr)));
}

TEST_F(AclFixture, LowerLevelDenyOverridesHigherGrant) {
  // "A DN granted access to a higher level method automatically has
  // access to a lower level method, unless specifically denied at the
  // lower level." (§2.2)
  AclSpec grant;
  grant.allow_dns = {kAliceStr};
  acl.set_method_acl("file", grant);
  AclSpec revoke;
  revoke.deny_dns = {kAliceStr};
  acl.set_method_acl("file.rm", revoke);
  EXPECT_TRUE(acl.check_method("file.read", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_method("file.rm", dn(kAliceStr)));
}

TEST_F(AclFixture, LowerLevelGrantDoesNotLeakUp) {
  AclSpec grant;
  grant.allow_dns = {kAliceStr};
  acl.set_method_acl("file.read", grant);
  EXPECT_TRUE(acl.check_method("file.read", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_method("file", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_method("file.rm", dn(kAliceStr)));
}

TEST_F(AclFixture, UnspecifiedAtAllLevelsUsesDefault) {
  EXPECT_FALSE(acl.check_method("anything.at.all", dn(kAliceStr)));
  AclManager open_acl(store, vo, /*default_allow=*/true);
  EXPECT_TRUE(open_acl.check_method("anything.at.all", dn(kAliceStr)));
}

TEST_F(AclFixture, ThreeLevelMethodHierarchy) {
  AclSpec module_grant;
  module_grant.allow_groups = {"cms"};
  acl.set_method_acl("analysis", module_grant);
  AclSpec submodule_deny;
  submodule_deny.deny_dns = {kAliceStr};
  acl.set_method_acl("analysis.admin", submodule_deny);
  // module.submodule.method evaluation from the lowest applicable level.
  EXPECT_TRUE(acl.check_method("analysis.plot.histogram", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_method("analysis.admin.reset", dn(kAliceStr)));
}

TEST_F(AclFixture, RemoveMethodAclRestoresDefault) {
  AclSpec spec;
  spec.allow_dns = {kAliceStr};
  acl.set_method_acl("m", spec);
  EXPECT_TRUE(acl.check_method("m.f", dn(kAliceStr)));
  acl.remove_method_acl("m");
  EXPECT_FALSE(acl.check_method("m.f", dn(kAliceStr)));
  EXPECT_FALSE(acl.get_method_acl("m").has_value());
}

TEST_F(AclFixture, ListMethodAcls) {
  AclSpec spec;
  acl.set_method_acl("a", spec);
  acl.set_method_acl("b.c", spec);
  EXPECT_EQ(acl.list_method_acls(), (std::vector<std::string>{"a", "b.c"}));
}

// ---------- file ACLs ----------

TEST_F(AclFixture, FileReadWriteAreIndependent) {
  FileAcl facl;
  facl.read.allow_dns = {"/O=grid/OU=People"};
  facl.write.allow_dns = {kBobStr};
  acl.set_file_acl("/data", facl);
  EXPECT_TRUE(acl.check_file_read("/data/run1/f.bin", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_file_write("/data/run1/f.bin", dn(kAliceStr)));
  EXPECT_TRUE(acl.check_file_write("/data/run1/f.bin", dn(kBobStr)));
  EXPECT_FALSE(acl.check_file_read("/data/x", dn(kEveStr)));
}

TEST_F(AclFixture, FilePathHierarchyLowestWins) {
  FileAcl branch;
  branch.read.allow_dns = {"/O=grid/OU=People"};
  acl.set_file_acl("/data", branch);
  FileAcl leaf;
  leaf.read.deny_dns = {kBobStr};
  leaf.read.order = AclSpec::Order::AllowDeny;
  acl.set_file_acl("/data/private", leaf);
  EXPECT_TRUE(acl.check_file_read("/data/public/a", dn(kBobStr)));
  EXPECT_FALSE(acl.check_file_read("/data/private/a", dn(kBobStr)));
  // Alice is unaffected by Bob's leaf deny; the branch grant applies.
  EXPECT_TRUE(acl.check_file_read("/data/private/a", dn(kAliceStr)));
}

TEST_F(AclFixture, RootFileAclAppliesEverywhere) {
  FileAcl facl;
  facl.read.allow_groups = {"cms"};
  acl.set_file_acl("/", facl);
  EXPECT_TRUE(acl.check_file_read("/any/path/at/all", dn(kAliceStr)));
  EXPECT_FALSE(acl.check_file_read("/any/path/at/all", dn(kEveStr)));
}

TEST_F(AclFixture, FileAclRoundTripThroughStore) {
  FileAcl facl;
  facl.read.allow_dns = {"/O=a"};
  facl.write.deny_groups = {"cms"};
  facl.write.order = AclSpec::Order::DenyAllow;
  acl.set_file_acl("/p", facl);
  auto loaded = acl.get_file_acl("/p");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->read.allow_dns, facl.read.allow_dns);
  EXPECT_EQ(loaded->write.deny_groups, facl.write.deny_groups);
  EXPECT_EQ(loaded->write.order, AclSpec::Order::DenyAllow);
  acl.remove_file_acl("/p");
  EXPECT_FALSE(acl.get_file_acl("/p").has_value());
}

TEST_F(AclFixture, MalformedStoredSpecRejected) {
  EXPECT_THROW(decode_spec("{\"order\":\"sideways\"}"), Error);
  EXPECT_THROW(decode_spec("not json"), ParseError);
}

}  // namespace
}  // namespace clarens::core
