// Unit tests for the RPC layer: the Value model, XML mini-parser, all
// three wire codecs (with cross-codec property round-trips), protocol
// detection, and the method registry.
#include <gtest/gtest.h>

#include "rpc/binrpc.hpp"
#include "rpc/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/protocol.hpp"
#include "rpc/registry.hpp"
#include "rpc/soap.hpp"
#include "rpc/value.hpp"
#include "rpc/xml.hpp"
#include "rpc/xmlrpc.hpp"
#include "util/error.hpp"

namespace clarens::rpc {
namespace {

// ---------- Value ----------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_nil());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);  // int widens to double
  EXPECT_EQ(Value("s").as_string(), "s");
  EXPECT_EQ(Value(DateTime{123}).as_datetime().unix_seconds, 123);
  std::vector<std::uint8_t> blob = {1, 2, 3};
  EXPECT_EQ(Value(blob).as_binary(), blob);
}

TEST(Value, TypeMismatchThrowsTypedFault) {
  try {
    Value(42).as_string();
    FAIL();
  } catch (const Fault& fault) {
    EXPECT_EQ(fault.code(), kFaultType);
  }
  EXPECT_THROW(Value("x").as_int(), Fault);
  EXPECT_THROW(Value("x").as_double(), Fault);  // no string->double coercion
}

TEST(Value, StructOperations) {
  Value v = Value::struct_();
  v.set("a", 1);
  v.set("b", "two");
  v.set("a", 10);  // replace
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at("a").as_int(), 10);
  EXPECT_TRUE(v.has("b"));
  EXPECT_FALSE(v.has("c"));
  EXPECT_EQ(v.find("c"), nullptr);
  EXPECT_THROW(v.at("c"), Fault);
  // Member order is preserved.
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_EQ(v.members()[1].first, "b");
}

TEST(Value, ArrayOperations) {
  Value v = Value::array();
  v.push(1);
  v.push("x");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.as_array()[1].as_string(), "x");
  // push on nil auto-promotes (builder convenience).
  Value w;
  w.push(5);
  EXPECT_EQ(w.size(), 1u);
}

// ---------- XML mini-parser ----------

TEST(Xml, ParsesElementsTextAndAttributes) {
  XmlNode root = xml_parse(
      "<?xml version=\"1.0\"?><a x=\"1\" y=\"two\"><b>text</b><c/>tail</a>");
  EXPECT_EQ(root.tag, "a");
  EXPECT_EQ(root.attribute("x"), "1");
  EXPECT_EQ(root.attribute("y"), "two");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].text, "text");
  EXPECT_EQ(root.children[1].tag, "c");
  EXPECT_EQ(root.text, "tail");
}

TEST(Xml, EntitiesAndCdata) {
  XmlNode root = xml_parse("<r>&lt;&gt;&amp;&quot;&apos;&#65;<![CDATA[<raw>]]></r>");
  EXPECT_EQ(root.text, "<>&\"'A<raw>");
}

TEST(Xml, NamespacePrefixesAndLocalNames) {
  XmlNode root = xml_parse(
      "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://x\"><SOAP-ENV:Body/>"
      "</SOAP-ENV:Envelope>");
  EXPECT_EQ(root.local_name(), "Envelope");
  EXPECT_NE(root.child("Body"), nullptr);
}

TEST(Xml, CommentsSkipped) {
  XmlNode root = xml_parse("<!-- head --><r><!-- mid -->x</r>");
  EXPECT_EQ(root.text, "x");
}

TEST(Xml, MalformedInputsThrow) {
  EXPECT_THROW(xml_parse("<a><b></a></b>"), ParseError);  // mismatched
  EXPECT_THROW(xml_parse("<a>"), ParseError);             // unterminated
  EXPECT_THROW(xml_parse("<a>&bogus;</a>"), ParseError);  // unknown entity
  EXPECT_THROW(xml_parse("plain text"), ParseError);
  EXPECT_THROW(xml_parse("<a></a><b></b>"), ParseError);  // two roots
}

TEST(Xml, EscapeRoundTrip) {
  std::string nasty = "<tag attr=\"x&y\">'quoted'</tag>";
  XmlNode root = xml_parse("<r>" + xml_escape(nasty) + "</r>");
  EXPECT_EQ(root.text, nasty);
}

// ---------- value corpus for cross-codec property tests ----------

Value deep_value() {
  Value inner = Value::struct_();
  inner.set("name", "events.dat");
  inner.set("size", std::int64_t{1u << 30});
  inner.set("ratio", 0.125);
  inner.set("ok", true);
  inner.set("when", DateTime{1120000000});
  inner.set("digest", std::vector<std::uint8_t>{0x00, 0xff, 0x10, 0x7f});
  Value arr = Value::array();
  arr.push(1);
  arr.push("two");
  arr.push(Value());
  arr.push(inner);
  Value outer = Value::struct_();
  outer.set("list", arr);
  outer.set("note", "contains <xml> & \"json\" specials\n\ttabs");
  return outer;
}

struct CodecCase {
  const char* name;
  std::string (*serialize_req)(const Request&);
  Request (*parse_req)(std::string_view);
  std::string (*serialize_resp)(const Response&);
  Response (*parse_resp)(std::string_view);
};

class CodecRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTrip, RequestRoundTrips) {
  const CodecCase& codec = GetParam();
  Request request;
  request.method = "file.read";
  request.params = {Value("/data/x.bin"), Value(128), Value(4096),
                    deep_value()};
  Request parsed = codec.parse_req(codec.serialize_req(request));
  EXPECT_EQ(parsed.method, request.method);
  ASSERT_EQ(parsed.params.size(), request.params.size());
  for (std::size_t i = 0; i < parsed.params.size(); ++i) {
    EXPECT_EQ(parsed.params[i], request.params[i]) << codec.name << " param " << i;
  }
}

TEST_P(CodecRoundTrip, SuccessResponseRoundTrips) {
  const CodecCase& codec = GetParam();
  Response response = Response::success(deep_value());
  Response parsed = codec.parse_resp(codec.serialize_resp(response));
  EXPECT_FALSE(parsed.is_fault);
  EXPECT_EQ(parsed.result, response.result);
}

TEST_P(CodecRoundTrip, FaultRoundTrips) {
  const CodecCase& codec = GetParam();
  Response response = Response::fault(kFaultAccess, "denied <&> you");
  Response parsed = codec.parse_resp(codec.serialize_resp(response));
  EXPECT_TRUE(parsed.is_fault);
  EXPECT_EQ(parsed.fault_code, kFaultAccess);
  EXPECT_EQ(parsed.fault_message, "denied <&> you");
}

TEST_P(CodecRoundTrip, EmptyParamsAllowed) {
  const CodecCase& codec = GetParam();
  Request request;
  request.method = "system.list_methods";
  Request parsed = codec.parse_req(codec.serialize_req(request));
  EXPECT_EQ(parsed.method, "system.list_methods");
  EXPECT_TRUE(parsed.params.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CodecRoundTrip,
    ::testing::Values(
        CodecCase{"xmlrpc", &xmlrpc::serialize_request, &xmlrpc::parse_request,
                  &xmlrpc::serialize_response, &xmlrpc::parse_response},
        CodecCase{"jsonrpc", &jsonrpc::serialize_request,
                  &jsonrpc::parse_request, &jsonrpc::serialize_response,
                  &jsonrpc::parse_response},
        CodecCase{"soap", &soap::serialize_request, &soap::parse_request,
                  &soap::serialize_response, &soap::parse_response},
        CodecCase{"binrpc", &binrpc::serialize_request, &binrpc::parse_request,
                  &binrpc::serialize_response, &binrpc::parse_response}),
    [](const ::testing::TestParamInfo<CodecCase>& info) {
      return info.param.name;
    });

// ---------- XML-RPC specifics ----------

TEST(XmlRpc, WireFormatShape) {
  Request request;
  request.method = "echo.echo";
  request.params = {Value(17)};
  std::string wire = xmlrpc::serialize_request(request);
  EXPECT_NE(wire.find("<methodCall>"), std::string::npos);
  EXPECT_NE(wire.find("<methodName>echo.echo</methodName>"), std::string::npos);
  EXPECT_NE(wire.find("<int>17</int>"), std::string::npos);
}

TEST(XmlRpc, AcceptsI4AndBareStringValues) {
  Request parsed = xmlrpc::parse_request(
      "<?xml version=\"1.0\"?><methodCall><methodName>m</methodName>"
      "<params><param><value><i4>5</i4></value></param>"
      "<param><value>bare string</value></param></params></methodCall>");
  EXPECT_EQ(parsed.params[0].as_int(), 5);
  EXPECT_EQ(parsed.params[1].as_string(), "bare string");
}

TEST(XmlRpc, RejectsMalformed) {
  EXPECT_THROW(xmlrpc::parse_request("<methodCall/>"), ParseError);
  EXPECT_THROW(xmlrpc::parse_request(
                   "<methodResponse><params/></methodResponse>"),
               ParseError);
  EXPECT_THROW(xmlrpc::parse_response("<methodCall/>"), ParseError);
}

TEST(XmlRpc, DateTimeUsesCompactIso) {
  Response response = Response::success(Value(DateTime{1120000000}));
  std::string wire = xmlrpc::serialize_response(response);
  EXPECT_NE(wire.find("<dateTime.iso8601>20050628T23:06:40</dateTime.iso8601>"),
            std::string::npos);
}

// ---------- JSON-RPC specifics ----------

TEST(JsonRpc, WireFormatShape) {
  Request request;
  request.method = "echo.echo";
  request.params = {Value("hi")};
  request.id = Value(7);
  std::string wire = jsonrpc::serialize_request(request);
  EXPECT_EQ(wire, "{\"method\":\"echo.echo\",\"params\":[\"hi\"],\"id\":7}");
}

TEST(JsonRpc, IdIsEchoed) {
  Response response = Response::success(Value(1));
  response.id = Value("corr-9");
  Response parsed = jsonrpc::parse_response(jsonrpc::serialize_response(response));
  EXPECT_EQ(parsed.id.as_string(), "corr-9");
}

TEST(JsonRpc, ParsesNestedContainersAndEscapes) {
  Value v = jsonrpc::parse_value(
      R"({"a":[1,2.5,true,null,"x\ny"],"b":{"c":"A"}})");
  EXPECT_EQ(v.at("a").as_array()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_double(), 2.5);
  EXPECT_TRUE(v.at("a").as_array()[3].is_nil());
  EXPECT_EQ(v.at("a").as_array()[4].as_string(), "x\ny");
  EXPECT_EQ(v.at("b").at("c").as_string(), "A");
}

TEST(JsonRpc, RejectsMalformed) {
  EXPECT_THROW(jsonrpc::parse_value("{"), ParseError);
  EXPECT_THROW(jsonrpc::parse_value("[1,]"), ParseError);
  EXPECT_THROW(jsonrpc::parse_value("012abc"), ParseError);
  EXPECT_THROW(jsonrpc::parse_value("\"unterminated"), ParseError);
  EXPECT_THROW(jsonrpc::parse_value("{} trailing"), ParseError);
  EXPECT_THROW(jsonrpc::parse_request("[1,2]"), ParseError);
}

TEST(JsonRpc, TaggedBinaryAndDatetime) {
  Value v = jsonrpc::parse_value(R"({"$base64":"AAEC"})");
  EXPECT_EQ(v.as_binary(), (std::vector<std::uint8_t>{0, 1, 2}));
  Value d = jsonrpc::parse_value(R"({"$datetime":"20050628T23:06:40"})");
  EXPECT_EQ(d.as_datetime().unix_seconds, 1120000000);
}

// ---------- SOAP specifics ----------

TEST(Soap, EnvelopeShape) {
  Request request;
  request.method = "echo";
  request.params = {Value(1)};
  std::string wire = soap::serialize_request(request);
  EXPECT_NE(wire.find("SOAP-ENV:Envelope"), std::string::npos);
  EXPECT_NE(wire.find("SOAP-ENV:Body"), std::string::npos);
  EXPECT_NE(wire.find("<m:echo>"), std::string::npos);
}

TEST(Soap, FaultShape) {
  std::string wire =
      soap::serialize_response(Response::fault(kFaultAuth, "no session"));
  EXPECT_NE(wire.find("SOAP-ENV:Fault"), std::string::npos);
  Response parsed = soap::parse_response(wire);
  EXPECT_TRUE(parsed.is_fault);
  EXPECT_EQ(parsed.fault_code, kFaultAuth);
}

TEST(Soap, RejectsNonEnvelope) {
  EXPECT_THROW(soap::parse_request("<methodCall/>"), ParseError);
}

// ---------- binary RPC specifics ----------

TEST(BinRpc, FrameHasMagicAndIsCompact) {
  Request request;
  request.method = "system.list_methods";
  std::string wire = binrpc::serialize_request(request);
  EXPECT_EQ(wire.substr(0, 4), "CRPC");
  // Far smaller than the XML encoding of the same request.
  EXPECT_LT(wire.size(), xmlrpc::serialize_request(request).size());
}

TEST(BinRpc, BinarySafePayloads) {
  // Embedded NULs and every byte value survive (the point of the format).
  std::vector<std::uint8_t> blob(256);
  for (int i = 0; i < 256; ++i) blob[i] = static_cast<std::uint8_t>(i);
  Response response = Response::success(Value(blob));
  Response parsed = binrpc::parse_response(binrpc::serialize_response(response));
  EXPECT_EQ(parsed.result.as_binary(), blob);
  std::string with_nul("a\0b", 3);
  Value v = binrpc::parse_value(binrpc::serialize_value(Value(with_nul)));
  EXPECT_EQ(v.as_string(), with_nul);
}

TEST(BinRpc, RejectsCorruptFrames) {
  EXPECT_THROW(binrpc::parse_request("CR"), ParseError);
  EXPECT_THROW(binrpc::parse_request("XXXX\x01\x01"), ParseError);
  Request request;
  request.method = "m";
  std::string wire = binrpc::serialize_request(request);
  wire[4] = 99;  // bad version
  EXPECT_THROW(binrpc::parse_request(wire), ParseError);
  std::string resp_as_req = binrpc::serialize_response(Response::success(Value(1)));
  EXPECT_THROW(binrpc::parse_request(resp_as_req), ParseError);  // wrong kind
  EXPECT_THROW(binrpc::parse_value("\x63"), ParseError);  // unknown tag 99
}

TEST(BinRpc, TruncatedValueThrows) {
  std::string wire = binrpc::serialize_value(Value(std::string(100, 'x')));
  EXPECT_THROW(binrpc::parse_value(wire.substr(0, wire.size() / 2)), ParseError);
  EXPECT_THROW(binrpc::parse_value(wire + "extra"), ParseError);
}

// ---------- protocol detection ----------

TEST(Protocol, DetectByContentType) {
  EXPECT_EQ(detect("application/json", "{}"), Protocol::JsonRpc);
  EXPECT_EQ(detect("application/x-clarens-binary", ""), Protocol::Binary);
  EXPECT_EQ(detect("", "CRPC\x01\x01rest"), Protocol::Binary);
  EXPECT_EQ(detect("application/soap+xml", "<x/>"), Protocol::Soap);
  EXPECT_EQ(detect("text/xml", "<?xml?><methodCall/>"), Protocol::XmlRpc);
  // SOAP arriving as text/xml is sniffed by the Envelope marker.
  EXPECT_EQ(detect("text/xml", "<SOAP-ENV:Envelope/>"), Protocol::Soap);
}

TEST(Protocol, DetectByBodyWhenHeaderMissing) {
  EXPECT_EQ(detect("", "  {\"method\":\"m\"}"), Protocol::JsonRpc);
  EXPECT_EQ(detect("", "<?xml?><methodCall/>"), Protocol::XmlRpc);
  EXPECT_EQ(detect("", "<SOAP-ENV:Envelope/>"), Protocol::Soap);
}

TEST(Protocol, PeekMethodJsonTopLevel) {
  EXPECT_EQ(peek_method(Protocol::JsonRpc, R"({"method":"echo.echo"})"),
            "echo.echo");
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({ "id" : 1 , "method" : "system.listMethods" })"),
            "system.listMethods");
  // Key order must not matter.
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({"params":[1,2],"method":"math.add","id":3})"),
            "math.add");
}

TEST(Protocol, PeekMethodIgnoresNestedAndDecoyKeys) {
  // A nested "method" key must not spoof the dispatch cost key: the real
  // top-level method is what the parser will dispatch.
  EXPECT_EQ(peek_method(
                Protocol::JsonRpc,
                R"({"params":{"method":"echo.x"},"method":"file.read"})"),
            "file.read");
  // Nested-only key: peek must not surface it.
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({"params":{"method":"echo.x"},"id":1})"),
            "");
  // "method" appearing as a string *value* is not a key.
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({"name":"method","method":"echo.echo"})"),
            "echo.echo");
  // Inside an array at any depth: not a key either.
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({"params":["method","x"],"id":1})"),
            "");
  // Escaped content before the real key must not derail the scan.
  EXPECT_EQ(peek_method(
                Protocol::JsonRpc,
                R"({"note":"say \"method\": here","method":"echo.echo"})"),
            "echo.echo");
  // Duplicate top-level keys: the parser's Value::set is last-wins, so
  // the peek must agree or a cheap decoy first key buys inline dispatch
  // of an expensive method.
  EXPECT_EQ(peek_method(Protocol::JsonRpc,
                        R"({"method":"echo.echo","method":"file.read"})"),
            "file.read");
}

TEST(Protocol, PeekMethodJsonPuntsOnOddInput) {
  // Non-object top level, escapes in the name, or truncation: return ""
  // so the request spills to a worker and the real parser decides.
  EXPECT_EQ(peek_method(Protocol::JsonRpc, R"(["method","echo.echo"])"), "");
  EXPECT_EQ(peek_method(Protocol::JsonRpc, R"({"method":"a\tb"})"), "");
  EXPECT_EQ(peek_method(Protocol::JsonRpc, R"({"method":"unterminated)"), "");
  EXPECT_EQ(peek_method(Protocol::JsonRpc, R"({"method":42})"), "");
  EXPECT_EQ(peek_method(Protocol::JsonRpc, ""), "");
}

// ---------- registry ----------

TEST(Registry, RegisterListDispatch) {
  Registry registry;
  registry.add("math.add",
               [](const CallContext&, const std::vector<Value>& params) {
                 return Value(params[0].as_int() + params[1].as_int());
               },
               "Add two integers", "int (int a, int b)");
  registry.add("math.sub",
               [](const CallContext&, const std::vector<Value>& params) {
                 return Value(params[0].as_int() - params[1].as_int());
               });
  registry.add("other.noop",
               [](const CallContext&, const std::vector<Value>&) {
                 return Value();
               });

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.has("math.add"));
  EXPECT_EQ(registry.list(),
            (std::vector<std::string>{"math.add", "math.sub", "other.noop"}));
  EXPECT_EQ(registry.list_module("math").size(), 2u);
  EXPECT_EQ(registry.info("math.add").help, "Add two integers");

  CallContext context;
  EXPECT_EQ(registry.dispatch("math.add", context, {Value(2), Value(3)}).as_int(),
            5);
}

TEST(Registry, UnknownMethodFaults) {
  Registry registry;
  CallContext context;
  try {
    registry.dispatch("no.such", context, {});
    FAIL();
  } catch (const Fault& fault) {
    EXPECT_EQ(fault.code(), kFaultBadMethod);
  }
  EXPECT_THROW(registry.info("no.such"), Fault);
}

TEST(Registry, RemoveAndReplace) {
  Registry registry;
  registry.add("m.f", [](const CallContext&, const std::vector<Value>&) {
    return Value(1);
  });
  registry.add("m.f", [](const CallContext&, const std::vector<Value>&) {
    return Value(2);
  });
  CallContext context;
  EXPECT_EQ(registry.dispatch("m.f", context, {}).as_int(), 2);
  registry.remove("m.f");
  EXPECT_FALSE(registry.has("m.f"));
}

}  // namespace
}  // namespace clarens::rpc
