// Zero-copy file responses: a binary-protocol file.read whose length is
// at or above the sendfile threshold bypasses the response arena and is
// spliced straight from the file. That path must be invisible on the
// wire — the HTTP response body must be byte-identical to the arena
// (buffered) serialization — over plaintext, over TLS (where the region
// is read and encrypted in bounded chunks), at offsets, across the
// beyond-EOF clamp, and with the bypass disabled entirely.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "core/server.hpp"
#include "http/parser.hpp"
#include "net/socket.hpp"
#include "rpc/binrpc.hpp"
#include "test_fixtures.hpp"
#include "tls/channel.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

constexpr std::size_t kFileSize = 256 * 1024;

std::string patterned_bytes(std::size_t n) {
  std::string out(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>((i * 31 + i / 251) & 0xff);
  }
  return out;
}

core::ClarensConfig file_config(const TestPki& pki, const std::string& dir,
                                std::int64_t sendfile_threshold) {
  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {
      {"system", anyone}, {"echo", anyone}, {"file", anyone}};
  core::FileAcl facl;
  facl.read.allow_dns = {core::AclSpec::kAnyone};
  config.initial_file_acls = {{"/data", facl}};
  config.file_roots = {{"/data", dir}};
  config.sendfile_threshold = sendfile_threshold;
  return config;
}

/// Raw binrpc POST over a plaintext socket; returns the HTTP response
/// body bytes exactly as they arrived.
std::string raw_binrpc_body(std::uint16_t port, const std::string& session,
                            const rpc::Request& rpc_request) {
  std::string body = rpc::binrpc::serialize_request(rpc_request);
  std::string wire = "POST /clarens HTTP/1.1\r\nX-Clarens-Session: " +
                     session +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\n\r\n" + body;
  net::TcpConnection conn = net::TcpConnection::connect("127.0.0.1", port);
  conn.write_all(wire);
  http::ResponseParser parser;
  std::array<std::uint8_t, 16384> buf;
  for (;;) {
    if (auto response = parser.next()) return std::move(response->body);
    std::size_t n = conn.read(buf);
    if (n == 0) break;
    parser.feed(std::span<const std::uint8_t>(buf.data(), n));
  }
  ADD_FAILURE() << "no complete HTTP response";
  return {};
}

rpc::Request read_request(const std::string& path, std::int64_t offset,
                          std::int64_t length) {
  rpc::Request request;
  request.method = "file.read";
  request.params = {rpc::Value(path), rpc::Value(offset), rpc::Value(length)};
  request.id = rpc::Value(std::int64_t{7});
  return request;
}

class SendfileResponse : public ::testing::Test {
 protected:
  SendfileResponse() : content_(patterned_bytes(kFileSize)) {
    std::ofstream out(tmp_.sub("files") + "/blob.bin", std::ios::binary);
    out << content_;
  }

  std::string dir() const { return tmp_.path() + "/files"; }

  TempDir tmp_;
  std::string content_;
};

TEST_F(SendfileResponse, WireBytesIdenticalToArenaSerialization) {
  const TestPki& pki = TestPki::instance();
  // Threshold 0: every file.read is spliced. Threshold -1: bypass off,
  // every response goes through the arena. Same file, same request id.
  core::ClarensServer spliced(file_config(pki, dir(), 0));
  core::ClarensServer buffered(file_config(pki, dir(), -1));
  spliced.start();
  buffered.start();
  std::string spliced_session = spliced.direct_login(
      pki.alice.certificate.subject().str()).id;
  std::string buffered_session = buffered.direct_login(
      pki.alice.certificate.subject().str()).id;

  struct Range {
    std::int64_t offset;
    std::int64_t length;
  };
  const Range ranges[] = {
      {0, static_cast<std::int64_t>(kFileSize)},  // whole file
      {4096, 100 * 1024},                         // interior slice
      {static_cast<std::int64_t>(kFileSize) - 17, 4096},  // clamped at EOF
      {0, 1},                                     // tiny but >= threshold 0
  };
  for (const Range& range : ranges) {
    rpc::Request request =
        read_request("/data/blob.bin", range.offset, range.length);
    std::string fast =
        raw_binrpc_body(spliced.port(), spliced_session, request);
    std::string slow =
        raw_binrpc_body(buffered.port(), buffered_session, request);
    ASSERT_EQ(fast, slow) << "offset=" << range.offset
                          << " length=" << range.length;

    rpc::Response parsed = rpc::binrpc::parse_response(fast);
    ASSERT_FALSE(parsed.is_fault);
    std::int64_t want =
        std::min(range.length,
                 static_cast<std::int64_t>(kFileSize) - range.offset);
    const auto& bytes = parsed.result.as_binary();
    ASSERT_EQ(bytes.size(), static_cast<std::size_t>(want));
    EXPECT_EQ(std::string(bytes.begin(), bytes.end()),
              content_.substr(static_cast<std::size_t>(range.offset),
                              static_cast<std::size_t>(want)));
  }
  spliced.stop();
  buffered.stop();
}

TEST_F(SendfileResponse, ClientReadsMatchOverPlaintextAndTls) {
  const TestPki& pki = TestPki::instance();
  for (bool use_tls : {false, true}) {
    core::ClarensConfig config = file_config(pki, dir(), 1);
    config.use_tls = use_tls;
    config.credential = pki.server;
    core::ClarensServer server(std::move(config));
    server.start();

    client::ClientOptions options;
    options.port = server.port();
    options.credential = pki.alice;
    options.trust = &pki.trust;
    options.use_tls = use_tls;
    options.protocol = rpc::Protocol::Binary;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();

    auto bytes = client.file_read("/data/blob.bin", 8192, 128 * 1024);
    ASSERT_EQ(bytes.size(), 128u * 1024);
    EXPECT_EQ(std::string(bytes.begin(), bytes.end()),
              content_.substr(8192, 128 * 1024));
    server.stop();
  }
}

TEST_F(SendfileResponse, NonBinaryProtocolsNeverTakeTheBypass) {
  const TestPki& pki = TestPki::instance();
  // Threshold 0 would splice every binary read; XML-RPC must still get a
  // correct base64 response because the offer is binary-protocol only.
  core::ClarensServer server(file_config(pki, dir(), 0));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.alice;
  options.trust = &pki.trust;
  options.protocol = rpc::Protocol::XmlRpc;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  auto bytes = client.file_read("/data/blob.bin", 0, 70 * 1024);
  ASSERT_EQ(bytes.size(), 70u * 1024);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()),
            content_.substr(0, 70 * 1024));
  server.stop();
}

}  // namespace
}  // namespace clarens
