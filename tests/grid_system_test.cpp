// Capstone system test: a small grid assembled from every subsystem —
// two sites with Clarens servers, a station-server network, a discovery
// server, a shared VO, per-site file storage with ACLs, job execution,
// and messaging between a user and a job. This is the "globally
// distributed system of Web Services" the paper's introduction promises,
// in miniature.
#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "client/client.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "rpc/fault.hpp"
#include "util/error.hpp"
#include "test_fixtures.hpp"

namespace clarens {
namespace {

using testing::TempDir;
using testing::TestPki;

TEST(GridSystem, TwoSiteGridEndToEnd) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;

  // --- discovery fabric -------------------------------------------------
  discovery::StationServer station;
  db::Store discovery_db;
  discovery::DiscoveryServer finder(discovery_db);
  finder.subscribe("127.0.0.1", station.port());

  // --- site A: data + jobs ----------------------------------------------
  std::string data_dir = tmp.sub("siteA-data");
  std::ofstream(data_dir + "/run1.evt") << "EVENTDATA";
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  core::AclSpec cms_only;
  cms_only.allow_groups = {"cms"};

  core::ClarensConfig config_a;
  config_a.trust = pki.trust;
  config_a.admins = {pki.alice.certificate.subject().str()};
  config_a.farm = "siteA";
  config_a.node = "clarensA";
  config_a.station = {{"127.0.0.1", station.port()}};
  config_a.publish_interval_ms = 100;
  config_a.file_roots = {{"/data", data_dir}};
  core::FileAcl data_acl;
  data_acl.read = cms_only;
  config_a.initial_file_acls = {{"/data", data_acl}};
  config_a.sandbox_base = tmp.sub("siteA-sandbox");
  core::UserMapEntry mapping;
  mapping.system_user = "cms001";
  mapping.groups = {"cms"};
  config_a.user_map = {mapping};
  config_a.initial_method_acls = {{"system", anyone}, {"file", cms_only},
                                  {"job", cms_only}, {"message", anyone},
                                  {"vo", anyone}, {"discovery", anyone}};
  core::ClarensServer site_a(std::move(config_a));
  site_a.attach_discovery(finder);

  // --- site B: compute only ----------------------------------------------
  core::ClarensConfig config_b;
  config_b.trust = pki.trust;
  config_b.admins = {pki.alice.certificate.subject().str()};
  config_b.farm = "siteB";
  config_b.node = "clarensB";
  config_b.station = {{"127.0.0.1", station.port()}};
  config_b.publish_interval_ms = 100;
  config_b.initial_method_acls = {{"system", anyone}, {"echo", anyone}};
  core::ClarensServer site_b(std::move(config_b));

  site_a.start();
  site_b.start();

  // --- VO: the admin builds the collaboration on site A ------------------
  auto connect = [&](const pki::Credential& cred, std::uint16_t port) {
    client::ClientOptions options;
    options.port = port;
    options.credential = cred;
    options.trust = &pki.trust;
    auto c = std::make_unique<client::ClarensClient>(options);
    c->connect();
    c->authenticate();
    return c;
  };
  auto admin = connect(pki.alice, site_a.port());
  admin->call("vo.create_group", {rpc::Value("cms")});
  admin->call("vo.add_member",
              {rpc::Value("cms"), rpc::Value("/O=testgrid.org/OU=People")});

  // --- discovery aggregates both sites ------------------------------------
  for (int i = 0; i < 300 && finder.find_servers().size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(finder.find_servers().size(), 2u);

  // Bob (a cms member via the DN prefix) works the grid.
  auto bob = connect(pki.bob, site_a.port());

  // 1. Find where file services live.
  rpc::Value file_services =
      bob->call("discovery.find_services", {rpc::Value("file")});
  ASSERT_GE(file_services.as_array().size(), 1u);
  EXPECT_EQ(file_services.as_array()[0].at("farm").as_string(), "siteA");

  // 2. Read VO-gated data.
  auto bytes = bob->file_read("/data/run1.evt", 0, 100);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "EVENTDATA");

  // 3. Run an analysis job in the sandbox.
  std::string job_id =
      bob->call("job.submit", {rpc::Value("echo analyzed 9 events")})
          .as_string();
  rpc::Value job;
  for (int i = 0; i < 300; ++i) {
    job = bob->call("job.status", {rpc::Value(job_id)});
    if (job.at("state").as_string() != "QUEUED" &&
        job.at("state").as_string() != "RUNNING") {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(job.at("state").as_string(), "DONE");
  EXPECT_EQ(job.at("output").as_string(), "analyzed 9 events\n");

  // 4. Report the result to the admin via messaging.
  bob->call("message.send",
            {rpc::Value(pki.alice.certificate.subject().str()),
             rpc::Value("analysis"), rpc::Value(job.at("output").as_string())});
  rpc::Value inbox = admin->call("message.poll");
  ASSERT_EQ(inbox.as_array().size(), 1u);
  EXPECT_EQ(inbox.as_array()[0].at("body").as_string(), "analyzed 9 events\n");

  // 5. Carol (not in cms: wrong O=) is locked out of data and jobs, but
  //    can still discover services and call echo on site B.
  auto carol = connect(pki.carol, site_a.port());
  EXPECT_THROW(carol->file_read("/data/run1.evt", 0, 10), rpc::Fault);
  EXPECT_THROW(carol->call("job.submit", {rpc::Value("echo hi")}), rpc::Fault);
  auto carol_b = connect(pki.carol, site_b.port());
  EXPECT_EQ(carol_b->call("echo.echo", {rpc::Value("open")}).as_string(),
            "open");

  // 6. Operational stats reflect the traffic.
  rpc::Value stats = admin->call("system.stats");
  EXPECT_GT(stats.at("requests_served").as_int(), 5);
  EXPECT_GE(stats.at("active_sessions").as_int(), 3);

  site_a.stop();
  site_b.stop();
}

TEST(GridSystem, ServerLevelMutualTlsRequiresClientCert) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.use_tls = true;
  config.credential = pki.server;
  config.require_client_cert = true;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();

  // With a certificate: fine.
  client::ClientOptions with_cert;
  with_cert.port = server.port();
  with_cert.use_tls = true;
  with_cert.credential = pki.alice;
  with_cert.trust = &pki.trust;
  client::ClarensClient good(with_cert);
  good.connect();
  EXPECT_FALSE(good.authenticate().empty());

  // Anonymous TLS: the handshake itself is refused.
  client::ClientOptions anonymous;
  anonymous.port = server.port();
  anonymous.use_tls = true;
  anonymous.trust = &pki.trust;
  client::ClarensClient bad(anonymous);
  EXPECT_THROW(bad.connect(), Error);
  server.stop();
}

TEST(GridSystem, DirectoryListingOverGet) {
  const TestPki& pki = TestPki::instance();
  TempDir tmp;
  std::string dir = tmp.sub("files");
  std::ofstream(dir + "/a.txt") << "a";
  std::filesystem::create_directories(dir + "/subdir");

  core::ClarensConfig config;
  config.trust = pki.trust;
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}};
  config.file_roots = {{"/data", dir}};
  core::FileAcl facl;
  facl.read = anyone;
  config.initial_file_acls = {{"/data", facl}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.bob;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();
  http::Response listing = client.get("/data");
  EXPECT_EQ(listing.status, 200);
  EXPECT_NE(listing.body.find("a.txt"), std::string::npos);
  EXPECT_NE(listing.body.find("subdir/"), std::string::npos);
  server.stop();
}

TEST(GridSystem, ExpiredSessionRejectedOverWire) {
  const TestPki& pki = TestPki::instance();
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.session_ttl = -1;  // sessions are born expired
  core::AclSpec anyone;
  anyone.allow_dns = {core::AclSpec::kAnyone};
  config.initial_method_acls = {{"system", anyone}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.bob;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();  // succeeds: auth itself is public
  try {
    client.call("system.list_methods");
    FAIL() << "expected expired-session fault";
  } catch (const rpc::Fault& fault) {
    EXPECT_EQ(fault.code(), rpc::kFaultAuth);
  }
  server.stop();
}

}  // namespace
}  // namespace clarens
