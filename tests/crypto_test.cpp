// Unit tests for clarens::crypto against published test vectors (MD5:
// RFC 1321; SHA-256: FIPS 180-4 / NIST; HMAC: RFC 4231; ChaCha20:
// RFC 8439) plus property tests for the bignum and RSA.
#include <gtest/gtest.h>

#include "crypto/bigint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/random.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace clarens::crypto {
namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------- MD5 (RFC 1321 appendix A.5) ----------

struct DigestCase {
  const char* input;
  const char* digest;
};

class Md5Vectors : public ::testing::TestWithParam<DigestCase> {};

TEST_P(Md5Vectors, Matches) {
  EXPECT_EQ(Md5::hex(GetParam().input), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5Vectors,
    ::testing::Values(
        DigestCase{"", "d41d8cd98f00b204e9800998ecf8427e"},
        DigestCase{"a", "0cc175b9c0f1b6a831c399e269772661"},
        DigestCase{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        DigestCase{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        DigestCase{"abcdefghijklmnopqrstuvwxyz",
                   "c3fcd3d76192e4007dfb496cca67e13b"},
        DigestCase{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                   "56789",
                   "d174ab98d277d9f5a5611c2c9f419d9f"},
        DigestCase{"1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890",
                   "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5, StreamingEqualsOneShot) {
  std::string data(100000, 'x');
  Md5 streaming;
  // Feed in awkward chunk sizes to cross block boundaries.
  std::size_t offset = 0;
  std::size_t sizes[] = {1, 63, 64, 65, 127, 1000, 4096};
  std::size_t i = 0;
  while (offset < data.size()) {
    std::size_t take = std::min(sizes[i++ % 7], data.size() - offset);
    streaming.update(std::string_view(data).substr(offset, take));
    offset += take;
  }
  EXPECT_EQ(streaming.finish(), Md5::hash(data));
}

// ---------- SHA-256 ----------

class Sha256Vectors : public ::testing::TestWithParam<DigestCase> {};

TEST_P(Sha256Vectors, Matches) {
  EXPECT_EQ(Sha256::hex(GetParam().input), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Fips180, Sha256Vectors,
    ::testing::Values(
        DigestCase{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        DigestCase{"abc",
                   "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        DigestCase{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"}));

TEST(Sha256, MillionAs) {
  Sha256 sha;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.update(chunk);
  EXPECT_EQ(util::hex_encode(sha.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ---------- HMAC-SHA256 (RFC 4231) ----------

TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  auto mac = hmac_sha256(key, bytes_of("Hi There"));
  EXPECT_EQ(util::hex_encode(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  auto mac = hmac_sha256(bytes_of("Jefe"),
                         bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(util::hex_encode(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  std::vector<std::uint8_t> key(131, 0xaa);  // longer than the block size
  auto mac = hmac_sha256(
      key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(util::hex_encode(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DeriveKeyDeterministicAndLabelSeparated) {
  std::vector<std::uint8_t> ikm = {1, 2, 3, 4};
  auto a = derive_key(ikm, "label-a", 48);
  auto b = derive_key(ikm, "label-a", 48);
  auto c = derive_key(ikm, "label-b", 48);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 48u);
  // Prefix property: shorter derivation is a prefix of longer.
  auto shorter = derive_key(ikm, "label-a", 16);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), a.begin()));
}

TEST(Hmac, ConstantTimeEqual) {
  std::vector<std::uint8_t> a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, std::vector<std::uint8_t>{1, 2}));
}

// ---------- ChaCha20 (RFC 8439 §2.4.2) ----------

TEST(ChaCha20, Rfc8439Vector) {
  std::vector<std::uint8_t> key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::vector<std::uint8_t> nonce =
      util::hex_decode("000000000000004a00000000");
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  ChaCha20 cipher(key, nonce, 1);
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  cipher.crypt(data);
  EXPECT_EQ(util::hex_encode(std::span<const std::uint8_t>(data.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  // Decrypting restores the plaintext.
  ChaCha20 decipher(key, nonce, 1);
  decipher.crypt(data);
  EXPECT_EQ(std::string(data.begin(), data.end()), plaintext);
}

TEST(ChaCha20, RejectsBadKeyAndNonceSizes) {
  std::vector<std::uint8_t> short_key(16), nonce(12), key(32), short_nonce(8);
  EXPECT_THROW(ChaCha20(short_key, nonce), Error);
  EXPECT_THROW(ChaCha20(key, short_nonce), Error);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  std::vector<std::uint8_t> key(32, 7), nonce(12, 9);
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ChaCha20 one(key, nonce);
  auto expected = one.crypt_copy(data);

  ChaCha20 stream(key, nonce);
  std::vector<std::uint8_t> copy = data;
  // 7-byte pieces force mid-block keystream positions.
  for (std::size_t off = 0; off < copy.size(); off += 7) {
    std::size_t take = std::min<std::size_t>(7, copy.size() - off);
    stream.crypt(std::span<std::uint8_t>(copy.data() + off, take));
  }
  EXPECT_EQ(copy, expected);
}

// ---------- DRBG ----------

TEST(Drbg, DeterministicWithSeed) {
  std::vector<std::uint8_t> seed = {1, 2, 3};
  Drbg a(seed), b(seed);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  // Different seeds diverge.
  std::vector<std::uint8_t> seed2 = {1, 2, 4};
  Drbg c(seed2);
  EXPECT_NE(Drbg(seed).bytes(64), c.bytes(64));
}

TEST(Drbg, UniformStaysBelowBound) {
  Drbg rng(std::vector<std::uint8_t>{42});
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Drbg, TokenIsHexOfRequestedLength) {
  std::string token = random_token(16);
  EXPECT_EQ(token.size(), 32u);
  EXPECT_NO_THROW(util::hex_decode(token));
  EXPECT_NE(random_token(16), random_token(16));
}

// ---------- BigInt ----------

TEST(BigInt, HexRoundTrip) {
  EXPECT_EQ(BigInt::from_hex("0").to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("ff").to_hex(), "ff");
  EXPECT_EQ(BigInt::from_hex("deadbeefcafebabe0123456789abcdef").to_hex(),
            "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(BigInt(0xdeadbeefull).to_hex(), "deadbeef");
}

TEST(BigInt, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt x = BigInt::from_bytes(bytes);
  EXPECT_EQ(x.to_bytes(), bytes);
  EXPECT_EQ(x.to_hex(), "102030405");
  // Leading zeros are not preserved (canonical form).
  std::vector<std::uint8_t> padded = {0x00, 0x00, 0x01};
  EXPECT_EQ(BigInt::from_bytes(padded).to_bytes(),
            (std::vector<std::uint8_t>{0x01}));
}

TEST(BigInt, Arithmetic) {
  BigInt a = BigInt::from_hex("ffffffffffffffff");  // 2^64-1
  BigInt b(1);
  EXPECT_EQ((a + b).to_hex(), "10000000000000000");
  EXPECT_EQ(((a + b) - b).to_hex(), "ffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffffffffffe0000000000000001");
  EXPECT_THROW(b - a, Error);
}

TEST(BigInt, Shifts) {
  BigInt one(1);
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((BigInt::from_hex("ff") << 4).to_hex(), "ff0");
  EXPECT_EQ((BigInt::from_hex("ff0") >> 4).to_hex(), "ff");
  EXPECT_TRUE((one >> 1).is_zero());
}

TEST(BigInt, DivMod) {
  BigInt a = BigInt::from_hex("123456789abcdef0123456789abcdef");
  BigInt b = BigInt::from_hex("fedcba987");
  auto [q, r] = a.divmod(b);
  EXPECT_EQ((q * b + r), a);
  EXPECT_TRUE(r < b);
  EXPECT_THROW(a.divmod(BigInt(0)), Error);
  // Small sanity: 100 / 7 = 14 r 2
  auto [q2, r2] = BigInt(100).divmod(BigInt(7));
  EXPECT_EQ(q2.to_u64(), 14u);
  EXPECT_EQ(r2.to_u64(), 2u);
}

TEST(BigInt, ModExpKnownValues) {
  // 5^3 mod 13 = 8
  EXPECT_EQ(BigInt(5).modexp(BigInt(3), BigInt(13)).to_u64(), 8u);
  // Fermat: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1
  BigInt p(1000003);
  EXPECT_EQ(BigInt(12345).modexp(p - BigInt(1), p).to_u64(), 1u);
  // Even modulus path.
  EXPECT_EQ(BigInt(7).modexp(BigInt(5), BigInt(10)).to_u64(), 7u);
  // x^0 = 1
  EXPECT_EQ(BigInt(99).modexp(BigInt(0), BigInt(7)).to_u64(), 1u);
}

TEST(BigInt, ModExpMatchesNaive) {
  Drbg rng(std::vector<std::uint8_t>{9});
  for (int trial = 0; trial < 20; ++trial) {
    BigInt base = BigInt::random_bits(96, rng);
    BigInt exp = BigInt::random_bits(16, rng);
    BigInt mod = BigInt::random_bits(96, rng);
    if (!mod.is_odd()) mod = mod + BigInt(1);  // exercise Montgomery
    // Naive square-and-multiply using divmod only.
    BigInt naive(1);
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      naive = (naive * naive) % mod;
      if (exp.bit(i)) naive = (naive * base) % mod;
    }
    EXPECT_EQ(base.modexp(exp, mod), naive) << "trial " << trial;
  }
}

TEST(BigInt, ModInv) {
  BigInt p(1000003);
  BigInt a(123456);
  BigInt inv = a.modinv(p);
  EXPECT_EQ((a * inv) % p, BigInt(1));
  // Non-invertible.
  EXPECT_THROW(BigInt(6).modinv(BigInt(9)), Error);
  EXPECT_THROW(BigInt(0).modinv(BigInt(7)), Error);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).to_u64(), 12u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_u64(), 5u);
}

TEST(BigInt, PrimalityKnownPrimesAndComposites) {
  Drbg rng(std::vector<std::uint8_t>{7});
  for (std::uint64_t p : {2ull, 3ull, 65537ull, 1000003ull, 4294967291ull}) {
    EXPECT_TRUE(BigInt(p).is_probable_prime(16, rng)) << p;
  }
  for (std::uint64_t c : {1ull, 4ull, 65535ull, 1000001ull, 4294967295ull}) {
    EXPECT_FALSE(BigInt(c).is_probable_prime(16, rng)) << c;
  }
  // Carmichael number 561 = 3*11*17 must be detected composite.
  EXPECT_FALSE(BigInt(561).is_probable_prime(16, rng));
}

TEST(BigInt, GeneratePrimeHasExactBitLength) {
  Drbg rng(std::vector<std::uint8_t>{11});
  BigInt p = BigInt::generate_prime(64, rng);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(p.is_odd());
}

// ---------- RSA ----------

class RsaFixture : public ::testing::Test {
 protected:
  // One 512-bit key pair for the whole suite (keygen is the slow part).
  static RsaKeyPair& keys() {
    static RsaKeyPair kp = [] {
      Drbg rng(std::vector<std::uint8_t>{13});
      return rsa_generate(512, rng);
    }();
    return kp;
  }
};

TEST_F(RsaFixture, SignVerifyRoundTrip) {
  auto sig = rsa_sign(keys().priv, "the quick brown fox");
  EXPECT_EQ(sig.size(), keys().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(keys().pub, "the quick brown fox", sig));
  EXPECT_FALSE(rsa_verify(keys().pub, "the quick brown fax", sig));
}

TEST_F(RsaFixture, TamperedSignatureRejected) {
  auto sig = rsa_sign(keys().priv, "message");
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(keys().pub, "message", sig));
  // Wrong-size signature.
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(keys().pub, "message", sig));
}

TEST_F(RsaFixture, EncryptDecryptRoundTrip) {
  Drbg rng(std::vector<std::uint8_t>{17});
  std::vector<std::uint8_t> message = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  auto ct = rsa_encrypt(keys().pub, message, rng);
  auto pt = rsa_decrypt(keys().priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, message);
}

TEST_F(RsaFixture, DecryptRejectsGarbage) {
  std::vector<std::uint8_t> garbage(keys().pub.modulus_bytes(), 0x5a);
  auto pt = rsa_decrypt(keys().priv, garbage);
  EXPECT_FALSE(pt.has_value());
  // Wrong length.
  std::vector<std::uint8_t> short_ct(10);
  EXPECT_FALSE(rsa_decrypt(keys().priv, short_ct).has_value());
}

TEST_F(RsaFixture, PlaintextTooLongThrows) {
  Drbg rng(std::vector<std::uint8_t>{19});
  std::vector<std::uint8_t> huge(keys().pub.modulus_bytes());
  EXPECT_THROW(rsa_encrypt(keys().pub, huge, rng), Error);
}

TEST_F(RsaFixture, KeyEncodingRoundTrip) {
  RsaPublicKey pub = RsaPublicKey::decode(keys().pub.encode());
  EXPECT_EQ(pub, keys().pub);
  RsaPrivateKey priv = RsaPrivateKey::decode(keys().priv.encode());
  auto sig = rsa_sign(priv, "encoded key");
  EXPECT_TRUE(rsa_verify(pub, "encoded key", sig));
  EXPECT_THROW(RsaPublicKey::decode("onlyonefield"), ParseError);
}

TEST(Rsa, DifferentKeysDontVerify) {
  Drbg rng(std::vector<std::uint8_t>{23});
  RsaKeyPair a = rsa_generate(512, rng);
  RsaKeyPair b = rsa_generate(512, rng);
  auto sig = rsa_sign(a.priv, "cross");
  EXPECT_FALSE(rsa_verify(b.pub, "cross", sig));
}

}  // namespace
}  // namespace clarens::crypto
