// SSL/TLS overhead (§4): "Informal tests show [SSL/TLS-encrypted
// connections] to reduce performance by up to 50%."
//
// This harness runs the same system.list_methods workload over a
// plaintext connection and over the TLS-like channel (same server code,
// encryption applied transparently by the transport exactly as the
// paper's Apache does), and reports the throughput ratio. The handshake
// happens once per connection; the steady-state cost is the per-record
// ChaCha20 + HMAC work.
//
// Usage: bench_ssl_overhead [--calls N] [--connections N]
#include <cstring>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "util/clock.hpp"

using namespace clarens;

namespace {

double measure_calls_per_second(core::ClarensServer& server, bool use_tls,
                                std::uint64_t calls) {
  const bench::BenchPki& pki = bench::BenchPki::instance();
  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.user;
  options.trust = &pki.trust;
  options.use_tls = use_tls;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();
  // Warm-up outside the timed window.
  for (int i = 0; i < 20; ++i) client.call("system.list_methods");
  util::Stopwatch timer;
  for (std::uint64_t i = 0; i < calls; ++i) {
    client.call("system.list_methods");
  }
  return static_cast<double>(calls) / timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t calls = 2000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--calls") && i + 1 < argc) {
      calls = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  std::printf("# SSL/TLS overhead (paper §4: encryption costs up to 50%%)\n");
  std::printf("# method=system.list_methods, sequential calls on one "
              "keep-alive connection\n");

  core::ClarensServer plain_server(bench::paper_server_config(false));
  plain_server.start();
  double plain = measure_calls_per_second(plain_server, false, calls);
  plain_server.stop();

  core::ClarensServer tls_server(bench::paper_server_config(true));
  tls_server.start();
  double encrypted = measure_calls_per_second(tls_server, true, calls);
  tls_server.stop();

  std::printf("%-14s %-14s\n", "transport", "calls/sec");
  std::printf("%-14s %-14.0f\n", "plaintext", plain);
  std::printf("%-14s %-14.0f\n", "tls", encrypted);
  std::printf("# encrypted/plaintext ratio: %.2f (paper: >= 0.5, i.e. up to "
              "50%% reduction)\n", encrypted / plain);
  return 0;
}
