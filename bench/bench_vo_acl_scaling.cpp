// Ablation A4: VO membership and ACL evaluation scaling.
//
// The paper's VO design (§2.1) banks on two shortcuts: DN-prefix member
// entries ("only the initial significant part of the DN need be
// specified") and downward-inherited membership. This measures how
// is_member behaves as group trees deepen and member lists grow, and how
// ACL group resolution compounds on top.
#include <benchmark/benchmark.h>

#include "core/acl.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"

using namespace clarens;

namespace {

const char* kRoot = "/O=bench/CN=Root";

pki::DistinguishedName root() { return pki::DistinguishedName::parse(kRoot); }

pki::DistinguishedName user(int i) {
  return pki::DistinguishedName::parse("/O=bench/OU=People/CN=User " +
                                       std::to_string(i));
}

}  // namespace

// Membership via one DN-prefix entry vs an explicit list of N DNs.
static void BM_MembershipExplicitList(benchmark::State& state) {
  db::Store store;
  core::VoManager vo(store, {kRoot});
  vo.create_group("g", root());
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    vo.add_member("g", user(i).str(), root());
  }
  pki::DistinguishedName last = user(n - 1);  // worst case: last entry
  for (auto _ : state) {
    benchmark::DoNotOptimize(vo.is_member("g", last));
  }
}
BENCHMARK(BM_MembershipExplicitList)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

static void BM_MembershipDnPrefix(benchmark::State& state) {
  db::Store store;
  core::VoManager vo(store, {kRoot});
  vo.create_group("g", root());
  // One prefix entry covers every user (the paper's optimization).
  vo.add_member("g", "/O=bench/OU=People", root());
  pki::DistinguishedName someone = user(999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vo.is_member("g", someone));
  }
}
BENCHMARK(BM_MembershipDnPrefix);

// Inherited membership: member of the top group, queried at depth D.
static void BM_MembershipInheritedDepth(benchmark::State& state) {
  db::Store store;
  core::VoManager vo(store, {kRoot});
  int depth = static_cast<int>(state.range(0));
  std::string name = "g";
  vo.create_group(name, root());
  vo.add_member(name, user(0).str(), root());
  for (int d = 1; d < depth; ++d) {
    name += ".s";
    vo.create_group(name, root());
  }
  pki::DistinguishedName member = user(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vo.is_member(name, member));
  }
}
BENCHMARK(BM_MembershipInheritedDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ACL check resolving membership through groups of growing size.
static void BM_AclCheckViaGroup(benchmark::State& state) {
  db::Store store;
  core::VoManager vo(store, {kRoot});
  core::AclManager acl(store, vo, false);
  vo.create_group("physicists", root());
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    vo.add_member("physicists", user(i).str(), root());
  }
  core::AclSpec spec;
  spec.allow_groups = {"physicists"};
  acl.set_method_acl("analysis", spec);
  pki::DistinguishedName member = user(n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(acl.check_method("analysis.run", member));
  }
}
BENCHMARK(BM_AclCheckViaGroup)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

// Group tree enumeration as the tree widens (admin UI path).
static void BM_ListGroups(benchmark::State& state) {
  db::Store store;
  core::VoManager vo(store, {kRoot});
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    vo.create_group("g" + std::to_string(i), root());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vo.list_groups());
  }
}
BENCHMARK(BM_ListGroups)->Arg(10)->Arg(100)->Arg(1000);
