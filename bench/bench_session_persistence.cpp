// Ablation A5: session persistence. Clarens stores sessions in the
// server-side database so clients survive restarts (§2, Architecture).
// This measures the cost of that choice: in-memory vs journaled stores
// for session create/lookup, journal replay (restart) latency, and
// lookup under a large live-session population.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/session.hpp"
#include "crypto/random.hpp"
#include "db/store.hpp"

using namespace clarens;

namespace {

std::string fresh_dir() {
  std::string dir = "/tmp/clarens_bench_sessions_" + crypto::random_token(6);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

static void BM_CreateInMemory(benchmark::State& state) {
  db::Store store;
  core::SessionManager sessions(store);
  for (auto _ : state) {
    core::Session s = sessions.create("/O=bench/CN=User", false);
    sessions.destroy(s.id);
  }
}
BENCHMARK(BM_CreateInMemory);

static void BM_CreateJournaled(benchmark::State& state) {
  std::string dir = fresh_dir();
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (auto _ : state) {
      core::Session s = sessions.create("/O=bench/CN=User", false);
      sessions.destroy(s.id);
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CreateJournaled);

static void BM_LookupAmongN(benchmark::State& state) {
  db::Store store;
  core::SessionManager sessions(store);
  int n = static_cast<int>(state.range(0));
  std::string target;
  for (int i = 0; i < n; ++i) {
    target = sessions.create("/O=bench/CN=User" + std::to_string(i), false).id;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sessions.lookup(target));
  }
}
BENCHMARK(BM_LookupAmongN)->Arg(10)->Arg(1000)->Arg(100000);

// Restart cost: reopening the store replays the journal; this is the
// price of "clients survive server restarts without re-authenticating".
static void BM_RestartReplay(benchmark::State& state) {
  std::string dir = fresh_dir();
  int n = static_cast<int>(state.range(0));
  std::string survivor;
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (int i = 0; i < n; ++i) {
      survivor = sessions.create("/O=bench/CN=User" + std::to_string(i), false).id;
    }
  }
  for (auto _ : state) {
    db::Store store(dir);  // replay
    core::SessionManager sessions(store);
    benchmark::DoNotOptimize(sessions.lookup(survivor));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RestartReplay)->Arg(100)->Arg(10000);

// Compaction keeps replay bounded as sessions churn.
static void BM_RestartAfterCompaction(benchmark::State& state) {
  std::string dir = fresh_dir();
  std::string survivor;
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (int i = 0; i < 10000; ++i) {
      core::Session s = sessions.create("/O=bench/CN=Churn", false);
      sessions.destroy(s.id);
    }
    survivor = sessions.create("/O=bench/CN=Keeper", false).id;
    store.compact();
  }
  for (auto _ : state) {
    db::Store store(dir);
    core::SessionManager sessions(store);
    benchmark::DoNotOptimize(sessions.lookup(survivor));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RestartAfterCompaction);
