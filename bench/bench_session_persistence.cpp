// Ablation A5: session persistence. Clarens stores sessions in the
// server-side database so clients survive restarts (§2, Architecture).
// This measures the cost of that choice two ways:
//
//   * google-benchmark micros (default mode): in-memory vs journaled
//     session create, lookup under a large live population, journal
//     replay (restart) latency;
//   * a multi-writer churn harness (--json): sustained session
//     create/destroy throughput with a large live-session population
//     resident, across storage-engine configurations — the ISSUE-7
//     before/after. Rows:
//       baseline_single_mutex  1 shard, per-op commits (the old engine)
//       group_commit_off       16 shards, per-op commits (ablation)
//       engine                 16 shards, group commit (the new engine)
//       engine_durable         as `engine`, but every create/destroy is
//                              acknowledged only after its group fsync
//
// Usage:
//   bench_session_persistence [--benchmark_* flags]          micro mode
//   bench_session_persistence --json FILE|- [--live N]
//       [--writers N] [--ms N]                               churn mode
//
// The churn rows share one prefilled snapshot (built once, copied into
// each row's fresh directory) so every row replays the identical
// live-session population. Compaction is parked far away during the
// measured window so the rows compare commit paths, not checkpoint
// schedules.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "crypto/random.hpp"
#include "db/store.hpp"

using namespace clarens;

namespace {

std::string fresh_dir() {
  std::string dir = "/tmp/clarens_bench_sessions_" + crypto::random_token(6);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

static void BM_CreateInMemory(benchmark::State& state) {
  db::Store store;
  core::SessionManager sessions(store);
  for (auto _ : state) {
    core::Session s = sessions.create("/O=bench/CN=User", false);
    sessions.destroy(s.id);
  }
}
BENCHMARK(BM_CreateInMemory);

static void BM_CreateJournaled(benchmark::State& state) {
  std::string dir = fresh_dir();
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (auto _ : state) {
      core::Session s = sessions.create("/O=bench/CN=User", false);
      sessions.destroy(s.id);
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CreateJournaled);

// Durable variant: every create/destroy waits for its commit group's
// fdatasync. Single-threaded, so nobody shares the fsync — the worst
// case; the churn harness shows the amortized multi-writer cost.
static void BM_CreateJournaledDurable(benchmark::State& state) {
  std::string dir = fresh_dir();
  {
    db::Store store(dir);
    core::SessionManager sessions(store, 24 * 3600, /*durable_writes=*/true);
    for (auto _ : state) {
      core::Session s = sessions.create("/O=bench/CN=User", false);
      sessions.destroy(s.id);
    }
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CreateJournaledDurable);

static void BM_LookupAmongN(benchmark::State& state) {
  db::Store store;
  core::SessionManager sessions(store);
  int n = static_cast<int>(state.range(0));
  std::string target;
  for (int i = 0; i < n; ++i) {
    target = sessions.create("/O=bench/CN=User" + std::to_string(i), false).id;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sessions.lookup(target));
  }
}
BENCHMARK(BM_LookupAmongN)->Arg(10)->Arg(1000)->Arg(100000);

// Restart cost: reopening the store replays the journal; this is the
// price of "clients survive server restarts without re-authenticating".
static void BM_RestartReplay(benchmark::State& state) {
  std::string dir = fresh_dir();
  int n = static_cast<int>(state.range(0));
  std::string survivor;
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (int i = 0; i < n; ++i) {
      survivor = sessions.create("/O=bench/CN=User" + std::to_string(i), false).id;
    }
  }
  for (auto _ : state) {
    db::Store store(dir);  // replay
    core::SessionManager sessions(store);
    benchmark::DoNotOptimize(sessions.lookup(survivor));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RestartReplay)->Arg(100)->Arg(10000);

// Compaction keeps replay bounded as sessions churn.
static void BM_RestartAfterCompaction(benchmark::State& state) {
  std::string dir = fresh_dir();
  std::string survivor;
  {
    db::Store store(dir);
    core::SessionManager sessions(store);
    for (int i = 0; i < 10000; ++i) {
      core::Session s = sessions.create("/O=bench/CN=Churn", false);
      sessions.destroy(s.id);
    }
    survivor = sessions.create("/O=bench/CN=Keeper", false).id;
    store.compact();
  }
  for (auto _ : state) {
    db::Store store(dir);
    core::SessionManager sessions(store);
    benchmark::DoNotOptimize(sessions.lookup(survivor));
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RestartAfterCompaction);

// ---------------------------------------------------------------------------
// Multi-writer churn harness (--json)

namespace {

struct RowSpec {
  const char* name;
  std::size_t shards;
  bool group_commit;
  bool durable;
};

struct RowResult {
  const RowSpec* spec = nullptr;
  std::uint64_t ops = 0;  // creates + destroys
  double seconds = 0;
  double ops_per_sec = 0;
};

/// Build the shared live-session population once: N session rows encoded
/// the way SessionManager stores them, folded into a snapshot.
std::string build_prefill_snapshot(std::size_t live) {
  std::string dir = fresh_dir();
  db::StoreOptions options;
  options.compact_threshold = static_cast<std::size_t>(-1);  // no auto-fold
  {
    db::Store store(dir, options);
    std::int64_t now = static_cast<std::int64_t>(::time(nullptr));
    std::string tail = "\",\"via_proxy\":false,\"created\":" +
                       std::to_string(now) +
                       ",\"expires\":" + std::to_string(now + 30 * 24 * 3600) +
                       ",\"proxy_serial\":\"\"}";
    unsigned hw = std::thread::hardware_concurrency();
    std::size_t loaders = hw ? std::min<std::size_t>(hw, 8) : 4;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < loaders; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = t; i < live; i += loaders) {
          std::string id = "resident-" + std::to_string(i);
          std::string row =
              "{\"identity\":\"/O=bench/CN=Resident" + std::to_string(i) + tail;
          store.put("sessions", id, std::move(row));
        }
      });
    }
    for (auto& t : threads) t.join();
    store.compact();  // fold the load into snapshot.db
  }
  return dir;
}

RowResult run_row(const RowSpec& spec, const std::string& prefill_dir,
                  int writers, int ms) {
  std::string dir = fresh_dir();
  std::string snapshot = prefill_dir + "/snapshot.db";
  if (std::filesystem::exists(snapshot)) {
    std::filesystem::copy_file(snapshot, dir + "/snapshot.db");
  }
  RowResult result;
  result.spec = &spec;
  {
    db::StoreOptions options;
    options.shards = spec.shards;
    options.group_commit = spec.group_commit;
    // Park compaction outside the window: rows compare commit paths.
    options.compact_threshold = static_cast<std::size_t>(-1);
    db::Store store(dir, options);
    core::SessionManager sessions(store, 24 * 3600, spec.durable);

    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(writers, 0);
    std::vector<std::thread> threads;
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t local = 0;
        std::string identity = "/O=bench/CN=Writer" + std::to_string(t);
        while (!stop.load(std::memory_order_relaxed)) {
          core::Session s = sessions.create(identity, false);
          sessions.destroy(s.id);
          local += 2;
        }
        counts[t] = local;
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    auto end = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(end - start).count();
    for (auto c : counts) result.ops += c;
    result.ops_per_sec = result.ops / result.seconds;
  }
  std::filesystem::remove_all(dir);
  return result;
}

int run_churn(const char* json_path, std::size_t live, int writers, int ms) {
  static const RowSpec kRows[] = {
      {"baseline_single_mutex", 1, false, false},
      {"group_commit_off", 16, false, false},
      {"engine", 16, true, false},
      {"engine_durable", 16, true, true},
  };

  std::printf("# prefilling %zu live sessions...\n", live);
  std::string prefill_dir = build_prefill_snapshot(live);

  std::vector<RowResult> results;
  for (const RowSpec& spec : kRows) {
    std::printf("# %-22s shards=%-3zu group_commit=%-5s durable=%s ... ",
                spec.name, spec.shards, spec.group_commit ? "true" : "false",
                spec.durable ? "true" : "false");
    std::fflush(stdout);
    RowResult row = run_row(spec, prefill_dir, writers, ms);
    std::printf("%.0f ops/s (%llu ops in %.2fs)\n", row.ops_per_sec,
                static_cast<unsigned long long>(row.ops), row.seconds);
    results.push_back(row);
  }
  std::filesystem::remove_all(prefill_dir);

  double baseline = results[0].ops_per_sec;
  double engine = results[2].ops_per_sec;
  double speedup = baseline > 0 ? engine / baseline : 0;
  std::printf("# engine vs baseline_single_mutex: %.2fx\n", speedup);

  std::string json = "{\n  \"bench\": \"store_churn\",\n";
  json += "  \"workload\": \"session create+destroy pairs, " +
          std::to_string(writers) + " writer threads, " +
          std::to_string(live) + " live sessions resident\",\n";
  json += "  \"live_sessions\": " + std::to_string(live) + ",\n";
  json += "  \"writers\": " + std::to_string(writers) + ",\n";
  json += "  \"duration_ms\": " + std::to_string(ms) + ",\n";
  json += "  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& row = results[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"shards\": %zu, "
                  "\"group_commit\": %s, \"durable\": %s, "
                  "\"ops\": %llu, \"ops_per_sec\": %.0f}%s\n",
                  row.spec->name, row.spec->shards,
                  row.spec->group_commit ? "true" : "false",
                  row.spec->durable ? "true" : "false",
                  static_cast<unsigned long long>(row.ops), row.ops_per_sec,
                  i + 1 < results.size() ? "," : "");
    json += buf;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"speedup_engine_vs_baseline\": %.2f\n}\n", speedup);
  json += tail;

  if (!std::strcmp(json_path, "-")) {
    std::fputs(json.c_str(), stdout);
  } else if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::size_t live = 1000000;
  int writers = 8;
  int ms = 2000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--live") && i + 1 < argc) {
      live = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--writers") && i + 1 < argc) {
      writers = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--ms") && i + 1 < argc) {
      ms = std::atoi(argv[++i]);
    }
  }
  if (json_path) return run_churn(json_path, live, writers, ms);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
