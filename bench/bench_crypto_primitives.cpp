// Ablation A7: cost of the from-scratch cryptographic primitives that
// every secure operation composes — contextualizes the TLS-overhead and
// Globus-comparison results (how much of a handshake is RSA, how much a
// record costs in cipher+MAC work).
#include <benchmark/benchmark.h>

#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/md5.hpp"
#include "crypto/random.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

using namespace clarens::crypto;

namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 167 + 13);
  }
  return out;
}

RsaKeyPair& keys512() {
  static RsaKeyPair kp = [] {
    Drbg rng(std::vector<std::uint8_t>{1});
    return rsa_generate(512, rng);
  }();
  return kp;
}

RsaKeyPair& keys1024() {
  static RsaKeyPair kp = [] {
    Drbg rng(std::vector<std::uint8_t>{2});
    return rsa_generate(1024, rng);
  }();
  return kp;
}

}  // namespace

static void BM_Md5(benchmark::State& state) {
  auto data = pattern_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Md5 md5;
    md5.update(data);
    benchmark::DoNotOptimize(md5.finish());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(4096)->Arg(262144);

static void BM_Sha256(benchmark::State& state) {
  auto data = pattern_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(262144);

static void BM_HmacSha256(benchmark::State& state) {
  auto key = pattern_bytes(32);
  auto data = pattern_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(16384);

static void BM_ChaCha20(benchmark::State& state) {
  auto key = pattern_bytes(32);
  auto nonce = pattern_bytes(12);
  std::vector<std::uint8_t> data =
      pattern_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ChaCha20 cipher(key, nonce);
    cipher.crypt(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(16384)->Arg(262144);

// One TLS record = cipher + MAC over ~16 KiB.
static void BM_TlsRecordWork(benchmark::State& state) {
  auto key = pattern_bytes(32);
  auto nonce = pattern_bytes(12);
  auto mac_key = pattern_bytes(32);
  std::vector<std::uint8_t> data = pattern_bytes(16384);
  for (auto _ : state) {
    auto mac = hmac_sha256(mac_key, data);
    benchmark::DoNotOptimize(mac);
    ChaCha20 cipher(key, nonce);
    cipher.crypt(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_TlsRecordWork);

static void BM_RsaSign(benchmark::State& state) {
  RsaKeyPair& kp = state.range(0) == 512 ? keys512() : keys1024();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(kp.priv, "handshake transcript"));
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit");
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024);

static void BM_RsaVerify(benchmark::State& state) {
  RsaKeyPair& kp = state.range(0) == 512 ? keys512() : keys1024();
  auto sig = rsa_sign(kp.priv, "handshake transcript");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(kp.pub, "handshake transcript", sig));
  }
  state.SetLabel(std::to_string(state.range(0)) + "-bit");
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

static void BM_RsaDecrypt(benchmark::State& state) {
  RsaKeyPair& kp = keys512();
  Drbg rng(std::vector<std::uint8_t>{3});
  std::vector<std::uint8_t> pre_master = rng.bytes(48);
  auto ct = rsa_encrypt(kp.pub, pre_master, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_decrypt(kp.priv, ct));
  }
}
BENCHMARK(BM_RsaDecrypt);

static void BM_DrbgBytes(benchmark::State& state) {
  Drbg rng(std::vector<std::uint8_t>{4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bytes(32));
  }
}
BENCHMARK(BM_DrbgBytes);
