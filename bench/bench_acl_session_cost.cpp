// Ablation A1: cost of the paper's two per-request access-control checks
// (session lookup + method ACL evaluation) and of the full server
// dispatch pipeline around them.
//
// Both checks are now served from write-through caches (decoded sessions
// in SessionManager, compiled specs in AclManager), so the warm-path
// numbers below measure cache hits — the cold variants bust the caches
// every iteration to show what the seed's uncached store-backed path
// cost (store read + JSON decode + DN parsing per level).
#include <benchmark/benchmark.h>

#include "core/acl.hpp"
#include "core/session.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "rpc/registry.hpp"

using namespace clarens;

namespace {

struct Fixture {
  db::Store store;
  core::VoManager vo{store, {"/O=bench/CN=Root"}};
  core::AclManager acl{store, vo, false};
  core::SessionManager sessions{store};
  std::string session_id;
  pki::DistinguishedName user =
      pki::DistinguishedName::parse("/O=bench/OU=People/CN=User");

  Fixture() {
    core::AclSpec spec;
    spec.allow_dns = {"*"};
    acl.set_method_acl("system", spec);
    session_id = sessions.create(user.str(), false).id;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

static void BM_SessionLookup(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sessions.lookup(f.session_id));
  }
}
BENCHMARK(BM_SessionLookup);

// The RPC hot path uses the shared_ptr variant: no Session copy at all.
static void BM_SessionLookupShared(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sessions.lookup_shared(f.session_id));
  }
}
BENCHMARK(BM_SessionLookupShared);

// Cold lookup: destroy the cached entry each iteration (store write +
// cache invalidation), then lookup reads through to the store. This is
// an upper bound on the seed's per-request cost.
static void BM_SessionLookupColdCache(benchmark::State& state) {
  db::Store store;
  core::SessionManager sessions{store};
  core::Session keep = sessions.create("/O=bench/CN=Cold", false);
  for (auto _ : state) {
    state.PauseTiming();
    // Recreate to evict: destroy bumps the invalidation generation and
    // the recreate repopulates the store row we look up.
    sessions.destroy(keep.id);
    keep = sessions.create("/O=bench/CN=Cold", false);
    core::SessionManager fresh{store};  // empty cache, same store
    state.ResumeTiming();
    benchmark::DoNotOptimize(fresh.lookup_shared(keep.id));
  }
}
BENCHMARK(BM_SessionLookupColdCache);

static void BM_MethodAclCheck(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.acl.check_method("system.list_methods", f.user));
  }
}
BENCHMARK(BM_MethodAclCheck);

// Cold ACL check: bump the generation each iteration (as an ACL mutation
// would) so every check recompiles from the stored JSON.
static void BM_MethodAclCheckColdCache(benchmark::State& state) {
  Fixture& f = fixture();
  core::AclSpec spec;
  spec.allow_dns = {"*"};
  for (auto _ : state) {
    state.PauseTiming();
    f.acl.set_method_acl("system", spec);  // invalidates the compiled cache
    state.ResumeTiming();
    benchmark::DoNotOptimize(f.acl.check_method("system.list_methods", f.user));
  }
}
BENCHMARK(BM_MethodAclCheckColdCache);

// Both checks back to back: the per-request overhead of paper §4. The
// DN now comes pre-parsed from the cached session, as in handle_rpc.
static void BM_BothAccessChecks(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    std::shared_ptr<const core::Session> session =
        f.sessions.lookup_shared(f.session_id);
    benchmark::DoNotOptimize(
        f.acl.check_method("system.list_methods", session->identity_dn));
  }
}
BENCHMARK(BM_BothAccessChecks);

// ACL evaluation cost as the method-path depth grows (the walk is
// lowest-level-first; warm, every level is a cache hit — absent levels
// are negative entries).
static void BM_AclCheckByDepth(benchmark::State& state) {
  Fixture& f = fixture();
  int depth = static_cast<int>(state.range(0));
  std::string method = "m0";
  for (int i = 1; i < depth; ++i) method += ".m" + std::to_string(i);
  core::AclSpec spec;
  spec.allow_dns = {"*"};
  f.acl.set_method_acl("m0", spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.acl.check_method(method, f.user));
  }
  f.acl.remove_method_acl("m0");
}
BENCHMARK(BM_AclCheckByDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

// Registry dispatch of a trivial handler (the non-check remainder).
static void BM_RegistryDispatch(benchmark::State& state) {
  rpc::Registry registry;
  registry.add("echo.echo",
               [](const rpc::CallContext&, const std::vector<rpc::Value>& p) {
                 return p.empty() ? rpc::Value() : p[0];
               });
  rpc::CallContext context;
  std::vector<rpc::Value> params = {rpc::Value(42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.dispatch("echo.echo", context, params));
  }
}
BENCHMARK(BM_RegistryDispatch);

// Session creation (login path, includes a DRBG token + journaling when
// persistent; here in-memory as in the Figure-4 setup).
static void BM_SessionCreate(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    core::Session session = f.sessions.create(f.user.str(), false);
    f.sessions.destroy(session.id);
  }
}
BENCHMARK(BM_SessionCreate);
