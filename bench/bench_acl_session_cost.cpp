// Ablation A1: cost of the paper's two per-request access-control checks
// (session lookup + method ACL evaluation, both database operations,
// uncached) and of the full server dispatch pipeline around them.
#include <benchmark/benchmark.h>

#include "core/acl.hpp"
#include "core/session.hpp"
#include "core/vo.hpp"
#include "db/store.hpp"
#include "rpc/registry.hpp"

using namespace clarens;

namespace {

struct Fixture {
  db::Store store;
  core::VoManager vo{store, {"/O=bench/CN=Root"}};
  core::AclManager acl{store, vo, false};
  core::SessionManager sessions{store};
  std::string session_id;
  pki::DistinguishedName user =
      pki::DistinguishedName::parse("/O=bench/OU=People/CN=User");

  Fixture() {
    core::AclSpec spec;
    spec.allow_dns = {"*"};
    acl.set_method_acl("system", spec);
    session_id = sessions.create(user.str(), false).id;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

static void BM_SessionLookup(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.sessions.lookup(f.session_id));
  }
}
BENCHMARK(BM_SessionLookup);

static void BM_MethodAclCheck(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.acl.check_method("system.list_methods", f.user));
  }
}
BENCHMARK(BM_MethodAclCheck);

// Both checks back to back: the per-request overhead of paper §4.
static void BM_BothAccessChecks(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    core::Session session = f.sessions.lookup(f.session_id);
    benchmark::DoNotOptimize(
        f.acl.check_method("system.list_methods",
                           pki::DistinguishedName::parse(session.identity)));
  }
}
BENCHMARK(BM_BothAccessChecks);

// ACL evaluation cost as the method-path depth grows (the walk is
// lowest-level-first, so depth = number of DB lookups on a miss).
static void BM_AclCheckByDepth(benchmark::State& state) {
  Fixture& f = fixture();
  int depth = static_cast<int>(state.range(0));
  std::string method = "m0";
  for (int i = 1; i < depth; ++i) method += ".m" + std::to_string(i);
  core::AclSpec spec;
  spec.allow_dns = {"*"};
  f.acl.set_method_acl("m0", spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.acl.check_method(method, f.user));
  }
  f.acl.remove_method_acl("m0");
}
BENCHMARK(BM_AclCheckByDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

// Registry dispatch of a trivial handler (the non-check remainder).
static void BM_RegistryDispatch(benchmark::State& state) {
  rpc::Registry registry;
  registry.add("echo.echo",
               [](const rpc::CallContext&, const std::vector<rpc::Value>& p) {
                 return p.empty() ? rpc::Value() : p[0];
               });
  rpc::CallContext context;
  std::vector<rpc::Value> params = {rpc::Value(42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.dispatch("echo.echo", context, params));
  }
}
BENCHMARK(BM_RegistryDispatch);

// Session creation (login path, includes a DRBG token + journaling when
// persistent; here in-memory as in the Figure-4 setup).
static void BM_SessionCreate(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    core::Session session = f.sessions.create(f.user.str(), false);
    f.sessions.destroy(session.id);
  }
}
BENCHMARK(BM_SessionCreate);
