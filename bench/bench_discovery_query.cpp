// Discovery ablation (paper §2.4): the JClarens discovery server
// aggregates the JINI/station network into a local database and is
// "consequently able to respond to service searches far more rapidly".
//
// This harness builds a station network with S stations and R records
// each, then compares:
//   * fast path: find_services() against the local aggregated DB;
//   * slow path: query_stations() — one UDP round-trip per station.
//
// Usage: bench_discovery_query [--stations N] [--records N] [--queries N]
#include <cstring>
#include <memory>

#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/publisher.hpp"
#include "discovery/station.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  std::size_t n_stations = 8;
  std::size_t n_records = 50;
  int n_queries = 200;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--stations") && i + 1 < argc) {
      n_stations = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (!std::strcmp(argv[i], "--records") && i + 1 < argc) {
      n_records = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
    if (!std::strcmp(argv[i], "--queries") && i + 1 < argc) {
      n_queries = std::atoi(argv[++i]);
    }
  }

  std::printf("# Discovery query latency: aggregated local DB vs walking "
              "station servers (paper §2.4)\n");
  std::printf("# %zu stations x %zu records, %d queries each way\n",
              n_stations, n_records, n_queries);

  std::vector<std::unique_ptr<discovery::StationServer>> stations;
  std::vector<std::unique_ptr<discovery::Publisher>> publishers;
  db::Store store;
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/3600);

  const char* services[] = {"file", "shell", "vo", "acl", "proxy"};
  for (std::size_t s = 0; s < n_stations; ++s) {
    stations.push_back(std::make_unique<discovery::StationServer>());
    discovery.subscribe("127.0.0.1", stations.back()->port());
    auto publisher = std::make_unique<discovery::Publisher>(
        "127.0.0.1", stations.back()->port());
    std::vector<discovery::ServiceRecord> records;
    for (std::size_t r = 0; r < n_records; ++r) {
      discovery::ServiceRecord record;
      record.farm = "farm" + std::to_string(s);
      record.node = "node" + std::to_string(r);
      record.service = services[r % 5];
      record.url = "http://node" + std::to_string(r) + ":8080/";
      record.protocol = "xmlrpc";
      record.version = "1.0";
      records.push_back(std::move(record));
    }
    publisher->set_records(std::move(records));
    publisher->publish_once();
    publishers.push_back(std::move(publisher));
  }

  // Wait for aggregation to complete.
  std::size_t expected = n_stations * n_records;
  for (int i = 0; i < 500 && discovery.record_count() < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("# aggregated %zu/%zu records\n", discovery.record_count(),
              expected);

  util::Stopwatch fast_timer;
  std::size_t fast_hits = 0;
  for (int q = 0; q < n_queries; ++q) {
    fast_hits += discovery.find_services(services[q % 5]).size();
  }
  double fast_ms = fast_timer.seconds() * 1000 / n_queries;

  util::Stopwatch slow_timer;
  std::size_t slow_hits = 0;
  for (int q = 0; q < n_queries; ++q) {
    slow_hits += discovery.query_stations(services[q % 5]).size();
  }
  double slow_ms = slow_timer.seconds() * 1000 / n_queries;

  std::printf("%-28s %-14s %-12s\n", "path", "ms/query", "hits/query");
  std::printf("%-28s %-14.3f %-12.1f\n", "local DB (aggregated)", fast_ms,
              static_cast<double>(fast_hits) / n_queries);
  std::printf("%-28s %-14.3f %-12.1f\n", "station walk (per-query)", slow_ms,
              static_cast<double>(slow_hits) / n_queries);
  std::printf("# local DB speedup: %.1fx (grows with station count)\n",
              slow_ms / fast_ms);
  return 0;
}
