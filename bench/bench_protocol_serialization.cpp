// Ablation A2: wire-protocol cost. Clarens exposes XML-RPC, SOAP and
// JSON-RPC on the same endpoint (§2); this measures serialize + parse
// for each on the Figure-4 response payload (an array of >30 method-name
// strings) and on a struct-heavy file.ls-style payload.
#include <benchmark/benchmark.h>

#include "http/message.hpp"
#include "rpc/jsonrpc.hpp"
#include "rpc/protocol.hpp"
#include "rpc/soap.hpp"
#include "rpc/xmlrpc.hpp"
#include "util/buffer.hpp"

using namespace clarens;

namespace {

// The system.list_methods response of a fully loaded server.
rpc::Response list_methods_response() {
  rpc::Value names = rpc::Value::array();
  const char* modules[] = {"system", "file", "vo", "acl", "shell", "proxy"};
  const char* methods[] = {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"};
  for (const char* m : modules) {
    for (const char* f : methods) {
      names.push(std::string(m) + "." + f);
    }
  }
  return rpc::Response::success(names);
}

// A file.ls response: array of stat structs.
rpc::Response file_ls_response() {
  rpc::Value listing = rpc::Value::array();
  for (int i = 0; i < 50; ++i) {
    rpc::Value st = rpc::Value::struct_();
    st.set("name", "events-" + std::to_string(i) + ".dat");
    st.set("is_directory", false);
    st.set("size", std::int64_t{1} << 28);
    st.set("mtime", rpc::DateTime{1120000000 + i});
    listing.push(st);
  }
  return rpc::Response::success(listing);
}

rpc::Request list_methods_request() {
  rpc::Request request;
  request.method = "system.list_methods";
  return request;
}

}  // namespace

static void BM_SerializeResponse(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  rpc::Response response = list_methods_response();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string wire = rpc::serialize_response(protocol, response);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetLabel(std::string(rpc::to_string(protocol)) + " " +
                 std::to_string(bytes) + "B");
}
BENCHMARK(BM_SerializeResponse)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The server hot path: serialize into a reused arena Buffer (no wire
// string allocation at all once the arena is warm).
static void BM_SerializeResponseArena(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  rpc::Response response = list_methods_response();
  util::Buffer arena;
  std::size_t bytes = 0;
  for (auto _ : state) {
    arena.clear();
    rpc::serialize_response(protocol, response, arena);
    bytes = arena.readable();
    benchmark::DoNotOptimize(arena.peek_view().data());
  }
  state.SetLabel(std::string(rpc::to_string(protocol)) + " " +
                 std::to_string(bytes) + "B");
}
BENCHMARK(BM_SerializeResponseArena)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

static void BM_ParseResponse(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  std::string wire = rpc::serialize_response(protocol, list_methods_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::parse_response(protocol, wire));
  }
  state.SetLabel(rpc::to_string(protocol));
}
BENCHMARK(BM_ParseResponse)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

static void BM_SerializeStructHeavy(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  rpc::Response response = file_ls_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::serialize_response(protocol, response));
  }
  state.SetLabel(rpc::to_string(protocol));
}
BENCHMARK(BM_SerializeStructHeavy)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

static void BM_ParseStructHeavy(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  std::string wire = rpc::serialize_response(protocol, file_ls_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::parse_response(protocol, wire));
  }
  state.SetLabel(rpc::to_string(protocol));
}
BENCHMARK(BM_ParseStructHeavy)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

static void BM_RequestRoundTrip(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  rpc::Request request = list_methods_request();
  for (auto _ : state) {
    std::string wire = rpc::serialize_request(protocol, request);
    benchmark::DoNotOptimize(rpc::parse_request(protocol, wire));
  }
  state.SetLabel(rpc::to_string(protocol));
}
BENCHMARK(BM_RequestRoundTrip)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Header lookups run on every request (Content-Type, session token,
// Connection); they must not allocate lowercase temporaries.
static void BM_HeaderLookup(benchmark::State& state) {
  http::Headers headers;
  headers.add("Host", "localhost:8080");
  headers.add("User-Agent", "clarens-bench/1.0");
  headers.add("Accept", "*/*");
  headers.add("Content-Type", "text/xml");
  headers.add("Content-Length", "512");
  headers.add("X-Clarens-Session", "0123456789abcdef0123456789abcdef");
  headers.add("Connection", "keep-alive");
  for (auto _ : state) {
    benchmark::DoNotOptimize(headers.find("content-type"));
    benchmark::DoNotOptimize(headers.find("X-CLARENS-SESSION"));
    benchmark::DoNotOptimize(headers.find("connection"));
    benchmark::DoNotOptimize(headers.find("authorization"));  // miss
  }
}
BENCHMARK(BM_HeaderLookup);

// Binary payload cost: base64 dominates XML/JSON transports for
// file.read responses.
static void BM_BinaryPayload(benchmark::State& state) {
  auto protocol = static_cast<rpc::Protocol>(state.range(0));
  std::vector<std::uint8_t> blob(64 * 1024);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(i * 131);
  }
  rpc::Response response = rpc::Response::success(rpc::Value(blob));
  for (auto _ : state) {
    std::string wire = rpc::serialize_response(protocol, response);
    benchmark::DoNotOptimize(rpc::parse_response(protocol, wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
  state.SetLabel(rpc::to_string(protocol));
}
BENCHMARK(BM_BinaryPayload)->Arg(0)->Arg(1)->Arg(2)->Arg(3);
