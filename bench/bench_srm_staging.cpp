// Ablation A6: mass-storage staging behaviour (the §6 SRM integration).
//
// Measures what the disk cache buys: cold stage (tape latency) vs warm
// hit, eviction pressure when the working set exceeds the cache, and
// concurrent staging streams sharing one tape copy.
//
// Usage: bench_srm_staging [--rate BYTES_PER_SEC] [--files N]
#include <cstring>
#include <filesystem>

#include "crypto/random.hpp"
#include "storage/srm.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  std::int64_t rate = 64 << 20;  // 64 MB/s "tape drive"
  int n_files = 8;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rate") && i + 1 < argc) {
      rate = std::atoll(argv[++i]);
    }
    if (!std::strcmp(argv[i], "--files") && i + 1 < argc) {
      n_files = std::atoi(argv[++i]);
    }
  }
  const std::int64_t file_size = 4 << 20;  // 4 MiB per file

  std::string base = "/tmp/clarens_bench_srm_" + crypto::random_token(6);
  // Cache fits half the files: guarantees eviction churn in phase 3.
  storage::MassStorage mss(base + "/tape", base + "/cache",
                           file_size * n_files / 2, rate);
  storage::SrmService srm(mss, /*workers=*/2);
  std::string payload(static_cast<std::size_t>(file_size), 'D');
  for (int i = 0; i < n_files; ++i) {
    srm.put("/ds/file" + std::to_string(i), payload);
  }

  std::printf("# SRM staging behaviour (disk cache in front of simulated "
              "tape)\n");
  std::printf("# %d files x %lld MiB, cache %lld MiB, tape %lld MB/s\n",
              n_files, static_cast<long long>(file_size >> 20),
              static_cast<long long>((file_size * n_files / 2) >> 20),
              static_cast<long long>(rate >> 20));
  std::printf("%-34s %-12s\n", "phase", "ms/request");

  // Phase 1: cold stage.
  {
    util::Stopwatch timer;
    std::string token = srm.prepare_to_get("/ds/file0");
    srm.wait(token, 60000);
    std::printf("%-34s %-12.1f\n", "cold stage (tape read)",
                timer.seconds() * 1000);
    srm.release(token);
  }

  // Phase 2: warm hit.
  {
    util::Stopwatch timer;
    std::string token = srm.prepare_to_get("/ds/file0");
    srm.wait(token, 60000);
    std::printf("%-34s %-12.1f\n", "warm hit (cache)", timer.seconds() * 1000);
    srm.release(token);
  }

  // Phase 3: working set 2x the cache — every request evicts.
  {
    util::Stopwatch timer;
    int requests = 0;
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < n_files; ++i) {
        std::string token = srm.prepare_to_get("/ds/file" + std::to_string(i));
        srm.wait(token, 60000);
        srm.release(token);
        ++requests;
      }
    }
    std::printf("%-34s %-12.1f\n", "thrashing (working set 2x cache)",
                timer.seconds() * 1000 / requests);
  }

  // Phase 4: concurrent requests for one file share a single tape read.
  {
    util::Stopwatch timer;
    std::vector<std::string> tokens;
    for (int i = 0; i < 8; ++i) {
      tokens.push_back(srm.prepare_to_get("/ds/file1"));
    }
    for (const auto& token : tokens) srm.wait(token, 60000);
    for (const auto& token : tokens) srm.release(token);
    std::printf("%-34s %-12.1f\n", "8 concurrent requests, one file",
                timer.seconds() * 1000 / 8);
  }

  std::printf("# stages=%llu hits=%llu evictions=%llu\n",
              static_cast<unsigned long long>(mss.stage_count()),
              static_cast<unsigned long long>(mss.hit_count()),
              static_cast<unsigned long long>(mss.eviction_count()));
  std::filesystem::remove_all(base);
  return 0;
}
