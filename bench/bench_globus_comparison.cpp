// Globus Toolkit 3 comparison (paper §5 + footnote 4): "A trivial method
// [invoked] 100 times (ignoring first invocation) across a 100Mbps LAN
// using GTK 3.0 and GTK 3.9.1 resulted in 5 to 1 calls per second",
// versus ~1450 calls/second for Clarens.
//
// The gap is architectural: GT3 performed a new connection, a full
// mutually-authenticated handshake, grid-mapfile authorization and
// WSDD-driven service instantiation on *every* call, while Clarens
// amortizes authentication into a database-backed session over a
// keep-alive connection. HeavyGrid (src/baseline) reproduces the GT3
// call path with this repository's own primitives; this harness runs the
// paper's exact protocol — a trivial echo method 100 times, first call
// ignored — against both.
//
// Usage: bench_globus_comparison [--calls N]
#include <cstring>

#include "baseline/heavygrid.hpp"
#include "bench_common.hpp"
#include "client/client.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  int calls = 100;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--calls") && i + 1 < argc) {
      calls = std::atoi(argv[++i]);
    }
  }
  const bench::BenchPki& pki = bench::BenchPki::instance();

  std::printf("# Globus GT3 comparison (paper fn.4: GT3 1-5 calls/s vs "
              "Clarens ~1450)\n");
  std::printf("# protocol: trivial echo method x%d, first invocation "
              "ignored\n", calls);

  // --- Clarens: session established once, keep-alive connection --------
  double clarens_rate = 0;
  {
    core::ClarensServer server(bench::paper_server_config());
    server.start();
    client::ClientOptions options;
    options.port = server.port();
    options.credential = pki.user;
    options.trust = &pki.trust;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();
    client.call("echo.echo", {rpc::Value(0)});  // ignored first invocation
    util::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      client.call("echo.echo", {rpc::Value(i)});
    }
    clarens_rate = calls / timer.seconds();
    server.stop();
  }

  // --- HeavyGrid: connection + mutual handshake + container per call ---
  double heavygrid_rate = 0;
  {
    baseline::HeavyGridOptions options;
    options.credential = pki.server;
    options.trust = pki.trust;
    options.gridmap = {{pki.user.certificate.subject().str(), "bench"}};
    baseline::HeavyGridServer server(std::move(options));
    server.start();
    baseline::HeavyGridClient client("127.0.0.1", server.port(), pki.user,
                                     pki.trust);
    client.call("echo", {rpc::Value(0)});  // ignored first invocation
    util::Stopwatch timer;
    for (int i = 0; i < calls; ++i) {
      client.call("echo", {rpc::Value(i)});
    }
    heavygrid_rate = calls / timer.seconds();
    server.stop();
  }

  std::printf("%-22s %-14s\n", "framework", "calls/sec");
  std::printf("%-22s %-14.1f\n", "clarens (session)", clarens_rate);
  std::printf("%-22s %-14.1f\n", "heavygrid (GT3 model)", heavygrid_rate);
  std::printf("# clarens/heavygrid speedup: %.0fx (paper: ~300-1450x; shape "
              "claim is orders of magnitude from per-call setup)\n",
              clarens_rate / heavygrid_rate);
  return 0;
}
