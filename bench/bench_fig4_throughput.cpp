// Figure 4 reproduction: Clarens server throughput vs number of
// asynchronous clients.
//
// Paper setup (§4): a configurable number of unencrypted client
// connections call system.list_methods as rapidly as possible from a
// single client process completing requests asynchronously. Each batch
// is 1000 calls; every request passes two access-control checks against
// the database (session validity + method ACL), with no caching, and
// serializes the >30-method name array as an XML-RPC response. The paper
// sweeps 1..79 async clients, repeats each point 2000 times (316 million
// calls total) and reports ~1450 requests/second on 2005 hardware.
//
// This harness reproduces the sweep and the expected *shape*: throughput
// ramps with the first few concurrent connections, then plateaus once
// the server saturates — absolute numbers reflect today's hardware, not
// the dual-Xeon testbed.
//
// Usage: bench_fig4_throughput [--full] [--batches N] [--calls N]
//                               [--persistent] [--inline on|off]
//                               [--json FILE]
//   --full        sweep every client count 1..79 (default: subset)
//   --batches     batches of calls per point         (default 3)
//   --calls       calls per batch                    (default 1000)
//   --persistent  journal sessions/ACLs to disk like the paper's
//                 database-backed deployment (default: in-memory store)
//   --inline      adaptive inline dispatch on the reactor (default on);
//                 off is the ablation: every request takes the
//                 reactor->worker handoff
//   --json        write machine-readable results (consumed by
//                 BENCH_hotpath.json, same convention as
//                 bench_wire_protocols)
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "client/async_client.hpp"
#include "client/client.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  bool full = false;
  bool persistent = false;
  bool inline_dispatch = true;
  int batches = 3;
  std::uint64_t calls_per_batch = 1000;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--full")) full = true;
    if (!std::strcmp(argv[i], "--persistent")) persistent = true;
    if (!std::strcmp(argv[i], "--batches") && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    }
    if (!std::strcmp(argv[i], "--calls") && i + 1 < argc) {
      calls_per_batch = std::strtoull(argv[++i], nullptr, 10);
    }
    if (!std::strcmp(argv[i], "--inline") && i + 1 < argc) {
      inline_dispatch = std::strcmp(argv[++i], "off") != 0;
    }
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const bench::BenchPki& pki = bench::BenchPki::instance();
  core::ClarensConfig config = bench::paper_server_config();
  config.inline_dispatch = inline_dispatch;
  std::string data_dir;
  if (persistent) {
    data_dir = "/tmp/clarens_fig4_state";
    std::filesystem::remove_all(data_dir);
    config.data_dir = data_dir;
  }
  core::ClarensServer server(std::move(config));
  server.start();

  // Authenticate once; the measured window (as in the paper) covers only
  // the list_methods calls against an established session.
  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.user;
  options.trust = &pki.trust;
  client::ClarensClient login(options);
  login.connect();
  std::string session = login.authenticate();

  std::size_t n_methods =
      login.call("system.list_methods").as_array().size();
  std::printf("# Figure 4: Clarens performance (throughput vs #async clients)\n");
  std::printf("# method=system.list_methods (%zu methods serialized per response)\n",
              n_methods);
  std::printf("# checks per request: session lookup + method ACL (cached, "
              "write-through to %s)\n",
              persistent ? "journaled store" : "in-memory store");
  std::printf("# calls per batch: %llu, batches per point: %d, inline "
              "dispatch: %s\n",
              static_cast<unsigned long long>(calls_per_batch), batches,
              inline_dispatch ? "on" : "off");
  std::printf("%-8s %-14s %-14s %-10s\n", "clients", "calls/sec", "ms/batch",
              "faults");

  std::vector<std::size_t> sweep;
  if (full) {
    for (std::size_t n = 1; n <= 79; ++n) sweep.push_back(n);
  } else {
    sweep = {1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 79};
  }

  std::vector<double> rates;
  std::string json_points;
  std::uint64_t store_ops_before = server.store().operations();
  double measured_calls = 0;
  for (std::size_t clients : sweep) {
    client::AsyncCallDriver driver("127.0.0.1", server.port(), session,
                                   "system.list_methods", {});
    double total_calls = 0, total_seconds = 0;
    std::uint64_t faults = 0;
    for (int batch = 0; batch < batches; ++batch) {
      auto result = driver.run(clients, calls_per_batch * clients);
      total_calls += static_cast<double>(result.calls_completed);
      total_seconds += result.elapsed_seconds;
      faults += result.faults;
    }
    measured_calls += total_calls;
    double rate = total_calls / total_seconds;
    rates.push_back(rate);
    std::printf("%-8zu %-14.0f %-14.2f %-10llu\n", clients, rate,
                1000.0 * total_seconds / batches,
                static_cast<unsigned long long>(faults));
    std::fflush(stdout);
    char row[96];
    std::snprintf(row, sizeof(row), "%s    \"%zu\": %.0f",
                  json_points.empty() ? "" : ",\n", clients, rate);
    json_points += row;
  }

  double mean = std::accumulate(rates.begin(), rates.end(), 0.0) /
                static_cast<double>(rates.size());
  // The paper reports the average over the sweep ("an average of 1450
  // requests per second served"); the plateau mean is the comparable
  // statistic on modern hardware.
  std::printf("# average over sweep: %.0f calls/sec (paper: ~1450 on 2005 "
              "dual-Xeon)\n", mean);
  double ramp = rates.front();
  double plateau = *std::max_element(rates.begin(), rates.end());
  std::printf("# shape: 1-client rate %.0f -> peak %.0f (x%.2f ramp)\n", ramp,
              plateau, plateau / ramp);
  // Cache effectiveness: the warm authenticated path must not touch the
  // store at all (the handful of residual ops are the publisher and the
  // first cold lookups).
  std::uint64_t store_ops = server.store().operations() - store_ops_before;
  std::printf("# db store ops during measured sweep: %llu over %.0f calls "
              "(warm-path target: 0 per call)\n",
              static_cast<unsigned long long>(store_ops), measured_calls);
  std::uint64_t inlined = server.requests_inlined();
  std::printf("# requests dispatched inline on the reactor: %llu of %llu\n",
              static_cast<unsigned long long>(inlined),
              static_cast<unsigned long long>(server.requests_served()));

  if (json_path) {
    char summary[512];
    std::snprintf(
        summary, sizeof(summary),
        "{\n  \"bench\": \"fig4_throughput\",\n"
        "  \"inline_dispatch\": %s,\n"
        "  \"calls_per_batch\": %llu,\n  \"batches\": %d,\n"
        "  \"points\": {\n",
        inline_dispatch ? "true" : "false",
        static_cast<unsigned long long>(calls_per_batch), batches);
    std::string json = summary;
    json += json_points;
    std::snprintf(
        summary, sizeof(summary),
        "\n  },\n  \"summary\": {\"one_client\": %.0f, "
        "\"sweep_average\": %.0f, \"peak\": %.0f},\n"
        "  \"requests_inlined\": %llu,\n  \"requests_served\": %llu\n}\n",
        ramp, mean, plateau, static_cast<unsigned long long>(inlined),
        static_cast<unsigned long long>(server.requests_served()));
    json += summary;
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
    }
  }
  server.stop();
  if (!data_dir.empty()) std::filesystem::remove_all(data_dir);
  return 0;
}
