// File-serving throughput (paper §1): at the SuperComputing 2003
// bandwidth challenge "Clarens servers generated a peak of 3.2 Gb/s
// disk-to-disk streams consisting of CMS detector events."
//
// This harness measures the two Clarens file paths on a synthetic
// detector-event file:
//   * HTTP GET with the zero-copy sendfile(2) path (§2.3), and
//   * the file.read() RPC method at several block sizes (each block is a
//     full RPC with both access checks and base64 serialization).
// The expected shape: GET/sendfile saturates loopback far above the RPC
// path, and larger RPC blocks amortize per-call overhead.
//
// Usage: bench_file_throughput [--mb N]
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "core/transfer_service.hpp"
#include "pki/authority.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  std::int64_t file_mb = 64;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mb") && i + 1 < argc) {
      file_mb = std::atoi(argv[++i]);
    }
  }
  const std::int64_t file_bytes = file_mb * 1024 * 1024;

  // Synthetic CMS-style event file (pseudo-random, incompressible-ish).
  std::string dir = "/tmp/clarens_bench_files";
  std::filesystem::create_directories(dir);
  std::string path = dir + "/events.dat";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> block(1 << 20);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::int64_t written = 0; written < file_bytes;
         written += static_cast<std::int64_t>(block.size())) {
      for (std::size_t i = 0; i < block.size(); i += 8) {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        std::memcpy(&block[i], &x, 8);
      }
      out.write(block.data(), static_cast<std::streamsize>(block.size()));
    }
  }

  const bench::BenchPki& pki = bench::BenchPki::instance();
  core::ClarensConfig config = bench::paper_server_config();
  config.file_roots = {{"/data", dir}};
  core::FileAcl open_acl;
  open_acl.read = bench::allow_anyone();
  open_acl.write = bench::allow_anyone();
  config.initial_file_acls = {{"/data", open_acl}};
  core::ClarensServer server(std::move(config));
  server.start();

  client::ClientOptions options;
  options.port = server.port();
  options.credential = pki.user;
  options.trust = &pki.trust;
  client::ClarensClient client(options);
  client.connect();
  client.authenticate();

  std::printf("# File throughput (paper §1: 3.2 Gb/s disk-to-disk at SC2003; "
              "§2.3: sendfile for zero-copy)\n");
  std::printf("# file: %lld MiB synthetic event data\n",
              static_cast<long long>(file_mb));
  std::printf("%-26s %-12s %-12s\n", "path", "MB/s", "Gb/s");

  // HTTP GET via sendfile: one request, whole file.
  {
    util::Stopwatch timer;
    http::Response response = client.get("/data/events.dat");
    double seconds = timer.seconds();
    if (response.status != 200 ||
        response.body.size() != static_cast<std::size_t>(file_bytes)) {
      std::printf("GET failed: status %d size %zu\n", response.status,
                  response.body.size());
      return 1;
    }
    double mbps = static_cast<double>(file_bytes) / (1 << 20) / seconds;
    std::printf("%-26s %-12.0f %-12.2f\n", "http-get (sendfile)", mbps,
                mbps * 8 / 1024);
  }

  // file.read() RPC at several block sizes.
  for (std::int64_t block : {64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024}) {
    util::Stopwatch timer;
    std::int64_t offset = 0;
    while (offset < file_bytes) {
      auto chunk = client.file_read("/data/events.dat", offset, block);
      if (chunk.empty()) break;
      offset += static_cast<std::int64_t>(chunk.size());
    }
    double seconds = timer.seconds();
    double mbps = static_cast<double>(offset) / (1 << 20) / seconds;
    char label[64];
    std::snprintf(label, sizeof(label), "file.read rpc (%lldKiB)",
                  static_cast<long long>(block / 1024));
    std::printf("%-26s %-12.0f %-12.2f\n", label, mbps, mbps * 8 / 1024);
  }

  // Server-to-server transfer (the SC2003 scenario proper): a second
  // Clarens server pulls the file via delegation and verifies MD5.
  {
    std::string replica_dir = dir + "/replica";
    std::filesystem::create_directories(replica_dir);
    core::ClarensConfig dest_config = bench::paper_server_config();
    dest_config.file_roots = {{"/replica", replica_dir}};
    core::FileAcl replica_acl;
    replica_acl.read = bench::allow_anyone();
    replica_acl.write = bench::allow_anyone();
    dest_config.initial_file_acls = {{"/replica", replica_acl}};
    dest_config.initial_method_acls.push_back(
        {"proxy", bench::allow_anyone()});
    dest_config.initial_method_acls.push_back(
        {"transfer", bench::allow_anyone()});
    core::ClarensServer dest(std::move(dest_config));
    dest.start();

    pki::Credential proxy = pki::issue_proxy(pki.user);
    client::ClientOptions dest_options;
    dest_options.port = dest.port();
    dest_options.credential = pki.user;
    dest_options.trust = &pki.trust;
    client::ClarensClient mover(dest_options);
    mover.connect();
    mover.authenticate();
    mover.call("proxy.store", {rpc::Value(proxy.encode()),
                               rpc::Value(pki.user.certificate.encode()),
                               rpc::Value("bench")});

    util::Stopwatch timer;
    std::string id =
        mover
            .call("transfer.start",
                  {rpc::Value("http://127.0.0.1:" + std::to_string(server.port())),
                   rpc::Value("/data/events.dat"),
                   rpc::Value("/replica/events.dat"), rpc::Value("bench")})
            .as_string();
    core::Transfer done = dest.transfers().wait(
        id, pki.user.certificate.subject(), 600000);
    double seconds = timer.seconds();
    if (done.state == core::TransferState::Done) {
      double mbps = static_cast<double>(done.bytes) / (1 << 20) / seconds;
      std::printf("%-26s %-12.0f %-12.2f\n",
                  "server-to-server transfer", mbps, mbps * 8 / 1024);
    } else {
      std::printf("server-to-server transfer FAILED: %s\n", done.error.c_str());
    }
    dest.stop();
  }

  std::printf("# shape: sendfile GET >> RPC path; larger RPC blocks amortize "
              "the two per-call DB checks + base64; server-to-server pull\n"
              "# (delegated, md5-verified) rides the RPC path per 1MiB block\n");
  server.stop();
  std::filesystem::remove_all(dir);
  return 0;
}
