// Ablation A8: end-to-end protocol comparison over the wire.
//
// Clarens exposes XML-RPC, SOAP, JSON-RPC and (JClarens) a binary
// RMI-analogue on the same endpoint. The serialization microbench
// (bench_protocol_serialization) isolates codec cost; this harness runs
// complete round-trips — HTTP + both access checks + dispatch + codec —
// to show how much of the request budget the codec actually is.
//
// Usage: bench_wire_protocols [--calls N] [--json FILE]
//   --json writes machine-readable results (consumed by BENCH_wire.json).
#include <cstring>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "util/clock.hpp"

using namespace clarens;

int main(int argc, char** argv) {
  std::uint64_t calls = 2000;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--calls") && i + 1 < argc) {
      calls = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const bench::BenchPki& pki = bench::BenchPki::instance();
  core::ClarensServer server(bench::paper_server_config());
  server.start();

  std::printf("# Wire-protocol comparison: full round-trips of "
              "system.list_methods (%llu calls each)\n",
              static_cast<unsigned long long>(calls));
  std::printf("%-12s %-14s %-16s\n", "protocol", "calls/sec", "us/call");

  std::string json = "{\n  \"bench\": \"wire_protocols\",\n  \"calls\": " +
                     std::to_string(calls) + ",\n  \"protocols\": {\n";
  bool first = true;
  for (rpc::Protocol protocol :
       {rpc::Protocol::XmlRpc, rpc::Protocol::Soap, rpc::Protocol::JsonRpc,
        rpc::Protocol::Binary}) {
    client::ClientOptions options;
    options.port = server.port();
    options.credential = pki.user;
    options.trust = &pki.trust;
    options.protocol = protocol;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();
    for (int i = 0; i < 50; ++i) client.call("system.list_methods");  // warm
    util::Stopwatch timer;
    for (std::uint64_t i = 0; i < calls; ++i) {
      client.call("system.list_methods");
    }
    double seconds = timer.seconds();
    double cps = calls / seconds;
    double us = seconds * 1e6 / calls;
    std::printf("%-12s %-14.0f %-16.1f\n", rpc::to_string(protocol), cps, us);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s    \"%s\": {\"calls_per_sec\": %.0f, \"us_per_call\": "
                  "%.2f}",
                  first ? "" : ",\n", rpc::to_string(protocol), cps, us);
    json += row;
    first = false;
  }
  json += "\n  }\n}\n";
  if (json_path) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
    }
  }
  std::printf("# shape: binary < json < xml/soap in per-call cost; the\n"
              "# spread narrows vs the codec-only bench because HTTP and\n"
              "# the two DB access checks dominate small calls\n");
  server.stop();
  return 0;
}
