// Shared setup for the benchmark harnesses: a benchmark PKI (created
// once per process) and a Clarens server configured exactly like the
// paper's §4 test — method ACLs granting the system module to every
// authenticated identity, two uncached DB access checks per request.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/server.hpp"
#include "pki/authority.hpp"

namespace clarens::bench {

struct BenchPki {
  pki::CertificateAuthority ca;
  pki::Credential server;
  pki::Credential user;
  pki::TrustStore trust;

  static const BenchPki& instance() {
    static BenchPki* pki = [] {
      auto* p = new BenchPki{
          pki::CertificateAuthority::create(
              pki::DistinguishedName::parse("/O=benchgrid.org/CN=Bench CA"),
              512),
          {}, {}, {}};
      p->server = p->ca.issue_server(pki::DistinguishedName::parse(
          "/O=benchgrid.org/OU=Services/CN=host/bench.example.org"));
      p->user = p->ca.issue_user(pki::DistinguishedName::parse(
          "/O=benchgrid.org/OU=People/CN=Bench Client"));
      p->trust.add_authority(p->ca.certificate());
      return p;
    }();
    return *pki;
  }
};

inline core::AclSpec allow_anyone() {
  core::AclSpec spec;
  spec.allow_dns = {core::AclSpec::kAnyone};
  return spec;
}

/// The paper's server setup: unencrypted by default, sessions + ACLs in
/// the database, system/echo/file modules open to authenticated users.
inline core::ClarensConfig paper_server_config(bool use_tls = false) {
  const BenchPki& pki = BenchPki::instance();
  core::ClarensConfig config;
  config.trust = pki.trust;
  config.use_tls = use_tls;
  if (use_tls) config.credential = pki.server;
  config.admins = {"/O=benchgrid.org/OU=People/CN=Bench Admin"};
  config.initial_method_acls = {{"system", allow_anyone()},
                                {"echo", allow_anyone()},
                                {"file", allow_anyone()}};
  return config;
}

}  // namespace clarens::bench
