// Federation overhead: what does the head/storage role split cost?
//
// Topology: one head node (sessions + namespace, no file bytes) and two
// storage nodes, wired through a discovery station, placement decided by
// the consistent-hash ring over namespace prefixes. The ablation
// baseline is a standalone server doing the same file I/O with no hop.
//
// Measured:
//   * file.write / file.read through RoutedClient — every call pays the
//     head round-trip (redirect envelope) plus the replay on the owning
//     storage node;
//   * the same calls against a standalone server (no redirect tax);
//   * file.ls on the shared namespace root — head-side async fan-out to
//     every storage node, merged;
//   * the replication tax (ISSUE 10): the same writes against a head
//     running placement_replicas=2 — client-visible write cost (the
//     copy is asynchronous, so this should track the single-copy
//     number), background convergence to full replication, and the
//     replica.fsck scrub throughput over every replica.
//
// Usage: bench_federation [--files N] [--reads N] [--json FILE]
//   --json writes machine-readable results (folded into
//   BENCH_federation.json when committing a federation change).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "client/client.hpp"
#include "client/routed.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "federation/router.hpp"
#include "util/clock.hpp"

using namespace clarens;

namespace {

constexpr const char* kSecret = "bench-federation-secret";

core::ClarensConfig fed_config(const std::string& node, core::NodeRole role,
                               const std::string& data_dir,
                               const std::string& head_url,
                               std::uint16_t station_port) {
  core::ClarensConfig config = bench::paper_server_config();
  core::FileAcl open_acl;
  open_acl.read = bench::allow_anyone();
  open_acl.write = bench::allow_anyone();
  config.initial_file_acls = {{"/data", open_acl}};
  // The replication control plane: storage-node commit notifications
  // (replica.committed) run the method ACL against the writer identity.
  config.initial_method_acls.push_back({"replica", bench::allow_anyone()});
  config.farm = "benchfarm";
  config.node = node;
  config.node_role = role;
  config.node_ticket_secret = kSecret;
  config.head_url = head_url;
  if (station_port != 0) config.station = {{"127.0.0.1", station_port}};
  config.publish_interval_ms = 100;
  config.federation_refresh_ms = 100;
  if (!data_dir.empty()) config.file_roots = {{"/data", data_dir}};
  return config;
}

struct IoCost {
  double write_us = 0;
  double read_us = 0;
};

/// mkdir every run prefix, then time `files` writes and `reads` reads of
/// an 8 KiB payload spread over the prefixes.
template <typename Client>
IoCost measure_io(Client& client, int files, int reads,
                  const std::string& payload) {
  for (int i = 0; i < files; ++i) {
    client.call("file.mkdir", {rpc::Value("/data/run" + std::to_string(i))});
  }
  IoCost cost;
  util::Stopwatch write_timer;
  for (int i = 0; i < files; ++i) {
    std::string path = "/data/run" + std::to_string(i) + "/evt.bin";
    client.call("file.write", {rpc::Value(path), rpc::Value(payload)});
  }
  cost.write_us = write_timer.seconds() * 1e6 / files;
  util::Stopwatch read_timer;
  for (int i = 0; i < reads; ++i) {
    std::string path = "/data/run" + std::to_string(i % files) + "/evt.bin";
    client.call("file.read", {rpc::Value(path), rpc::Value(std::int64_t{0}),
                              rpc::Value(std::int64_t{1 << 20})});
  }
  cost.read_us = read_timer.seconds() * 1e6 / reads;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  int files = 16;
  int reads = 400;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--files") && i + 1 < argc) {
      files = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--reads") && i + 1 < argc) {
      reads = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const bench::BenchPki& pki = bench::BenchPki::instance();
  const std::string payload(8192, 'x');
  std::string root = "/tmp/clarens_bench_federation";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root + "/solo");
  std::filesystem::create_directories(root + "/fst1");
  std::filesystem::create_directories(root + "/fst2");

  std::printf("# Federation: redirect-to-node file I/O vs standalone "
              "(8 KiB payloads, %d files, %d reads)\n", files, reads);

  // Baseline: one standalone server, no discovery, no redirect hop.
  IoCost solo;
  {
    core::ClarensConfig config =
        fed_config("solo", core::NodeRole::Standalone, root + "/solo",
                   /*head_url=*/"", /*station_port=*/0);
    core::ClarensServer server(std::move(config));
    server.start();
    client::ClientOptions options;
    options.port = server.port();
    options.credential = pki.user;
    options.trust = &pki.trust;
    client::ClarensClient client(options);
    client.connect();
    client.authenticate();
    solo = measure_io(client, files, reads, payload);
    server.stop();
  }

  // Cluster: head + 2 storage behind one discovery fabric.
  discovery::StationServer station;
  db::Store store;
  discovery::DiscoveryServer discovery(store, /*record_ttl=*/3600);
  discovery.subscribe("127.0.0.1", station.port());

  core::ClarensServer head(fed_config("head", core::NodeRole::Head,
                                      /*data_dir=*/"", /*head_url=*/"",
                                      station.port()));
  head.attach_discovery(discovery);
  head.start();
  const std::string head_url = head.url();
  core::ClarensServer storage1(fed_config("fst1", core::NodeRole::Storage,
                                          root + "/fst1", head_url,
                                          station.port()));
  storage1.start();
  core::ClarensServer storage2(fed_config("fst2", core::NodeRole::Storage,
                                          root + "/fst2", head_url,
                                          station.port()));
  storage2.start();
  for (int i = 0; i < 500 && (!head.router() ||
                              head.router()->storage_nodes().size() < 2);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!head.router() || head.router()->storage_nodes().size() < 2) {
    std::printf("error: head never saw both storage nodes\n");
    return 1;
  }

  client::ClientOptions base;
  base.credential = pki.user;
  base.trust = &pki.trust;
  client::RoutedClient routed(head_url, base, /*max_attempts=*/10,
                              /*retry_backoff_ms=*/50);
  routed.authenticate();
  IoCost fed = measure_io(routed, files, reads, payload);

  // Fan-out listing: the head asks every storage node and merges.
  int ls_calls = reads / 10 > 5 ? reads / 10 : 5;
  util::Stopwatch ls_timer;
  for (int i = 0; i < ls_calls; ++i) {
    routed.call("file.ls", {rpc::Value("/data")});
  }
  double ls_ms = ls_timer.seconds() * 1e3 / ls_calls;

  // Replication: an isolated cluster (own discovery fabric, so its ring
  // and commit notifications do not mix with the single-copy one) whose
  // head targets two copies per file. The client-visible write should
  // stay near the single-copy number (the second copy is made in the
  // background); convergence and fsck measure the repair engine itself.
  std::filesystem::create_directories(root + "/fst3");
  std::filesystem::create_directories(root + "/fst4");
  discovery::StationServer rep_station;
  db::Store rep_store;
  discovery::DiscoveryServer rep_discovery(rep_store, /*record_ttl=*/3600);
  rep_discovery.subscribe("127.0.0.1", rep_station.port());
  core::ClarensConfig rep_config = fed_config(
      "head2", core::NodeRole::Head, /*data_dir=*/"", /*head_url=*/"",
      rep_station.port());
  rep_config.placement_replicas = 2;
  rep_config.replication_grace_ms = 500;
  core::ClarensServer rep_head(std::move(rep_config));
  rep_head.attach_discovery(rep_discovery);
  rep_head.start();
  core::ClarensServer storage3(fed_config("fst3", core::NodeRole::Storage,
                                          root + "/fst3", rep_head.url(),
                                          rep_station.port()));
  storage3.start();
  core::ClarensServer storage4(fed_config("fst4", core::NodeRole::Storage,
                                          root + "/fst4", rep_head.url(),
                                          rep_station.port()));
  storage4.start();
  for (int i = 0; i < 500 && (!rep_head.router() ||
                              rep_head.router()->storage_nodes().size() < 2);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!rep_head.router() || rep_head.router()->storage_nodes().size() < 2) {
    std::printf("error: replication head never saw its storage nodes\n");
    return 1;
  }
  client::RoutedClient rep_client(rep_head.url(), base, /*max_attempts=*/10,
                                  /*retry_backoff_ms=*/50);
  rep_client.authenticate();
  for (int i = 0; i < files; ++i) {
    rep_client.call("file.mkdir",
                    {rpc::Value("/data/rep" + std::to_string(i))});
  }
  util::Stopwatch rep_write_timer;
  for (int i = 0; i < files; ++i) {
    std::string path = "/data/rep" + std::to_string(i) + "/evt.bin";
    rep_client.call("file.write", {rpc::Value(path), rpc::Value(payload)});
  }
  double rep_write_us = rep_write_timer.seconds() * 1e6 / files;

  // Convergence: seconds from the last write until every file reports
  // two healthy, checksum-confirmed replicas.
  auto healthy_count = [&](const std::string& path) {
    int healthy = 0;
    try {
      rpc::Value layout = rep_client.call("file.layout", {rpc::Value(path)});
      if (!layout.at("confirmed").as_bool()) return 0;
      for (const rpc::Value& replica : layout.at("replicas").as_array()) {
        if (replica.at("state").as_string() == "healthy") ++healthy;
      }
    } catch (const std::exception&) {
    }
    return healthy;
  };
  util::Stopwatch converge_timer;
  double converge_s = -1;
  for (int spin = 0; spin < 3000; ++spin) {
    bool done = true;
    for (int i = 0; i < files && done; ++i) {
      done = healthy_count("/data/rep" + std::to_string(i) + "/evt.bin") >= 2;
    }
    if (done) {
      converge_s = converge_timer.seconds();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (converge_s < 0) {
    std::printf("error: replication never converged\n");
    return 1;
  }

  // fsck scrub: every replica of every managed file gets stream-hashed
  // on its storage node; throughput is replicas checked (and bytes
  // hashed) per second of wall clock.
  util::Stopwatch fsck_timer;
  rpc::Value fsck = rep_client.call("replica.fsck", {rpc::Value("/data")});
  double fsck_s = fsck_timer.seconds();
  std::int64_t fsck_files = fsck.at("files").as_int();
  std::int64_t fsck_replicas = fsck.at("replicas_checked").as_int();
  double fsck_mb = fsck_replicas * static_cast<double>(payload.size()) / 1e6;

  std::printf("%-28s %-12s %-12s\n", "path", "write us", "read us");
  std::printf("%-28s %-12.1f %-12.1f\n", "standalone (no hop)",
              solo.write_us, solo.read_us);
  std::printf("%-28s %-12.1f %-12.1f\n", "federated (head redirect)",
              fed.write_us, fed.read_us);
  std::printf("%-28s %-12.1f %-12s\n", "federated, 2 replicas",
              rep_write_us, "-");
  std::printf("# redirect tax: write %.2fx, read %.2fx; fan-out file.ls "
              "%.2f ms over %zu nodes; %llu redirects followed\n",
              fed.write_us / solo.write_us, fed.read_us / solo.read_us,
              ls_ms, head.router()->storage_nodes().size(),
              static_cast<unsigned long long>(routed.redirects_followed()));
  std::printf("# replication: client-visible write %.2fx single-copy; "
              "%d files fully replicated %.2fs after last write\n",
              rep_write_us / fed.write_us, files, converge_s);
  std::printf("# fsck scrub: %lld replicas of %lld files in %.3fs "
              "(%.0f replicas/s, %.1f MB/s hashed)\n",
              static_cast<long long>(fsck_replicas),
              static_cast<long long>(fsck_files), fsck_s,
              fsck_replicas / fsck_s, fsck_mb / fsck_s);

  if (json_path) {
    std::string json =
        "{\n  \"bench\": \"federation\",\n"
        "  \"files\": " + std::to_string(files) + ",\n"
        "  \"reads\": " + std::to_string(reads) + ",\n"
        "  \"payload_bytes\": 8192,\n"
        "  \"standalone_us\": {\"file_write\": " +
        std::to_string(solo.write_us) + ", \"file_read\": " +
        std::to_string(solo.read_us) + "},\n"
        "  \"federated_us\": {\"file_write\": " +
        std::to_string(fed.write_us) + ", \"file_read\": " +
        std::to_string(fed.read_us) + ", \"file_ls_fanout_ms\": " +
        std::to_string(ls_ms) + "},\n"
        "  \"redirect_tax\": {\"write\": " +
        std::to_string(fed.write_us / solo.write_us) + ", \"read\": " +
        std::to_string(fed.read_us / solo.read_us) + "},\n"
        "  \"replication\": {\"file_write_us\": " +
        std::to_string(rep_write_us) + ", \"write_tax_vs_single_copy\": " +
        std::to_string(rep_write_us / fed.write_us) +
        ", \"convergence_s\": " + std::to_string(converge_s) + "},\n"
        "  \"fsck\": {\"files\": " + std::to_string(fsck_files) +
        ", \"replicas_checked\": " + std::to_string(fsck_replicas) +
        ", \"seconds\": " + std::to_string(fsck_s) +
        ", \"replicas_per_s\": " + std::to_string(fsck_replicas / fsck_s) +
        ", \"mb_hashed_per_s\": " + std::to_string(fsck_mb / fsck_s) + "},\n"
        "  \"redirects_followed\": " +
        std::to_string(routed.redirects_followed()) + "\n}\n";
    if (!std::strcmp(json_path, "-")) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(json_path);
      out << json;
    }
  }

  storage4.stop();
  storage3.stop();
  rep_head.stop();
  storage2.stop();
  storage1.stop();
  head.stop();
  std::filesystem::remove_all(root);
  return 0;
}
