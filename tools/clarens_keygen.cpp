// clarens_keygen — create and manage the PKI material the framework uses.
//
// Usage:
//   clarens_keygen ca     <dn> <out.cred>                 new self-signed CA
//   clarens_keygen user   <ca.cred> <dn> <out.cred>       issue a user credential
//   clarens_keygen server <ca.cred> <dn> <out.cred>       issue a server credential
//   clarens_keygen proxy  <user.cred> <out.cred> [hours]  issue a proxy
//   clarens_keygen export-cert <in.cred> <out.cert>       strip the private key
//   clarens_keygen show   <file>                          print certificate fields
//
// Credentials (certificate + private key) use the framework's text
// encoding; guard them like any private key file.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "pki/authority.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

using namespace clarens;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SystemError("cannot read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SystemError("cannot write: " + path);
  out << content;
}

int usage() {
  std::fprintf(stderr,
               "usage: clarens_keygen ca <dn> <out.cred>\n"
               "       clarens_keygen user <ca.cred> <dn> <out.cred>\n"
               "       clarens_keygen server <ca.cred> <dn> <out.cred>\n"
               "       clarens_keygen proxy <user.cred> <out.cred> [hours]\n"
               "       clarens_keygen export-cert <in.cred> <out.cert>\n"
               "       clarens_keygen show <file>\n");
  return 2;
}

void show(const pki::Certificate& cert) {
  std::printf("subject:    %s\n", cert.subject().str().c_str());
  std::printf("issuer:     %s\n", cert.issuer().str().c_str());
  std::printf("kind:       %s\n", pki::to_string(cert.kind()).c_str());
  std::printf("serial:     %s\n", cert.serial().c_str());
  std::printf("not-before: %s\n", util::iso8601(cert.not_before()).c_str());
  std::printf("not-after:  %s\n", util::iso8601(cert.not_after()).c_str());
  std::printf("key bits:   %zu\n", cert.public_key().n.bit_length());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string command = argv[1];
  try {
    if (command == "ca" && argc == 4) {
      auto ca = pki::CertificateAuthority::create(
          pki::DistinguishedName::parse(argv[2]));
      write_file(argv[3], ca.credential().encode());
      std::printf("wrote CA credential %s\n", argv[3]);
      show(ca.certificate());
    } else if ((command == "user" || command == "server") && argc == 5) {
      pki::CertificateAuthority ca(pki::Credential::decode(read_file(argv[2])));
      pki::Credential cred =
          command == "user"
              ? ca.issue_user(pki::DistinguishedName::parse(argv[3]))
              : ca.issue_server(pki::DistinguishedName::parse(argv[3]));
      write_file(argv[4], cred.encode());
      std::printf("wrote %s credential %s\n", command.c_str(), argv[4]);
      show(cred.certificate);
    } else if (command == "proxy" && (argc == 4 || argc == 5)) {
      pki::Credential user = pki::Credential::decode(read_file(argv[2]));
      long hours = argc == 5 ? std::strtol(argv[4], nullptr, 10) : 12;
      pki::Credential proxy = pki::issue_proxy(user, hours * 3600);
      write_file(argv[3], proxy.encode());
      std::printf("wrote proxy credential %s (%ld h)\n", argv[3], hours);
      show(proxy.certificate);
    } else if (command == "export-cert" && argc == 4) {
      pki::Credential cred = pki::Credential::decode(read_file(argv[2]));
      write_file(argv[3], cred.certificate.encode());
      std::printf("wrote certificate %s (no private key)\n", argv[3]);
    } else if (command == "show" && argc == 3) {
      std::string text = read_file(argv[2]);
      if (text.find("private-key:") != std::string::npos) {
        show(pki::Credential::decode(text).certificate);
        std::printf("(credential: includes private key)\n");
      } else {
        show(pki::Certificate::decode(text));
      }
    } else {
      return usage();
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clarens_keygen: %s\n", e.what());
    return 1;
  }
}
