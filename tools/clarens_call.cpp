// clarens_call — command-line RPC client.
//
// Usage:
//   clarens_call [options] <method> [json-params]
//
// Options:
//   --host H            server host (default 127.0.0.1)
//   --port P            server port (required)
//   --credential FILE   client credential for authentication
//   --chain FILE        extra chain certificate (user cert for proxies)
//   --ca FILE           trusted CA certificate (required for auth/TLS)
//   --tls               encrypt the connection
//   --session TOKEN     reuse an existing session instead of logging in
//   --protocol NAME     xmlrpc | jsonrpc | soap | binrpc (default xmlrpc)
//
// Parameters are given as a JSON array; the result prints as JSON:
//   clarens_call --port 8080 --ca ca.cert --credential me.cred
//       file.read '["/data/events.dat", 0, 1024]'
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "client/client.hpp"
#include "rpc/fault.hpp"
#include "rpc/jsonrpc.hpp"
#include "util/error.hpp"

using namespace clarens;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SystemError("cannot read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: clarens_call --port P [--host H] [--ca FILE]\n"
               "         [--credential FILE] [--chain FILE] [--tls]\n"
               "         [--session TOKEN] [--protocol NAME]\n"
               "         <method> [json-params]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  client::ClientOptions options;
  pki::TrustStore trust;
  std::string session;
  std::string method;
  std::string params_json = "[]";
  bool have_ca = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw ParseError("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--host") {
        options.host = next();
      } else if (arg == "--port") {
        options.port = static_cast<std::uint16_t>(std::atoi(next()));
      } else if (arg == "--credential") {
        options.credential = pki::Credential::decode(read_file(next()));
      } else if (arg == "--chain") {
        options.chain.push_back(pki::Certificate::decode(read_file(next())));
      } else if (arg == "--ca") {
        trust.add_authority(pki::Certificate::decode(read_file(next())));
        have_ca = true;
      } else if (arg == "--tls") {
        options.use_tls = true;
      } else if (arg == "--session") {
        session = next();
      } else if (arg == "--protocol") {
        std::string name = next();
        if (name == "xmlrpc") options.protocol = rpc::Protocol::XmlRpc;
        else if (name == "jsonrpc") options.protocol = rpc::Protocol::JsonRpc;
        else if (name == "soap") options.protocol = rpc::Protocol::Soap;
        else if (name == "binrpc") options.protocol = rpc::Protocol::Binary;
        else throw ParseError("unknown protocol: " + name);
      } else if (method.empty()) {
        method = arg;
      } else {
        params_json = arg;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "clarens_call: %s\n", e.what());
      return 2;
    }
  }
  if (method.empty() || options.port == 0) return usage();

  try {
    if (have_ca) options.trust = &trust;
    client::ClarensClient client(options);
    client.connect();
    if (!session.empty()) {
      client.set_session(session);
    } else if (options.credential) {
      client.authenticate();
      std::fprintf(stderr, "session: %s\n", client.session().c_str());
    }

    rpc::Value params_value = rpc::jsonrpc::parse_value(params_json);
    std::vector<rpc::Value> params;
    if (params_value.type() == rpc::Value::Type::Array) {
      params = params_value.as_array();
    } else if (!params_value.is_nil()) {
      throw ParseError("params must be a JSON array");
    }

    rpc::Value result = client.call(method, params);
    std::printf("%s\n", rpc::jsonrpc::serialize_value(result).c_str());
    return 0;
  } catch (const rpc::Fault& fault) {
    std::fprintf(stderr, "fault %d: %s\n", fault.code(), fault.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clarens_call: %s\n", e.what());
    return 1;
  }
}
