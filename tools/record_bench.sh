#!/usr/bin/env bash
# Re-measure the numbers recorded in BENCH_hotpath.json / BENCH_wire.json
# and leave the raw outputs in one place, so updating the committed JSON
# is a copy job instead of a scavenger hunt.
#
# Usage: tools/record_bench.sh [build-dir] [out-dir]
#   build-dir  where the bench binaries live   (default: build)
#   out-dir    where to write raw results      (default: bench_results)
#
# Produces in out-dir:
#   acl_session_cost.txt   microbench ns/op (BM_SessionCreate and friends)
#   fig4_inline.json       end-to-end sweep, adaptive inline dispatch ON
#   fig4_inline_off.json   ablation: every request takes the worker handoff
#   wire.json              per-protocol round-trip cost
#   store.json             storage-engine churn rows (BENCH_store.json)
#   federation.json        cluster redirect tax + replication overhead
#                          and fsck scrub throughput (BENCH_federation.json)
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-bench_results}"
mkdir -p "$OUT"

if [[ ! -x "$BUILD/bench/bench_fig4_throughput" ]]; then
  echo "error: $BUILD/bench/bench_fig4_throughput not built" >&2
  echo "hint: cmake -B $BUILD -S . && cmake --build $BUILD -j" >&2
  exit 1
fi

echo "== microbench: session/ACL hot path =="
"$BUILD/bench/bench_acl_session_cost" --benchmark_min_time=0.2 \
  | tee "$OUT/acl_session_cost.txt"

echo
echo "== fig4 end-to-end: inline dispatch on =="
"$BUILD/bench/bench_fig4_throughput" --json "$OUT/fig4_inline.json"

echo
echo "== fig4 end-to-end: inline dispatch off (ablation) =="
"$BUILD/bench/bench_fig4_throughput" --inline off \
  --json "$OUT/fig4_inline_off.json"

echo
echo "== wire protocols =="
"$BUILD/bench/bench_wire_protocols" --json "$OUT/wire.json"

echo
echo "== storage engine: multi-writer session churn =="
"$BUILD/bench/bench_session_persistence" --json "$OUT/store.json"

echo
echo "== federation: redirect-to-node I/O vs standalone =="
"$BUILD/bench/bench_federation" --json "$OUT/federation.json"

echo
echo "Raw results in $OUT/. Fold the summaries into BENCH_hotpath.json,"
echo "BENCH_wire.json, BENCH_store.json and BENCH_federation.json when"
echo "committing a performance change."
