// clarens_methods: dump the method registry of a fully-loaded server as
// a stable markdown table, derived from the per-method metadata the
// binding layer records (help, signature, public flag, ACL path).
//
//   clarens_methods                    print the generated table
//   clarens_methods --check FILE       verify FILE contains the same
//                                      table between the BEGIN/END
//                                      markers (doc-drift check; the
//                                      method_doc_drift ctest runs this
//                                      against docs/SERVICES.md)
//
// On drift, prints both versions and exits 1; regenerate the region in
// the doc by pasting this tool's output.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.hpp"
#include "discovery/discovery_server.hpp"
#include "storage/mass_storage.hpp"
#include "storage/srm.hpp"

namespace {

constexpr const char* kBegin =
    "<!-- BEGIN GENERATED METHOD TABLE (clarens_methods) -->";
constexpr const char* kEnd =
    "<!-- END GENERATED METHOD TABLE (clarens_methods) -->";

std::string generated_table() {
  namespace fs = std::filesystem;
  // A throwaway sandbox/storage tree so every optional service module
  // (shell, job, transfer, discovery, srm) registers its methods.
  fs::path scratch =
      fs::temp_directory_path() / "clarens_methods_scratch";
  fs::remove_all(scratch);
  fs::create_directories(scratch / "sandbox");

  clarens::core::ClarensConfig config;
  config.sandbox_base = (scratch / "sandbox").string();
  config.transfer_workers = 1;
  config.job_workers = 1;
  config.session_reap_interval_s = 0;
  // Head role so the federation layer registers too: the federated
  // file.* variants replace the standalone bindings in the table, and
  // file.locate / file.layout / replica.* appear. (The repair engine is
  // constructed but never started — no worker thread runs here.)
  config.node_role = clarens::core::NodeRole::Head;
  config.node_ticket_secret = "documentation-only-secret";
  clarens::core::ClarensServer server(std::move(config));

  clarens::db::Store discovery_store;
  clarens::discovery::DiscoveryServer discovery(discovery_store);
  server.attach_discovery(discovery);

  clarens::storage::MassStorage storage((scratch / "tape").string(),
                                        (scratch / "cache").string(),
                                        1 << 20);
  clarens::storage::SrmService srm(storage, /*workers=*/1);
  server.attach_storage(srm);

  std::ostringstream out;
  out << kBegin << "\n";
  out << "| method | signature | flags | description |\n";
  out << "|---|---|---|---|\n";
  for (const auto& name : server.registry().list()) {
    clarens::rpc::MethodInfo info = server.registry().info(name);
    std::string flags;
    if (info.is_public) flags = "public";
    if (!info.acl_path.empty()) {
      if (!flags.empty()) flags += ", ";
      flags += "acl=" + info.acl_path;
    }
    // '|' in a signature ("base64|string") would split the table cell.
    std::string signature;
    for (char c : info.signature) {
      if (c == '|') signature += '\\';
      signature += c;
    }
    out << "| `" << info.name << "` | `" << signature << "` | " << flags
        << " | " << info.help << " |\n";
  }
  out << kEnd << "\n";

  server.stop();
  fs::remove_all(scratch);
  return out.str();
}

/// The marker-delimited region of `text`, inclusive, or "" if absent.
std::string marked_region(const std::string& text) {
  std::size_t begin = text.find(kBegin);
  std::size_t end = text.find(kEnd);
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    return {};
  }
  end += std::string(kEnd).size();
  std::string region = text.substr(begin, end - begin);
  region += '\n';
  return region;
}

}  // namespace

int main(int argc, char** argv) {
  std::string check_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check" && i + 1 < argc) {
      check_file = argv[++i];
    } else {
      std::cerr << "usage: clarens_methods [--check FILE]\n";
      return 2;
    }
  }

  std::string expected = generated_table();
  if (check_file.empty()) {
    std::cout << expected;
    return 0;
  }

  std::ifstream in(check_file);
  if (!in) {
    std::cerr << "clarens_methods: cannot open " << check_file << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string actual = marked_region(buffer.str());
  if (actual.empty()) {
    std::cerr << "clarens_methods: " << check_file
              << " has no generated-table markers\n";
    return 1;
  }
  if (actual != expected) {
    std::cerr << "clarens_methods: " << check_file
              << " is out of date with the registry.\n\n--- documented\n"
              << actual << "\n--- registry\n"
              << expected
              << "\nRegenerate by replacing the marked region with "
                 "`clarens_methods` output.\n";
    return 1;
  }
  std::cout << "clarens_methods: " << check_file << " matches the registry ("
            << std::count(expected.begin(), expected.end(), '\n') - 3
            << " methods)\n";
  return 0;
}
