// clarens_lint: structural analyzer for the Clarens source tree.
//
// The clang thread-safety analysis (src/util/sync.hpp) checks lock
// *usage*; this linter checks lock *discipline* and a handful of
// structural invariants the compiler cannot see:
//
//   raw-sync      std::mutex / std::condition_variable / std::thread &
//                 friends outside the annotated wrappers in
//                 src/util/sync.hpp. Raw primitives carry no capability
//                 attributes, so any state they guard silently escapes
//                 the thread-safety analysis.
//   detach        .detach() anywhere. Detached threads outlive their
//                 owner's destructor and race teardown; util::Thread
//                 deliberately has no detach().
//   net-blocking  sleeps (and std::this_thread) inside src/net/ — the
//                 reactor thread services every connection, so one
//                 blocking call stalls the whole server.
//   reactor-blocking  blocking-wait calls (wait_writable, wait, wait_for,
//                 join, the sleep family) inside src/net/, src/http/ or
//                 src/tls/. With inline dispatch the reactor also runs
//                 handlers there, so every blocking primitive must carry
//                 an allow() naming the worker/control thread that may
//                 legitimately park on it.
//   layering      src/rpc/ and src/util/ including core/ or http/
//                 headers (dependency direction: util <- rpc <- http
//                 <- core).
//   raw-new       new / delete expressions. The tree owns memory through
//                 containers and smart pointers; a bare new is either a
//                 leak-in-waiting or needs an allow() with a reason.
//   lock-order    `// lock-order: outer -> inner` comments checked
//                 against the declared hierarchy (docs/CONCURRENCY.md).
//                 Unknown level names and inverted edges are errors.
//   bad-allow     a `// clarens-lint: allow(rule)` escape hatch without
//                 a justification, or naming an unknown rule.
//
// Escape hatch: `// clarens-lint: allow(<rule>): <justification>` on the
// violating line or the line immediately above suppresses <rule> there.
// The justification text is mandatory.
//
// Violations print as `file:line: rule-id: message`, one per line.
#pragma once

#include <string>
#include <vector>

namespace clarens::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// `file:line: rule-id: message`.
std::string format(const Violation& violation);

/// The declared lock hierarchy: level name -> rank. A `lock-order:
/// A -> B` comment is legal iff rank(A) < rank(B) (outer locks have
/// lower ranks). Exposed for tests and for the usage message.
const std::vector<std::pair<std::string, int>>& lock_hierarchy();

/// Lint one in-memory translation unit. `path` decides the path-scoped
/// rules (net-blocking, layering, raw-sync exemptions) and is matched by
/// suffix, so both absolute and repo-relative paths work.
std::vector<Violation> lint_content(const std::string& path,
                                    const std::string& content);

/// Lint one file on disk.
std::vector<Violation> lint_file(const std::string& path);

/// Recursively lint every *.hpp / *.cpp under `root` (or `root` itself
/// when it is a file). Results are ordered by path, then line.
std::vector<Violation> lint_tree(const std::string& root);

}  // namespace clarens::lint
