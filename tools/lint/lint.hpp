// clarens_lint: structural analyzer for the Clarens source tree.
//
// The clang thread-safety analysis (src/util/sync.hpp) checks lock
// *usage*; this linter checks lock *discipline* and a handful of
// structural invariants the compiler cannot see. Per-line rules:
//
//   raw-sync      std::mutex / std::condition_variable / std::thread &
//                 friends outside the annotated wrappers in
//                 src/util/sync.hpp. Raw primitives carry no capability
//                 attributes, so any state they guard silently escapes
//                 the thread-safety analysis.
//   detach        .detach() anywhere. Detached threads outlive their
//                 owner's destructor and race teardown; util::Thread
//                 deliberately has no detach().
//   net-blocking  sleeps (and std::this_thread) inside src/net/ — the
//                 reactor thread services every connection, so one
//                 blocking call stalls the whole server.
//   reactor-blocking  blocking-wait calls (wait_writable, wait, wait_for,
//                 join, the sleep family) inside src/net/, src/http/ or
//                 src/tls/. With inline dispatch the reactor also runs
//                 handlers there, so every blocking primitive must carry
//                 an allow() naming the worker/control thread that may
//                 legitimately park on it.
//   layering      src/rpc/ and src/util/ including core/ or http/
//                 headers (dependency direction: util <- rpc <- http
//                 <- core).
//   raw-new       new / delete expressions. The tree owns memory through
//                 containers and smart pointers; a bare new is either a
//                 leak-in-waiting or needs an allow() with a reason.
//   lock-order    `// lock-order: outer -> inner` comments checked
//                 against the declared hierarchy
//                 (src/util/lock_levels.hpp — the single source of truth
//                 shared with the runtime detector and the generated
//                 docs/CONCURRENCY.md table). Unknown level names and
//                 inverted or same-rank edges are errors. The same rule
//                 fires on *derived* edges: a LockGuard/WriteLock/
//                 ReadLock/UniqueLock lexically nested inside another
//                 guard's scope (or inside a CLARENS_REQUIRES body)
//                 whose resolved levels invert the table, or sit at the
//                 same rank without a util::SameRankToken at the call
//                 site.
//   undeclared-mutex  a util::Mutex / util::SharedMutex declaration that
//                 does not name its hierarchy level
//                 (`util::Mutex m{util::LockLevel::kFoo};`), or names an
//                 enumerator the table does not know.
//   held-over-call  a blocking operation (roundtrip, fdatasync/fsync,
//                 connect, sendfile, the sleep family) lexically inside
//                 a guard scope. Holding a lock across a syscall that
//                 can stall turns every other acquirer into a convoy.
//   lock-cycle    (tree-wide) the merged global lock graph — lock-order
//                 comments, CLARENS_REQUIRES bodies and lexically nested
//                 guard scopes across every file — contains a directed
//                 cycle. SameRankToken edges stay IN this graph: each
//                 token is locally justified, but two tokened edges in
//                 opposite directions across different files are a
//                 deadlock no per-edge check can see.
//   bad-allow     a `// clarens-lint: allow(rule)` escape hatch without
//                 a justification, or naming an unknown rule.
//
// Escape hatch: `// clarens-lint: allow(<rule>): <justification>` on the
// violating line or the line immediately above suppresses <rule> there.
// The justification text is mandatory.
//
// Violations print as `file:line: rule-id: message`, one per line.
#pragma once

#include <string>
#include <vector>

namespace clarens::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One in-memory translation unit for lint_sources.
struct SourceFile {
  std::string path;
  std::string content;
};

/// `file:line: rule-id: message`.
std::string format(const Violation& violation);

/// The declared lock hierarchy: level name -> rank, generated from
/// src/util/lock_levels.hpp. A `lock-order: A -> B` edge is legal iff
/// rank(A) < rank(B) (outer locks have lower ranks). Exposed for tests
/// and for the usage message.
const std::vector<std::pair<std::string, int>>& lock_hierarchy();

/// The markdown rank table embedded in docs/CONCURRENCY.md between the
/// CLARENS_LOCK_TABLE markers; `clarens_lint --check-lock-doc` diffs the
/// two so the doc can never drift from lock_levels.hpp.
std::string lock_table_markdown();

/// Lint a set of translation units together: every per-line rule on each
/// file, plus the cross-file lock-graph pass (lock-cycle, derived
/// lock-order edges) over the merged declaration index.
std::vector<Violation> lint_sources(const std::vector<SourceFile>& files);

/// Lint one in-memory translation unit. `path` decides the path-scoped
/// rules (net-blocking, layering, raw-sync exemptions) and is matched by
/// suffix, so both absolute and repo-relative paths work.
std::vector<Violation> lint_content(const std::string& path,
                                    const std::string& content);

/// Lint one file on disk.
std::vector<Violation> lint_file(const std::string& path);

/// Recursively collect every *.hpp / *.cpp under each root (or the root
/// itself when it is a file) and lint them together, so lock-graph edges
/// connect across files and directories. Results are ordered by path,
/// then line.
std::vector<Violation> lint_roots(const std::vector<std::string>& roots);

/// lint_roots with a single root.
std::vector<Violation> lint_tree(const std::string& root);

}  // namespace clarens::lint
