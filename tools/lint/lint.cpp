#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace clarens::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Lexer: split a translation unit into per-line code and comment text.
// String and character literal *contents* are blanked in the code view
// (the quotes stay) so token rules never fire inside literals; comment
// text is collected separately because two rules (lock-order, the allow
// escape hatch) read comments.
// ---------------------------------------------------------------------

struct LineInfo {
  std::string code;
  std::string comment;
  std::string raw;
};

std::vector<LineInfo> lex(const std::string& content) {
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  std::vector<LineInfo> lines(1);
  State state = State::Code;
  std::string raw_delim;  // raw-string delimiter, ")delim" form
  std::size_t i = 0;
  while (i < content.size()) {
    char c = content[i];
    LineInfo& line = lines.back();
    if (c != '\n') line.raw += c;
    switch (state) {
      case State::Code:
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::LineComment;
          ++i;  // skip the second slash; comment text starts after it
          line.raw += '/';
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::BlockComment;
          ++i;
          line.raw += '*';
          line.code += "  ";
        } else if (c == '"') {
          // Raw string? look back for R / u8R / LR / uR / UR prefix.
          bool raw = i > 0 && content[i - 1] == 'R' &&
                     (i < 2 || !(std::isalnum(static_cast<unsigned char>(
                                     content[i - 2])) ||
                                 content[i - 2] == '_') ||
                      content[i - 2] == '8' || content[i - 2] == 'u' ||
                      content[i - 2] == 'U' || content[i - 2] == 'L');
          if (raw) {
            std::size_t open = content.find('(', i + 1);
            raw_delim = ")";
            if (open != std::string::npos) {
              raw_delim += content.substr(i + 1, open - i - 1);
            }
            raw_delim += '"';
            state = State::Raw;
          } else {
            state = State::String;
          }
          line.code += '"';
        } else if (c == '\'') {
          state = State::Char;
          line.code += '\'';
        } else {
          line.code += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
        } else {
          line.comment += c;
        }
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::Code;
          ++i;
          line.raw += '/';
        } else if (c != '\n') {
          line.comment += c;
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
          if (content[i] != '\n') line.raw += content[i];
        } else if (c == '"') {
          state = State::Code;
          line.code += '"';
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
          if (content[i] != '\n') line.raw += content[i];
        } else if (c == '\'') {
          state = State::Code;
          line.code += '\'';
        }
        break;
      case State::Raw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          line.raw += raw_delim.substr(1);
          line.code += '"';
          state = State::Code;
        }
        break;
    }
    if (c == '\n') lines.emplace_back();
    ++i;
  }
  return lines;
}

// ---------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Position of `token` in `code` with identifier boundaries on both
/// sides, from `from`; npos when absent.
std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (pos > 0 && ident_char(code[pos - 1])) continue;
    std::size_t end = pos + token.size();
    if (end < code.size() && ident_char(code[end])) continue;
    return pos;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::string trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

bool path_in(const std::string& path, const std::string& dir) {
  // Matches "src/<dir>/..." whether `path` is absolute or relative.
  std::string needle = "/" + dir + "/";
  if (path.find(needle) != std::string::npos) return true;
  return path.rfind(dir + "/", 0) == 0;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "raw-sync", "detach",     "net-blocking",     "layering",
      "raw-new",  "lock-order", "reactor-blocking",
  };
  return rules;
}

// ---------------------------------------------------------------------
// The allow() escape hatch.
// ---------------------------------------------------------------------

struct Allows {
  /// line -> rules suppressed on that line.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Violation> bad;
};

Allows collect_allows(const std::string& path,
                      const std::vector<LineInfo>& lines) {
  Allows allows;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string comment = trim(lines[n].comment);
    if (comment.rfind("clarens-lint:", 0) != 0) continue;
    int line = static_cast<int>(n) + 1;
    std::size_t pos = skip_spaces(comment, std::string("clarens-lint:").size());
    if (comment.compare(pos, 6, "allow(") != 0) {
      allows.bad.push_back({path, line, "bad-allow",
                            "expected `clarens-lint: allow(<rule>): "
                            "<justification>`"});
      continue;
    }
    std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
      allows.bad.push_back({path, line, "bad-allow", "unclosed allow("});
      continue;
    }
    std::string rule = trim(comment.substr(pos + 6, close - pos - 6));
    if (!known_rules().count(rule)) {
      allows.bad.push_back(
          {path, line, "bad-allow", "unknown rule '" + rule + "'"});
      continue;
    }
    std::size_t just = skip_spaces(comment, close + 1);
    if (just >= comment.size() || comment[just] != ':' ||
        trim(comment.substr(just + 1)).empty()) {
      allows.bad.push_back({path, line, "bad-allow",
                            "allow(" + rule +
                                ") needs a justification: `allow(" + rule +
                                "): <why>`"});
      continue;
    }
    // The pragma covers its own line and the line below it.
    allows.by_line[line].insert(rule);
    allows.by_line[line + 1].insert(rule);
  }
  return allows;
}

// ---------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------

void check_raw_sync(const std::string& path, const std::vector<LineInfo>& lines,
                    std::vector<Violation>& out) {
  // The wrapper itself and the pool it predates are the only homes for
  // raw primitives.
  if (path_ends_with(path, "util/sync.hpp") ||
      path_ends_with(path, "util/thread_pool.hpp")) {
    return;
  }
  static const char* kTokens[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::thread",         "std::jthread",
  };
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      if (std::string(token) == "std::thread") {
        // std::thread::id / std::thread::hardware_concurrency are types
        // and constants, not thread ownership.
        std::size_t after = pos + std::string(token).size();
        if (code.compare(after, 2, "::") == 0) continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-sync",
                     std::string(token) +
                         " outside src/util/sync.hpp; use the annotated "
                         "util:: wrappers"});
    }
  }
}

void check_detach(const std::string& path, const std::vector<LineInfo>& lines,
                  std::vector<Violation>& out) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (std::size_t pos = find_token(code, "detach"); pos != std::string::npos;
         pos = find_token(code, "detach", pos + 1)) {
      std::size_t after = skip_spaces(code, pos + 6);
      if (after < code.size() && code[after] == '(') {
        out.push_back({path, static_cast<int>(n) + 1, "detach",
                       "detached threads race teardown; keep the handle "
                       "and join it (util::Thread has no detach)"});
      }
    }
  }
}

void check_net_blocking(const std::string& path,
                        const std::vector<LineInfo>& lines,
                        std::vector<Violation>& out) {
  if (!path_in(path, "net")) return;
  static const char* kTokens[] = {"sleep_for", "sleep_until", "usleep",
                                  "nanosleep", "sleep"};
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    bool hit = false;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      std::size_t after = skip_spaces(code, pos + std::string(token).size());
      if (after < code.size() && code[after] == '(') {
        out.push_back({path, static_cast<int>(n) + 1, "net-blocking",
                       std::string(token) +
                           "() blocks the reactor thread; every connection "
                           "stalls behind it"});
        hit = true;
        break;
      }
    }
    if (!hit && code.find("std::this_thread") != std::string::npos) {
      out.push_back({path, static_cast<int>(n) + 1, "net-blocking",
                     "std::this_thread in reactor code is a blocking "
                     "smell; the reactor must never wait"});
    }
  }
}

void check_reactor_blocking(const std::string& path,
                            const std::vector<LineInfo>& lines,
                            std::vector<Violation>& out) {
  // The reactor thread services every connection, and with inline
  // dispatch it also runs handlers; one blocking wait in the transport
  // stack stalls all of them. Blocking primitives in src/net, src/http
  // and src/tls must carry an allow() naming the thread that may
  // legitimately park there (identifier-boundary matching keeps
  // epoll_wait and joinable out of scope).
  if (!path_in(path, "net") && !path_in(path, "http") &&
      !path_in(path, "tls")) {
    return;
  }
  static const char* kTokens[] = {
      "wait_writable", "wait_idle",   "wait_for", "wait_until",
      "wait",          "join",        "sleep_for", "sleep_until",
      "usleep",        "nanosleep",   "sleep",
  };
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      std::size_t after = skip_spaces(code, pos + std::string(token).size());
      if (after >= code.size() || code[after] != '(') continue;
      out.push_back({path, static_cast<int>(n) + 1, "reactor-blocking",
                     std::string(token) +
                         "() can block; reactor-owned code must stay "
                         "non-blocking — if this call never runs on the "
                         "reactor thread, say so with allow(reactor-"
                         "blocking)"});
      break;  // one finding per line is enough to demand the annotation
    }
  }
}

void check_layering(const std::string& path, const std::vector<LineInfo>& lines,
                    std::vector<Violation>& out) {
  // Two scoped cases:
  //  * rpc/ and util/ sit below http/ and core/ and may include neither;
  //  * federation/ sits beside core/ (it depends on client, discovery
  //    and rpc) and must never reach into core internals — the head's
  //    method bindings in core depend on federation, not the reverse.
  struct Scope {
    const char* dir;
    std::vector<const char*> banned;
    const char* why;
  };
  static const Scope kScopes[] = {
      {"rpc",
       {"core/", "http/"},
       "dependency direction is util <- rpc <- http <- core; this layer "
       "must not include "},
      {"util",
       {"core/", "http/"},
       "dependency direction is util <- rpc <- http <- core; this layer "
       "must not include "},
      {"federation",
       {"core/"},
       "federation depends on client/discovery/rpc, never core internals; "
       "this layer must not include "},
  };
  for (const Scope& scope : kScopes) {
    if (!path_in(path, scope.dir)) continue;
    for (std::size_t n = 0; n < lines.size(); ++n) {
      const std::string& raw = lines[n].raw;
      std::size_t pos = skip_spaces(raw, 0);
      if (pos >= raw.size() || raw[pos] != '#') continue;
      pos = skip_spaces(raw, pos + 1);
      if (raw.compare(pos, 7, "include") != 0) continue;
      pos = skip_spaces(raw, pos + 7);
      if (pos >= raw.size() || raw[pos] != '"') continue;
      for (const char* layer : scope.banned) {
        if (raw.compare(pos + 1, std::string(layer).size(), layer) == 0) {
          out.push_back({path, static_cast<int>(n) + 1, "layering",
                         scope.why + std::string(layer)});
        }
      }
    }
  }
}

void check_raw_new(const std::string& path, const std::vector<LineInfo>& lines,
                   std::vector<Violation>& out) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (std::size_t pos = find_token(code, "new"); pos != std::string::npos;
         pos = find_token(code, "new", pos + 1)) {
      std::size_t after = skip_spaces(code, pos + 3);
      // Placement new (`new (arena) T`) is the sanctioned form.
      if (after < code.size() && code[after] == '(') continue;
      // `operator new` declarations describe allocation, don't perform it.
      std::size_t before = code.find_last_not_of(" \t", pos == 0 ? 0 : pos - 1);
      if (before != std::string::npos && before >= 7 &&
          code.compare(before - 7, 8, "operator") == 0) {
        continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-new",
                     "bare new; own memory via containers or "
                     "std::make_unique/std::make_shared"});
    }
    for (std::size_t pos = find_token(code, "delete"); pos != std::string::npos;
         pos = find_token(code, "delete", pos + 1)) {
      // `= delete` (deleted functions) and `operator delete`.
      std::size_t before =
          pos == 0 ? std::string::npos : code.find_last_not_of(" \t", pos - 1);
      if (before != std::string::npos && code[before] == '=') continue;
      if (before != std::string::npos && before >= 7 &&
          code.compare(before - 7, 8, "operator") == 0) {
        continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-new",
                     "bare delete; the matching allocation should live in "
                     "a smart pointer"});
    }
  }
}

void check_lock_order(const std::string& path,
                      const std::vector<LineInfo>& lines,
                      std::vector<Violation>& out) {
  std::map<std::string, int> rank;
  for (const auto& [level, r] : lock_hierarchy()) rank[level] = r;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string comment = trim(lines[n].comment);
    if (comment.rfind("lock-order:", 0) != 0) continue;
    int line = static_cast<int>(n) + 1;
    std::string spec = trim(comment.substr(std::string("lock-order:").size()));
    std::size_t arrow = spec.find("->");
    if (arrow == std::string::npos) {
      out.push_back({path, line, "lock-order",
                     "malformed declaration; expected `lock-order: "
                     "<outer> -> <inner>`"});
      continue;
    }
    std::string outer = trim(spec.substr(0, arrow));
    std::string inner = trim(spec.substr(arrow + 2));
    bool ok = true;
    for (const std::string& level : {outer, inner}) {
      if (!rank.count(level)) {
        out.push_back({path, line, "lock-order",
                       "unknown lock level '" + level +
                           "'; declare it in the hierarchy table "
                           "(tools/lint/lint.cpp) and docs/CONCURRENCY.md"});
        ok = false;
      }
    }
    if (!ok) continue;
    if (rank[outer] >= rank[inner]) {
      out.push_back({path, line, "lock-order",
                     "'" + outer + "' -> '" + inner +
                         "' inverts the declared hierarchy (" + outer +
                         " rank " + std::to_string(rank[outer]) + ", " +
                         inner + " rank " + std::to_string(rank[inner]) +
                         "); deadlock risk"});
    }
  }
}

}  // namespace

const std::vector<std::pair<std::string, int>>& lock_hierarchy() {
  // Outer locks have lower ranks; a thread may only acquire downward.
  // Keep in sync with docs/CONCURRENCY.md.
  static const std::vector<std::pair<std::string, int>> hierarchy = {
      {"core.server.reaper", 10},  // session-reaper wakeup lock
      {"core.vo.write", 20},       // VO group read-modify-write
      {"core.vo.root_cache", 20},  // root-admins compiled cache
      {"core.acl.shard", 20},      // compiled method-ACL cache shard
      {"core.shell", 20},          // shell session table
      {"core.job", 20},            // job table + queue
      {"core.transfer", 20},       // transfer table + queue
      {"core.message", 20},        // mailbox table
      {"core.srm", 20},            // SRM request table
      {"federation.router", 20},   // placement ring + refresh stopwatch
      {"core.session.shard", 30},  // session cache shard (leaf w.r.t. db)
      {"client.peer_pool", 30},    // idle-client map (leaf; no calls held)
      {"db.store.shard", 40},      // store memtable shard (SharedMutex)
      {"db.store.journal", 50},    // innermost: store commit queue
      {"storage.mass", 40},        // leaf: disk-cache bookkeeping
  };
  return hierarchy;
}

std::string format(const Violation& violation) {
  std::ostringstream out;
  out << violation.file << ":" << violation.line << ": " << violation.rule
      << ": " << violation.message;
  return out.str();
}

std::vector<Violation> lint_content(const std::string& path,
                                    const std::string& content) {
  std::vector<LineInfo> lines = lex(content);
  Allows allows = collect_allows(path, lines);
  std::vector<Violation> found;
  check_raw_sync(path, lines, found);
  check_detach(path, lines, found);
  check_net_blocking(path, lines, found);
  check_reactor_blocking(path, lines, found);
  check_layering(path, lines, found);
  check_raw_new(path, lines, found);
  check_lock_order(path, lines, found);
  std::vector<Violation> out = std::move(allows.bad);
  for (auto& violation : found) {
    auto it = allows.by_line.find(violation.line);
    if (it != allows.by_line.end() && it->second.count(violation.rule)) {
      continue;
    }
    out.push_back(std::move(violation));
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

std::vector<Violation> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_content(path, buffer.str());
}

std::vector<Violation> lint_tree(const std::string& root) {
  std::vector<std::string> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
  } else {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  }
  std::vector<Violation> out;
  for (const std::string& file : files) {
    std::vector<Violation> found = lint_file(file);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

}  // namespace clarens::lint
