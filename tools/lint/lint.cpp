#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "util/lock_levels.hpp"

namespace clarens::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Lexer: split a translation unit into per-line code and comment text.
// String and character literal *contents* are blanked in the code view
// (the quotes stay) so token rules never fire inside literals; comment
// text is collected separately because two rules (lock-order, the allow
// escape hatch) read comments.
// ---------------------------------------------------------------------

struct LineInfo {
  std::string code;
  std::string comment;
  std::string raw;
};

std::vector<LineInfo> lex(const std::string& content) {
  enum class State { Code, LineComment, BlockComment, String, Char, Raw };
  std::vector<LineInfo> lines(1);
  State state = State::Code;
  std::string raw_delim;  // raw-string delimiter, ")delim" form
  std::size_t i = 0;
  while (i < content.size()) {
    char c = content[i];
    LineInfo& line = lines.back();
    if (c != '\n') line.raw += c;
    switch (state) {
      case State::Code:
        if (c == '/' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::LineComment;
          ++i;  // skip the second slash; comment text starts after it
          line.raw += '/';
        } else if (c == '/' && i + 1 < content.size() &&
                   content[i + 1] == '*') {
          state = State::BlockComment;
          ++i;
          line.raw += '*';
          line.code += "  ";
        } else if (c == '"') {
          // Raw string? look back for R / u8R / LR / uR / UR prefix.
          bool raw = i > 0 && content[i - 1] == 'R' &&
                     (i < 2 || !(std::isalnum(static_cast<unsigned char>(
                                     content[i - 2])) ||
                                 content[i - 2] == '_') ||
                      content[i - 2] == '8' || content[i - 2] == 'u' ||
                      content[i - 2] == 'U' || content[i - 2] == 'L');
          if (raw) {
            std::size_t open = content.find('(', i + 1);
            raw_delim = ")";
            if (open != std::string::npos) {
              raw_delim += content.substr(i + 1, open - i - 1);
            }
            raw_delim += '"';
            state = State::Raw;
          } else {
            state = State::String;
          }
          line.code += '"';
        } else if (c == '\'') {
          state = State::Char;
          line.code += '\'';
        } else {
          line.code += c;
        }
        break;
      case State::LineComment:
        if (c == '\n') {
          state = State::Code;
        } else {
          line.comment += c;
        }
        break;
      case State::BlockComment:
        if (c == '*' && i + 1 < content.size() && content[i + 1] == '/') {
          state = State::Code;
          ++i;
          line.raw += '/';
        } else if (c != '\n') {
          line.comment += c;
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
          if (content[i] != '\n') line.raw += content[i];
        } else if (c == '"') {
          state = State::Code;
          line.code += '"';
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < content.size()) {
          ++i;
          if (content[i] != '\n') line.raw += content[i];
        } else if (c == '\'') {
          state = State::Code;
          line.code += '\'';
        }
        break;
      case State::Raw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          line.raw += raw_delim.substr(1);
          line.code += '"';
          state = State::Code;
        }
        break;
    }
    if (c == '\n') lines.emplace_back();
    ++i;
  }
  return lines;
}

// ---------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Position of `token` in `code` with identifier boundaries on both
/// sides, from `from`; npos when absent.
std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    if (pos > 0 && ident_char(code[pos - 1])) continue;
    std::size_t end = pos + token.size();
    if (end < code.size() && ident_char(code[end])) continue;
    return pos;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  return pos;
}

std::string trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

bool path_in(const std::string& path, const std::string& dir) {
  // Matches "src/<dir>/..." whether `path` is absolute or relative.
  std::string needle = "/" + dir + "/";
  if (path.find(needle) != std::string::npos) return true;
  return path.rfind(dir + "/", 0) == 0;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {
      "raw-sync",         "detach",           "net-blocking",
      "layering",         "raw-new",          "lock-order",
      "reactor-blocking", "undeclared-mutex", "held-over-call",
      "lock-cycle",
  };
  return rules;
}

/// The level table, indexed both by level name and by enumerator, built
/// once from the X-macro in src/util/lock_levels.hpp.
struct Levels {
  std::map<std::string, int> rank;             // "db.store.shard" -> 40
  std::map<std::string, std::string> by_enum;  // "kDbStoreShard" -> name
};

const Levels& levels() {
  static const Levels table = [] {
    Levels out;
    for (const auto& info : util::kLockLevels) {
      out.rank[info.name] = info.rank;
    }
#define CLARENS_LINT_LEVEL_ENUM__(name, str, rank_, doc) \
  out.by_enum[#name] = str;
    CLARENS_LOCK_LEVEL_LIST(CLARENS_LINT_LEVEL_ENUM__)
#undef CLARENS_LINT_LEVEL_ENUM__
    return out;
  }();
  return table;
}

/// The annotated-wrapper layer itself: its constructors and lock()
/// bodies are the mechanism, not users of it, so the lock-discipline
/// scans skip these two files.
bool sync_layer_file(const std::string& path) {
  return path_ends_with(path, "util/sync.hpp") ||
         path_ends_with(path, "util/sync.cpp") ||
         path_ends_with(path, "util/lock_levels.hpp");
}

// ---------------------------------------------------------------------
// The allow() escape hatch.
// ---------------------------------------------------------------------

struct Allows {
  /// line -> rules suppressed on that line.
  std::map<int, std::set<std::string>> by_line;
  std::vector<Violation> bad;

  bool suppressed(const Violation& violation) const {
    auto it = by_line.find(violation.line);
    return it != by_line.end() && it->second.count(violation.rule) > 0;
  }
};

Allows collect_allows(const std::string& path,
                      const std::vector<LineInfo>& lines) {
  Allows allows;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string comment = trim(lines[n].comment);
    if (comment.rfind("clarens-lint:", 0) != 0) continue;
    int line = static_cast<int>(n) + 1;
    std::size_t pos = skip_spaces(comment, std::string("clarens-lint:").size());
    if (comment.compare(pos, 6, "allow(") != 0) {
      allows.bad.push_back({path, line, "bad-allow",
                            "expected `clarens-lint: allow(<rule>): "
                            "<justification>`"});
      continue;
    }
    std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
      allows.bad.push_back({path, line, "bad-allow", "unclosed allow("});
      continue;
    }
    std::string rule = trim(comment.substr(pos + 6, close - pos - 6));
    if (!known_rules().count(rule)) {
      allows.bad.push_back(
          {path, line, "bad-allow", "unknown rule '" + rule + "'"});
      continue;
    }
    std::size_t just = skip_spaces(comment, close + 1);
    if (just >= comment.size() || comment[just] != ':' ||
        trim(comment.substr(just + 1)).empty()) {
      allows.bad.push_back({path, line, "bad-allow",
                            "allow(" + rule +
                                ") needs a justification: `allow(" + rule +
                                "): <why>`"});
      continue;
    }
    // The pragma covers its own line and the line below it.
    allows.by_line[line].insert(rule);
    allows.by_line[line + 1].insert(rule);
  }
  return allows;
}

// ---------------------------------------------------------------------
// Per-line rules (unchanged from the original structural set).
// ---------------------------------------------------------------------

void check_raw_sync(const std::string& path, const std::vector<LineInfo>& lines,
                    std::vector<Violation>& out) {
  // The wrapper layer is the only home for raw primitives.
  if (path_ends_with(path, "util/sync.hpp")) return;
  static const char* kTokens[] = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::thread",         "std::jthread",
  };
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      if (std::string(token) == "std::thread") {
        // std::thread::id / std::thread::hardware_concurrency are types
        // and constants, not thread ownership.
        std::size_t after = pos + std::string(token).size();
        if (code.compare(after, 2, "::") == 0) continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-sync",
                     std::string(token) +
                         " outside src/util/sync.hpp; use the annotated "
                         "util:: wrappers"});
    }
  }
}

void check_detach(const std::string& path, const std::vector<LineInfo>& lines,
                  std::vector<Violation>& out) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (std::size_t pos = find_token(code, "detach"); pos != std::string::npos;
         pos = find_token(code, "detach", pos + 1)) {
      std::size_t after = skip_spaces(code, pos + 6);
      if (after < code.size() && code[after] == '(') {
        out.push_back({path, static_cast<int>(n) + 1, "detach",
                       "detached threads race teardown; keep the handle "
                       "and join it (util::Thread has no detach)"});
      }
    }
  }
}

void check_net_blocking(const std::string& path,
                        const std::vector<LineInfo>& lines,
                        std::vector<Violation>& out) {
  if (!path_in(path, "net")) return;
  static const char* kTokens[] = {"sleep_for", "sleep_until", "usleep",
                                  "nanosleep", "sleep"};
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    bool hit = false;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      std::size_t after = skip_spaces(code, pos + std::string(token).size());
      if (after < code.size() && code[after] == '(') {
        out.push_back({path, static_cast<int>(n) + 1, "net-blocking",
                       std::string(token) +
                           "() blocks the reactor thread; every connection "
                           "stalls behind it"});
        hit = true;
        break;
      }
    }
    if (!hit && code.find("std::this_thread") != std::string::npos) {
      out.push_back({path, static_cast<int>(n) + 1, "net-blocking",
                     "std::this_thread in reactor code is a blocking "
                     "smell; the reactor must never wait"});
    }
  }
}

void check_reactor_blocking(const std::string& path,
                            const std::vector<LineInfo>& lines,
                            std::vector<Violation>& out) {
  // The reactor thread services every connection, and with inline
  // dispatch it also runs handlers; one blocking wait in the transport
  // stack stalls all of them. Blocking primitives in src/net, src/http
  // and src/tls must carry an allow() naming the thread that may
  // legitimately park there (identifier-boundary matching keeps
  // epoll_wait and joinable out of scope).
  if (!path_in(path, "net") && !path_in(path, "http") &&
      !path_in(path, "tls")) {
    return;
  }
  static const char* kTokens[] = {
      "wait_writable", "wait_idle",   "wait_for", "wait_until",
      "wait",          "join",        "sleep_for", "sleep_until",
      "usleep",        "nanosleep",   "sleep",
  };
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (const char* token : kTokens) {
      std::size_t pos = find_token(code, token);
      if (pos == std::string::npos) continue;
      std::size_t after = skip_spaces(code, pos + std::string(token).size());
      if (after >= code.size() || code[after] != '(') continue;
      out.push_back({path, static_cast<int>(n) + 1, "reactor-blocking",
                     std::string(token) +
                         "() can block; reactor-owned code must stay "
                         "non-blocking — if this call never runs on the "
                         "reactor thread, say so with allow(reactor-"
                         "blocking)"});
      break;  // one finding per line is enough to demand the annotation
    }
  }
}

void check_layering(const std::string& path, const std::vector<LineInfo>& lines,
                    std::vector<Violation>& out) {
  // Two scoped cases:
  //  * rpc/ and util/ sit below http/ and core/ and may include neither;
  //  * federation/ sits beside core/ (it depends on client, discovery
  //    and rpc) and must never reach into core internals — the head's
  //    method bindings in core depend on federation, not the reverse.
  struct Scope {
    const char* dir;
    std::vector<const char*> banned;
    const char* why;
  };
  static const Scope kScopes[] = {
      {"rpc",
       {"core/", "http/"},
       "dependency direction is util <- rpc <- http <- core; this layer "
       "must not include "},
      {"util",
       {"core/", "http/"},
       "dependency direction is util <- rpc <- http <- core; this layer "
       "must not include "},
      {"federation",
       {"core/"},
       "federation depends on client/discovery/rpc, never core internals; "
       "this layer must not include "},
  };
  for (const Scope& scope : kScopes) {
    if (!path_in(path, scope.dir)) continue;
    for (std::size_t n = 0; n < lines.size(); ++n) {
      const std::string& raw = lines[n].raw;
      std::size_t pos = skip_spaces(raw, 0);
      if (pos >= raw.size() || raw[pos] != '#') continue;
      pos = skip_spaces(raw, pos + 1);
      if (raw.compare(pos, 7, "include") != 0) continue;
      pos = skip_spaces(raw, pos + 7);
      if (pos >= raw.size() || raw[pos] != '"') continue;
      for (const char* layer : scope.banned) {
        if (raw.compare(pos + 1, std::string(layer).size(), layer) == 0) {
          out.push_back({path, static_cast<int>(n) + 1, "layering",
                         scope.why + std::string(layer)});
        }
      }
    }
  }
}

void check_raw_new(const std::string& path, const std::vector<LineInfo>& lines,
                   std::vector<Violation>& out) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (std::size_t pos = find_token(code, "new"); pos != std::string::npos;
         pos = find_token(code, "new", pos + 1)) {
      std::size_t after = skip_spaces(code, pos + 3);
      // Placement new (`new (arena) T`) is the sanctioned form.
      if (after < code.size() && code[after] == '(') continue;
      // `operator new` declarations describe allocation, don't perform it.
      std::size_t before = code.find_last_not_of(" \t", pos == 0 ? 0 : pos - 1);
      if (before != std::string::npos && before >= 7 &&
          code.compare(before - 7, 8, "operator") == 0) {
        continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-new",
                     "bare new; own memory via containers or "
                     "std::make_unique/std::make_shared"});
    }
    for (std::size_t pos = find_token(code, "delete"); pos != std::string::npos;
         pos = find_token(code, "delete", pos + 1)) {
      // `= delete` (deleted functions) and `operator delete`.
      std::size_t before =
          pos == 0 ? std::string::npos : code.find_last_not_of(" \t", pos - 1);
      if (before != std::string::npos && code[before] == '=') continue;
      if (before != std::string::npos && before >= 7 &&
          code.compare(before - 7, 8, "operator") == 0) {
        continue;
      }
      out.push_back({path, static_cast<int>(n) + 1, "raw-new",
                     "bare delete; the matching allocation should live in "
                     "a smart pointer"});
    }
  }
}

// ---------------------------------------------------------------------
// Lock-graph machinery: mutex declarations, guard scopes, edges.
// ---------------------------------------------------------------------

/// A declared edge in the global lock graph, in level-name terms.
struct LevelEdge {
  std::string outer;
  std::string inner;
  std::string file;
  int line = 0;
  bool same_rank = false;  ///< carried a SameRankToken / (same-rank) tag
};

/// Per-file result of the structural scan.
struct FileScan {
  std::map<std::string, std::string> decls;  ///< var -> level ("?" ambiguous)
  struct VarEdge {
    std::string outer;  ///< mutex variable of the enclosing guard
    std::string inner;  ///< mutex variable of the nested guard
    int line = 0;
    bool same_rank = false;  ///< nested guard passed a SameRankToken
  };
  std::vector<VarEdge> var_edges;
  std::vector<LevelEdge> comment_edges;  ///< validated lock-order comments
};

/// Joins the code view from (line n, position pos) forward, for parsing
/// balanced groups that wrap across lines. Newlines become spaces.
std::string joined_code(const std::vector<LineInfo>& lines, std::size_t n,
                        std::size_t pos, std::size_t max_lines = 8) {
  std::string out = lines[n].code.substr(pos);
  for (std::size_t k = n + 1; k < lines.size() && k < n + max_lines; ++k) {
    out += ' ';
    out += lines[k].code;
  }
  return out;
}

/// The balanced (...) group's contents: `text[start]` must be the open
/// delimiter. Empty when unbalanced within the joined window.
std::string group_contents(const std::string& text, std::size_t start,
                           char open, char close) {
  if (start >= text.size() || text[start] != open) return "";
  int depth = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    if (text[i] == open) ++depth;
    if (text[i] == close && --depth == 0) {
      return text.substr(start + 1, i - start - 1);
    }
  }
  return "";
}

/// Trailing identifier of a lock expression: `shard.mutex` -> "mutex",
/// `conn->mutex` -> "mutex", `mutex_` -> "mutex_".
std::string last_ident(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && !ident_char(expr[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(expr[begin - 1])) --begin;
  return expr.substr(begin, end - begin);
}

/// First top-level comma-separated argument of an argument list.
std::string first_argument(const std::string& args) {
  int depth = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    char c = args[i];
    if (c == '(' || c == '{' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '}' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) return args.substr(0, i);
  }
  return args;
}

/// Scans `path` for util::Mutex / util::SharedMutex declarations
/// (undeclared-mutex rule) and builds the var -> level map; then walks
/// guard scopes to derive nesting edges and held-over-call violations.
FileScan scan_lock_graph(const std::string& path,
                         const std::vector<LineInfo>& lines,
                         std::vector<Violation>& out) {
  FileScan scan;
  if (sync_layer_file(path)) return scan;

  // --- Pass 1: mutex declarations -------------------------------------
  static const char* kMutexTokens[] = {"Mutex", "SharedMutex"};
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    for (const char* token : kMutexTokens) {
      for (std::size_t pos = find_token(code, token);
           pos != std::string::npos;
           pos = find_token(code, token, pos + 1)) {
        // A declaration is `[util::]Mutex <ident> ...`; anything else
        // (reference/pointer parameters, class definitions in the sync
        // layer, template arguments) has no identifier right after.
        std::size_t after = skip_spaces(code, pos + std::string(token).size());
        if (after >= code.size() || !ident_char(code[after]) ||
            std::isdigit(static_cast<unsigned char>(code[after]))) {
          continue;
        }
        std::size_t vend = after;
        while (vend < code.size() && ident_char(code[vend])) ++vend;
        std::string var = code.substr(after, vend - after);
        int line = static_cast<int>(n) + 1;
        std::size_t init = skip_spaces(code, vend);
        if (init >= code.size() || code[init] != '{') {
          out.push_back(
              {path, line, "undeclared-mutex",
               "util::" + std::string(token) + " '" + var +
                   "' does not declare its hierarchy level; construct as "
                   "util::" + std::string(token) +
                   " " + var + "{util::LockLevel::k...} "
                   "(see src/util/lock_levels.hpp)"});
          continue;
        }
        std::string body =
            group_contents(joined_code(lines, n, init), 0, '{', '}');
        std::size_t lpos = body.find("LockLevel::");
        if (lpos == std::string::npos) {
          out.push_back({path, line, "undeclared-mutex",
                         "util::" + std::string(token) + " '" + var +
                             "' initializer does not name a "
                             "util::LockLevel"});
          continue;
        }
        std::size_t estart = lpos + std::string("LockLevel::").size();
        std::size_t eend = estart;
        while (eend < body.size() && ident_char(body[eend])) ++eend;
        std::string enumerator = body.substr(estart, eend - estart);
        auto it = levels().by_enum.find(enumerator);
        if (it == levels().by_enum.end()) {
          out.push_back({path, line, "undeclared-mutex",
                         "unknown lock level 'LockLevel::" + enumerator +
                             "'; add it to src/util/lock_levels.hpp"});
          continue;
        }
        auto [slot, inserted] = scan.decls.emplace(var, it->second);
        if (!inserted && slot->second != it->second) {
          slot->second = "?";  // same name, different levels: ambiguous
        }
      }
    }
  }

  // --- Pass 2: guard scopes, derived edges, blocking calls -------------
  struct Guard {
    std::string var;
    int depth = 0;
    int line = 0;
  };
  struct Event {
    std::size_t pos = 0;
    enum Kind { kGuard, kRequires, kBlocking } kind = kGuard;
    std::string var;                 // kGuard: mutex variable
    bool same_rank = false;          // kGuard: SameRankToken present
    std::vector<std::string> vars;   // kRequires
    const char* blocking = nullptr;  // kBlocking
  };
  static const char* kGuardTokens[] = {"LockGuard", "UniqueLock", "WriteLock",
                                       "ReadLock"};
  static const char* kRequireTokens[] = {"CLARENS_REQUIRES",
                                         "CLARENS_REQUIRES_SHARED"};
  // Blocking operations that must never run under a lock: network
  // round-trips, durability syscalls, connection setup, zero-copy sends
  // and deliberate sleeps. (CondVar waits are absent by design — parking
  // on a condvar under its mutex is the one sanctioned blocking wait.)
  static const char* kBlockingTokens[] = {
      "roundtrip", "fdatasync",  "fsync",     "connect", "sendfile",
      "sleep_for", "sleep_until", "usleep",   "nanosleep", "sleep",
  };

  std::vector<Guard> active;
  std::vector<std::string> pending_requires;
  int depth = 0;

  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    int line = static_cast<int>(n) + 1;
    std::vector<Event> events;

    for (const char* token : kGuardTokens) {
      for (std::size_t pos = find_token(code, token);
           pos != std::string::npos;
           pos = find_token(code, token, pos + 1)) {
        std::size_t after = skip_spaces(code, pos + std::string(token).size());
        if (after >= code.size() || !ident_char(code[after])) continue;
        std::size_t vend = after;
        while (vend < code.size() && ident_char(code[vend])) ++vend;
        std::size_t paren = skip_spaces(code, vend);
        std::string joined = joined_code(lines, n, paren);
        std::string args = group_contents(joined, 0, '(', ')');
        if (args.empty()) continue;
        Event event;
        event.pos = pos;
        event.kind = Event::kGuard;
        event.var = last_ident(first_argument(args));
        event.same_rank = args.find("SameRankToken") != std::string::npos;
        if (!event.var.empty()) events.push_back(std::move(event));
      }
    }
    for (const char* token : kRequireTokens) {
      for (std::size_t pos = find_token(code, token);
           pos != std::string::npos;
           pos = find_token(code, token, pos + 1)) {
        std::size_t paren = skip_spaces(code, pos + std::string(token).size());
        std::string joined = joined_code(lines, n, paren);
        std::string args = group_contents(joined, 0, '(', ')');
        if (args.empty()) continue;
        Event event;
        event.pos = pos;
        event.kind = Event::kRequires;
        std::size_t start = 0;
        while (start <= args.size()) {
          std::size_t comma = args.find(',', start);
          std::string arg = last_ident(
              args.substr(start, comma == std::string::npos ? std::string::npos
                                                            : comma - start));
          if (!arg.empty()) event.vars.push_back(arg);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        if (!event.vars.empty()) events.push_back(std::move(event));
      }
    }
    for (const char* token : kBlockingTokens) {
      for (std::size_t pos = find_token(code, token);
           pos != std::string::npos;
           pos = find_token(code, token, pos + 1)) {
        std::size_t after = skip_spaces(code, pos + std::string(token).size());
        if (after >= code.size() || code[after] != '(') continue;
        Event event;
        event.pos = pos;
        event.kind = Event::kBlocking;
        event.blocking = token;
        events.push_back(std::move(event));
        break;  // one finding per line per token family is enough
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.pos < b.pos; });

    std::size_t next_event = 0;
    for (std::size_t i = 0; i <= code.size(); ++i) {
      while (next_event < events.size() && events[next_event].pos == i) {
        const Event& event = events[next_event++];
        switch (event.kind) {
          case Event::kGuard:
            if (!active.empty()) {
              scan.var_edges.push_back(
                  {active.back().var, event.var, line, event.same_rank});
            }
            active.push_back({event.var, depth, line});
            break;
          case Event::kRequires:
            pending_requires = event.vars;
            break;
          case Event::kBlocking:
            if (!active.empty()) {
              out.push_back(
                  {path, line, "held-over-call",
                   std::string(event.blocking) +
                       "() blocks while holding '" + active.back().var +
                       "' (guard since line " +
                       std::to_string(active.back().line) +
                       "); every other acquirer convoys behind the "
                       "syscall — release the lock first"});
            }
            break;
        }
      }
      if (i == code.size()) break;
      char c = code[i];
      if (c == '{') {
        ++depth;
        if (!pending_requires.empty()) {
          // A CLARENS_REQUIRES function body: the listed locks are held
          // for the whole body, exactly like a guard opened here.
          for (const std::string& var : pending_requires) {
            if (!active.empty()) {
              scan.var_edges.push_back({active.back().var, var, line, false});
            }
            active.push_back({var, depth, line});
          }
          pending_requires.clear();
        }
      } else if (c == '}') {
        --depth;
        while (!active.empty() && active.back().depth > depth) {
          active.pop_back();
        }
      } else if (c == ';' && !pending_requires.empty()) {
        pending_requires.clear();  // prototype, not a definition
      }
    }
  }
  return scan;
}

/// Validates `// lock-order:` comments against the hierarchy and
/// collects the declared edges for the global graph. A `(same-rank)`
/// suffix documents a tokened same-rank edge (legal only when the ranks
/// really are equal).
void check_lock_order_comments(const std::string& path,
                               const std::vector<LineInfo>& lines,
                               FileScan& scan, std::vector<Violation>& out) {
  const std::map<std::string, int>& rank = levels().rank;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    std::string comment = trim(lines[n].comment);
    if (comment.rfind("lock-order:", 0) != 0) continue;
    int line = static_cast<int>(n) + 1;
    std::string spec = trim(comment.substr(std::string("lock-order:").size()));
    bool same_rank = false;
    const std::string kSameRankTag = "(same-rank)";
    if (spec.size() >= kSameRankTag.size() &&
        spec.compare(spec.size() - kSameRankTag.size(), kSameRankTag.size(),
                     kSameRankTag) == 0) {
      same_rank = true;
      spec = trim(spec.substr(0, spec.size() - kSameRankTag.size()));
    }
    std::size_t arrow = spec.find("->");
    if (arrow == std::string::npos) {
      out.push_back({path, line, "lock-order",
                     "malformed declaration; expected `lock-order: "
                     "<outer> -> <inner>`"});
      continue;
    }
    std::string outer = trim(spec.substr(0, arrow));
    std::string inner = trim(spec.substr(arrow + 2));
    bool ok = true;
    for (const std::string& level : {outer, inner}) {
      if (!rank.count(level)) {
        out.push_back({path, line, "lock-order",
                       "unknown lock level '" + level +
                           "'; declare it in the hierarchy table "
                           "(src/util/lock_levels.hpp)"});
        ok = false;
      }
    }
    if (!ok) continue;
    int outer_rank = rank.at(outer);
    int inner_rank = rank.at(inner);
    if (same_rank) {
      if (outer_rank != inner_rank) {
        out.push_back({path, line, "lock-order",
                       "'" + outer + "' -> '" + inner +
                           "' is tagged (same-rank) but the ranks differ (" +
                           std::to_string(outer_rank) + " vs " +
                           std::to_string(inner_rank) + ")"});
        continue;
      }
    } else if (outer_rank >= inner_rank) {
      out.push_back({path, line, "lock-order",
                     "'" + outer + "' -> '" + inner +
                         "' inverts the declared hierarchy (" + outer +
                         " rank " + std::to_string(outer_rank) + ", " + inner +
                         " rank " + std::to_string(inner_rank) +
                         "); deadlock risk"});
      continue;
    }
    scan.comment_edges.push_back({outer, inner, path, line, same_rank});
  }
}

// ---------------------------------------------------------------------
// The tree-wide pass: resolve variable edges to levels, check derived
// edges against the ranks, and run cycle detection over the merged
// global graph.
// ---------------------------------------------------------------------

std::string paired_path(const std::string& path) {
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".cpp") == 0) {
    return path.substr(0, path.size() - 4) + ".hpp";
  }
  if (path.size() > 4 && path.compare(path.size() - 4, 4, ".hpp") == 0) {
    return path.substr(0, path.size() - 4) + ".cpp";
  }
  return "";
}

struct GraphInput {
  std::string path;
  FileScan scan;
};

void run_graph_pass(const std::vector<GraphInput>& inputs,
                    std::map<std::string, std::vector<Violation>>& per_file) {
  const std::map<std::string, int>& rank = levels().rank;

  // Declaration index: per file, and globally for unambiguous names.
  std::map<std::string, const std::map<std::string, std::string>*> file_decls;
  std::map<std::string, std::set<std::string>> global;
  for (const GraphInput& input : inputs) {
    file_decls[input.path] = &input.scan.decls;
    for (const auto& [var, level] : input.scan.decls) {
      if (level != "?") global[var].insert(level);
    }
  }
  auto resolve = [&](const std::string& path,
                     const std::string& var) -> std::optional<std::string> {
    auto in = [&](const std::string& p) -> std::optional<std::string> {
      auto fit = file_decls.find(p);
      if (fit == file_decls.end()) return std::nullopt;
      auto vit = fit->second->find(var);
      if (vit == fit->second->end() || vit->second == "?") return std::nullopt;
      return vit->second;
    };
    if (auto hit = in(path)) return hit;
    std::string pair = paired_path(path);
    if (!pair.empty()) {
      if (auto hit = in(pair)) return hit;
    }
    auto git = global.find(var);
    if (git != global.end() && git->second.size() == 1) {
      return *git->second.begin();
    }
    return std::nullopt;
  };

  // Merge edges: derived (rank-checked here) + comment (already checked).
  std::vector<LevelEdge> edges;
  for (const GraphInput& input : inputs) {
    for (const FileScan::VarEdge& edge : input.scan.var_edges) {
      std::optional<std::string> outer = resolve(input.path, edge.outer);
      std::optional<std::string> inner = resolve(input.path, edge.inner);
      if (!outer || !inner) continue;
      int outer_rank = rank.at(*outer);
      int inner_rank = rank.at(*inner);
      if (!edge.same_rank && outer_rank > inner_rank) {
        per_file[input.path].push_back(
            {input.path, edge.line, "lock-order",
             "nested acquisition '" + *outer + "' -> '" + *inner +
                 "' inverts the declared hierarchy (" + *outer + " rank " +
                 std::to_string(outer_rank) + ", " + *inner + " rank " +
                 std::to_string(inner_rank) + "); deadlock risk"});
      } else if (!edge.same_rank && outer_rank == inner_rank) {
        per_file[input.path].push_back(
            {input.path, edge.line, "lock-order",
             "same-rank nested acquisition '" + *outer + "' -> '" + *inner +
                 "' (both rank " + std::to_string(outer_rank) +
                 ") needs an explicit util::SameRankToken at the call "
                 "site"});
      }
      if (*outer != *inner) {
        edges.push_back({*outer, *inner, input.path, edge.line,
                         edge.same_rank});
      }
    }
    for (const LevelEdge& edge : input.scan.comment_edges) {
      if (edge.outer != edge.inner) edges.push_back(edge);
    }
  }

  // Cycle detection over the merged graph. SameRankToken / (same-rank)
  // edges stay IN the graph: each one is locally justified, but two
  // tokened edges in opposite directions across different files are a
  // deadlock no per-edge check can see — catching exactly that is this
  // rule's reason to exist.
  std::map<std::string, std::map<std::string, const LevelEdge*>> adjacency;
  for (const LevelEdge& edge : edges) {
    adjacency[edge.outer].emplace(edge.inner, &edge);
  }
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto it = adjacency.find(node);
        if (it != adjacency.end()) {
          for (const auto& [next, edge] : it->second) {
            if (color[next] == 1) {
              // Back edge: the cycle is stack[pos(next)..] + this edge.
              auto begin =
                  std::find(stack.begin(), stack.end(), next);
              std::vector<std::string> cycle(begin, stack.end());
              std::vector<std::string> canon = cycle;
              std::rotate(canon.begin(),
                          std::min_element(canon.begin(), canon.end()),
                          canon.end());
              std::string key;
              for (const std::string& name : canon) key += name + ";";
              if (!reported.insert(key).second) continue;
              std::ostringstream chain;
              std::ostringstream sites;
              for (std::size_t i = 0; i < cycle.size(); ++i) {
                const std::string& from = cycle[i];
                const std::string& to = cycle[(i + 1) % cycle.size()];
                const LevelEdge* hop = adjacency.at(from).at(to);
                chain << from << " -> ";
                sites << (i ? ", " : "") << from << "->" << to << " ("
                      << hop->file << ":" << hop->line << ")";
              }
              chain << cycle.front();
              per_file[edge->file].push_back(
                  {edge->file, edge->line, "lock-cycle",
                   "cycle in the global lock graph: " + chain.str() +
                       "; edges: " + sites.str() +
                       " — some interleaving of these acquisitions "
                       "deadlocks"});
            } else if (color[next] == 0) {
              visit(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, _] : adjacency) {
    if (color[node] == 0) visit(node);
  }
}

}  // namespace

const std::vector<std::pair<std::string, int>>& lock_hierarchy() {
  // Generated from src/util/lock_levels.hpp — the same single source the
  // runtime detector and the docs table use.
  static const std::vector<std::pair<std::string, int>> hierarchy = [] {
    std::vector<std::pair<std::string, int>> out;
    for (const auto& info : util::kLockLevels) {
      out.emplace_back(info.name, info.rank);
    }
    return out;
  }();
  return hierarchy;
}

std::string lock_table_markdown() {
  std::ostringstream out;
  out << "| level | rank | guards |\n";
  out << "|-------|------|--------|\n";
  for (const auto& info : util::kLockLevels) {
    out << "| `" << info.name << "` | " << info.rank << " | " << info.doc
        << " |\n";
  }
  return out.str();
}

std::string format(const Violation& violation) {
  std::ostringstream out;
  out << violation.file << ":" << violation.line << ": " << violation.rule
      << ": " << violation.message;
  return out.str();
}

std::vector<Violation> lint_sources(const std::vector<SourceFile>& files) {
  struct FileState {
    Allows allows;
    std::vector<Violation> found;
  };
  std::map<std::string, FileState> states;
  std::vector<GraphInput> graph_inputs;

  for (const SourceFile& file : files) {
    std::vector<LineInfo> lines = lex(file.content);
    FileState& state = states[file.path];
    state.allows = collect_allows(file.path, lines);
    check_raw_sync(file.path, lines, state.found);
    check_detach(file.path, lines, state.found);
    check_net_blocking(file.path, lines, state.found);
    check_reactor_blocking(file.path, lines, state.found);
    check_layering(file.path, lines, state.found);
    check_raw_new(file.path, lines, state.found);
    GraphInput input;
    input.path = file.path;
    input.scan = scan_lock_graph(file.path, lines, state.found);
    check_lock_order_comments(file.path, lines, input.scan, state.found);
    // An allow(lock-order) on a derived edge means "this lexical nesting
    // is not a real acquisition edge" (lambda bodies, death-test
    // fixtures), so it must leave the global cycle graph too — not just
    // mute the per-edge report.
    auto& var_edges = input.scan.var_edges;
    var_edges.erase(
        std::remove_if(var_edges.begin(), var_edges.end(),
                       [&](const FileScan::VarEdge& edge) {
                         auto it = state.allows.by_line.find(edge.line);
                         return it != state.allows.by_line.end() &&
                                it->second.count("lock-order") > 0;
                       }),
        var_edges.end());
    graph_inputs.push_back(std::move(input));
  }

  std::map<std::string, std::vector<Violation>> graph_violations;
  run_graph_pass(graph_inputs, graph_violations);
  for (auto& [path, found] : graph_violations) {
    auto it = states.find(path);
    if (it == states.end()) continue;
    for (Violation& violation : found) {
      it->second.found.push_back(std::move(violation));
    }
  }

  std::vector<Violation> out;
  for (auto& [path, state] : states) {
    for (Violation& violation : state.allows.bad) {
      out.push_back(std::move(violation));
    }
    for (Violation& violation : state.found) {
      if (state.allows.suppressed(violation)) continue;
      out.push_back(std::move(violation));
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::vector<Violation> lint_content(const std::string& path,
                                    const std::string& content) {
  return lint_sources({{path, content}});
}

std::vector<Violation> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_content(path, buffer.str());
}

std::vector<Violation> lint_roots(const std::vector<std::string>& roots) {
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    if (fs::is_regular_file(root)) {
      paths.push_back(root);
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp") {
        paths.push_back(entry.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  std::vector<SourceFile> files;
  std::vector<Violation> out;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      out.push_back({path, 0, "io", "cannot open file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({path, buffer.str()});
  }
  std::vector<Violation> found = lint_sources(files);
  out.insert(out.end(), found.begin(), found.end());
  return out;
}

std::vector<Violation> lint_tree(const std::string& root) {
  return lint_roots({root});
}

}  // namespace clarens::lint
