// Structural linter driver; see tools/lint/lint.hpp for the rule set.
//
// Usage: clarens_lint <file-or-directory>...
// Prints `file:line: rule-id: message` per violation; exit 1 when any.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: clarens_lint <file-or-directory>...\n");
    std::fprintf(stderr, "\nlock hierarchy (outer rank < inner rank):\n");
    for (const auto& [level, rank] : clarens::lint::lock_hierarchy()) {
      std::fprintf(stderr, "  %-22s %d\n", level.c_str(), rank);
    }
    return 2;
  }
  std::size_t total = 0;
  for (int i = 1; i < argc; ++i) {
    for (const auto& violation : clarens::lint::lint_tree(argv[i])) {
      std::printf("%s\n", clarens::lint::format(violation).c_str());
      ++total;
    }
  }
  if (total) {
    std::fprintf(stderr, "clarens_lint: %zu violation(s)\n", total);
    return 1;
  }
  return 0;
}
