// Structural linter driver; see tools/lint/lint.hpp for the rule set.
//
// Usage:
//   clarens_lint <file-or-directory>...   lint the trees together (one
//                                         merged lock graph); exit 1 on
//                                         any violation
//   clarens_lint --lock-table             print the markdown rank table
//                                         generated from
//                                         src/util/lock_levels.hpp
//   clarens_lint --check-lock-doc <doc>   diff the generated table
//                                         against the block between the
//                                         CLARENS_LOCK_TABLE markers in
//                                         <doc>; exit 1 on drift

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

constexpr const char* kBeginMarker = "<!-- CLARENS_LOCK_TABLE:BEGIN -->";
constexpr const char* kEndMarker = "<!-- CLARENS_LOCK_TABLE:END -->";

int check_lock_doc(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "clarens_lint: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string doc = buffer.str();
  std::size_t begin = doc.find(kBeginMarker);
  std::size_t end = doc.find(kEndMarker);
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    std::fprintf(stderr,
                 "clarens_lint: %s: missing %s / %s markers around the "
                 "lock table\n",
                 path.c_str(), kBeginMarker, kEndMarker);
    return 1;
  }
  begin = doc.find('\n', begin);
  if (begin == std::string::npos || begin + 1 > end) {
    std::fprintf(stderr, "clarens_lint: %s: malformed marker block\n",
                 path.c_str());
    return 1;
  }
  std::string embedded = doc.substr(begin + 1, end - begin - 1);
  std::string generated = clarens::lint::lock_table_markdown();
  if (embedded == generated) return 0;
  std::fprintf(stderr,
               "clarens_lint: %s: lock table drifted from "
               "src/util/lock_levels.hpp\n",
               path.c_str());
  // Line-by-line diff so the drift is obvious in the test log.
  std::istringstream have(embedded);
  std::istringstream want(generated);
  std::string have_line;
  std::string want_line;
  while (true) {
    bool have_more = static_cast<bool>(std::getline(have, have_line));
    bool want_more = static_cast<bool>(std::getline(want, want_line));
    if (!have_more && !want_more) break;
    if (!have_more) have_line.clear();
    if (!want_more) want_line.clear();
    if (have_line != want_line) {
      std::fprintf(stderr, "  doc:       %s\n", have_line.c_str());
      std::fprintf(stderr, "  generated: %s\n", want_line.c_str());
    }
  }
  std::fprintf(stderr,
               "  regenerate with: clarens_lint --lock-table (paste "
               "between the markers)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--lock-table") {
    std::printf("%s", clarens::lint::lock_table_markdown().c_str());
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "--check-lock-doc") {
    if (argc != 3) {
      std::fprintf(stderr, "usage: clarens_lint --check-lock-doc <doc.md>\n");
      return 2;
    }
    return check_lock_doc(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: clarens_lint <file-or-directory>...\n"
                 "       clarens_lint --lock-table\n"
                 "       clarens_lint --check-lock-doc <doc.md>\n");
    std::fprintf(stderr, "\nlock hierarchy (outer rank < inner rank):\n");
    for (const auto& [level, rank] : clarens::lint::lock_hierarchy()) {
      std::fprintf(stderr, "  %-24s %d\n", level.c_str(), rank);
    }
    return 2;
  }
  // All roots go through one lint_roots call so the lock graph merges
  // across them (a cycle half in src/ and half in tools/ is still a
  // cycle).
  std::vector<std::string> roots(argv + 1, argv + argc);
  std::size_t total = 0;
  for (const auto& violation : clarens::lint::lint_roots(roots)) {
    std::printf("%s\n", clarens::lint::format(violation).c_str());
    ++total;
  }
  if (total) {
    std::fprintf(stderr, "clarens_lint: %zu violation(s)\n", total);
    return 1;
  }
  return 0;
}
