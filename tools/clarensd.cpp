// clarensd — the standalone Clarens server daemon.
//
// Usage: clarensd <config-file>
//
// Loads the configuration (see src/core/config_loader.hpp for the keys),
// starts the server, optionally wires a discovery station/SRM backend,
// and runs until SIGINT/SIGTERM.
//
// A minimal deployment:
//   clarens_keygen ca "/O=site.org/CN=Site CA" ca.cred
//   clarens_keygen server ca.cred "/O=site.org/OU=Services/CN=host/node1" server.cred
//   clarens_keygen export-cert ca.cred ca.cert
//   cat > clarens.conf <<EOF
//   port 8080
//   credential_file server.cred
//   trust_file ca.cert
//   admin /O=site.org/OU=People/CN=Admin
//   allow system *
//   EOF
//   clarensd clarens.conf
#include <csignal>
#include <cstdio>
#include <semaphore>

#include "core/config_loader.hpp"
#include "core/server.hpp"
#include "util/logging.hpp"

namespace {

std::binary_semaphore g_shutdown(0);

void handle_signal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: clarensd <config-file>\n");
    return 2;
  }
  clarens::util::set_log_level(clarens::util::LogLevel::Info);
  try {
    clarens::core::ClarensConfig config =
        clarens::core::load_config_file(argv[1]);
    clarens::core::ClarensServer server(std::move(config));
    server.start();
    std::printf("clarensd: serving at %s (%zu methods)\n",
                server.url().c_str(), server.registry().size());
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    g_shutdown.acquire();

    std::printf("clarensd: shutting down (%llu requests served)\n",
                static_cast<unsigned long long>(server.requests_served()));
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clarensd: %s\n", e.what());
    return 1;
  }
}
