// clarensd — the standalone Clarens server daemon.
//
// Usage: clarensd <config-file>
//
// Loads the configuration (see src/core/config_loader.hpp for the keys),
// starts the server, optionally wires a discovery station/SRM backend,
// and runs until SIGINT/SIGTERM.
//
// A minimal deployment:
//   clarens_keygen ca "/O=site.org/CN=Site CA" ca.cred
//   clarens_keygen server ca.cred "/O=site.org/OU=Services/CN=host/node1" server.cred
//   clarens_keygen export-cert ca.cred ca.cert
//   cat > clarens.conf <<EOF
//   port 8080
//   credential_file server.cred
//   trust_file ca.cert
//   admin /O=site.org/OU=People/CN=Admin
//   allow system *
//   EOF
//   clarensd clarens.conf
//
// Daemon-level keys (read here, not by the core loader):
//   station_listen_port <port>   host a discovery station on this UDP port
//   discovery_server true        aggregate the configured station into a
//                                local discovery server and attach it —
//                                required for node_role head, so the head
//                                can build its placement ring
#include <csignal>
#include <cstdio>
#include <memory>
#include <semaphore>

#include "core/config_loader.hpp"
#include "core/server.hpp"
#include "db/store.hpp"
#include "discovery/discovery_server.hpp"
#include "discovery/station.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"

namespace {

std::binary_semaphore g_shutdown(0);

void handle_signal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: clarensd <config-file>\n");
    return 2;
  }
  clarens::util::set_log_level(clarens::util::LogLevel::Info);
  try {
    clarens::core::ClarensConfig config =
        clarens::core::load_config_file(argv[1]);
    clarens::util::Config raw = clarens::util::Config::load(argv[1]);

    // Optional discovery fabric, hosted in-process: a station server
    // (UDP ingest) and/or an aggregating discovery server over the
    // configured station. A federation head needs the latter.
    std::unique_ptr<clarens::discovery::StationServer> station;
    auto listen_port = raw.get_int_or("station_listen_port", 0);
    if (listen_port > 0) {
      station = std::make_unique<clarens::discovery::StationServer>(
          static_cast<std::uint16_t>(listen_port));
      std::printf("clarensd: station server on udp port %u\n",
                  station->port());
    }
    std::unique_ptr<clarens::db::Store> discovery_store;
    std::unique_ptr<clarens::discovery::DiscoveryServer> discovery;
    if (raw.get_bool_or("discovery_server", false)) {
      if (!config.station) {
        std::fprintf(stderr,
                     "clarensd: discovery_server requires a station line\n");
        return 1;
      }
      discovery_store = std::make_unique<clarens::db::Store>();
      discovery = std::make_unique<clarens::discovery::DiscoveryServer>(
          *discovery_store);
      discovery->subscribe(config.station->first, config.station->second);
    }

    clarens::core::ClarensServer server(std::move(config));
    if (discovery) server.attach_discovery(*discovery);
    server.start();
    std::printf("clarensd: serving at %s (%zu methods)\n",
                server.url().c_str(), server.registry().size());
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    g_shutdown.acquire();

    std::printf("clarensd: shutting down (%llu requests served)\n",
                static_cast<unsigned long long>(server.requests_served()));
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clarensd: %s\n", e.what());
    return 1;
  }
}
