#!/usr/bin/env bash
# Full verification matrix for the tree. Runs every leg even when an
# earlier one fails and prints one PASS/FAIL line per leg at the end:
#
#   release   RelWithDebInfo, -Werror, full ctest suite (incl. lint)
#   lint      structural lint only (fast re-check; subset of release)
#   asan      AddressSanitizer build + full suite
#   ubsan     UndefinedBehaviorSanitizer build + full suite
#   tsan      ThreadSanitizer build + full suite
#   lockrank  Debug build with CLARENS_LOCK_RANK_CHECK=ON + full suite
#             (runtime lock-hierarchy detector armed on every test)
#   cluster   federation cluster tests (head + storage nodes) in the
#             release, asan and tsan builds — the federation acceptance
#             gate, runnable on its own without the full suites. Includes
#             the fault-injection pass: a storage node killed mid-workload
#             (zero failed client reads, re-replication restores the
#             target) and an on-disk bit-flip that replica.fsck must
#             detect and repair. Node kill + bit-flip run in all three
#             builds; the EIO write-fault hooks additionally fire in
#             asan/tsan, whose presets set CLARENS_FAULT_INJECTION=ON
#             (plain release compiles the hook sites out)
#   tidy      clang -Wthread-safety over the annotated lock layer
#             (compile only; skipped when clang++ is not installed)
#
# Usage: tools/check.sh [leg...]     (default: all legs)
# Environment: JOBS=N parallelism (default: nproc).

set -u
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
LOG_DIR=build-logs
mkdir -p "$LOG_DIR"

RESULTS=()
FAILED=0

note() { printf '== %s\n' "$*"; }

record() { # record <status> <leg> [detail]
  RESULTS+=("$(printf '%-5s %-8s %s' "$1" "$2" "${3:-}")")
  [ "$1" = FAIL ] && FAILED=1
}

# build_and_test <leg> <preset> <builddir> [extra cmake args...]
build_and_test() {
  local leg="$1" preset="$2" dir="$3"
  shift 3
  local log="$LOG_DIR/$leg.log"
  note "$leg: configure + build + ctest ($dir)"
  if cmake --preset "$preset" "$@" >"$log" 2>&1 &&
     cmake --build "$dir" -j "$JOBS" >>"$log" 2>&1 &&
     ctest --test-dir "$dir" --output-on-failure -j "$JOBS" >>"$log" 2>&1; then
    record PASS "$leg"
  else
    record FAIL "$leg" "(log: $log)"
  fi
}

leg_release() { build_and_test release default build -DCLARENS_WERROR=ON; }
leg_asan()    { build_and_test asan  asan  build-asan;  }
leg_ubsan()   { build_and_test ubsan ubsan build-ubsan; }
leg_tsan()    { build_and_test tsan  tsan  build-tsan;  }
leg_lockrank(){ build_and_test lockrank lockrank build-lockrank; }

leg_lint() {
  local log="$LOG_DIR/lint.log"
  note "lint: structural lint over src/ tools/ tests/ + lock-doc drift"
  if cmake --preset default >"$log" 2>&1 &&
     cmake --build build -j "$JOBS" --target clarens_lint >>"$log" 2>&1 &&
     ./build/tools/clarens_lint src tools tests >>"$log" 2>&1 &&
     ./build/tools/clarens_lint --check-lock-doc docs/CONCURRENCY.md \
       >>"$log" 2>&1; then
    record PASS lint
  else
    record FAIL lint "(log: $log)"
  fi
}

leg_cluster() {
  # Federation acceptance: head + storage nodes, redirect I/O, and the
  # self-healing fault pass — storage node killed mid-workload (zero
  # failed client reads, replication target restored) and a bit-flipped
  # replica that replica.fsck detects and repairs byte-identically.
  # Must hold under plain release, AddressSanitizer and ThreadSanitizer;
  # asan/tsan additionally arm the compiled-in EIO write-fault hooks.
  local log="$LOG_DIR/cluster.log" ok=1
  note "cluster: federation_cluster_test (release + asan + tsan)"
  : >"$log"
  local pair preset dir
  for pair in "default build" "asan build-asan" "tsan build-tsan"; do
    preset=${pair% *}
    dir=${pair#* }
    printf '== cluster[%s] ==\n' "$dir" >>"$log"
    if ! { cmake --preset "$preset" >>"$log" 2>&1 &&
           cmake --build "$dir" -j "$JOBS" --target federation_cluster_test \
             >>"$log" 2>&1 &&
           ctest --test-dir "$dir" -R '^federation_cluster_test$' \
             --output-on-failure >>"$log" 2>&1; }; then
      ok=0
    fi
  done
  if [ "$ok" -eq 1 ]; then record PASS cluster; else
    record FAIL cluster "(log: $log)"
  fi
}

leg_tidy() {
  local log="$LOG_DIR/tidy.log"
  if ! command -v clang++ >/dev/null 2>&1; then
    note "tidy: SKIP - clang++ not installed (the thread-safety"
    note "tidy: attributes expand to nothing under GCC, so there is"
    note "tidy: nothing to compile-check on this machine)"
    record SKIP tidy "(clang++ not installed)"
    return
  fi
  note "tidy: clang -Wthread-safety (compile only)"
  if cmake --preset tidy >"$log" 2>&1 &&
     cmake --build build-tidy -j "$JOBS" >>"$log" 2>&1; then
    record PASS tidy
  else
    record FAIL tidy "(log: $log)"
  fi
}

LEGS=("$@")
[ ${#LEGS[@]} -eq 0 ] && LEGS=(release lint asan ubsan tsan lockrank cluster tidy)

for leg in "${LEGS[@]}"; do
  case "$leg" in
    release|lint|asan|ubsan|tsan|lockrank|cluster|tidy) "leg_$leg" ;;
    *) record FAIL "$leg" "(unknown leg)" ;;
  esac
done

printf '\n===== check.sh summary =====\n'
for line in "${RESULTS[@]}"; do printf '%s\n' "$line"; done
exit $FAILED
